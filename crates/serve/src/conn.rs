//! The reactor transport: per-connection state machines multiplexed
//! onto one epoll thread, with handler compute on the worker pool.
//!
//! This is the paper's thesis applied to the serve tier. The legacy
//! transport parks a whole OS thread per connection — one outstanding
//! "operation" per context, exactly the blocking-issue model the paper
//! argues against. Here each connection is a small explicit state
//! machine (the serve-tier analog of a reorder-buffer entry):
//!
//! ```text
//! Reading → Dispatched → Writing → Idle (keep-alive) ↺ / Closed
//! ```
//!
//! * **Reading** — the connection owns a resumable
//!   [`HeadParser`](crate::http::HeadParser); bytes are fed as they
//!   arrive and the state survives `EAGAIN`. A per-request
//!   header-completion deadline (the slow-loris fix) bounds how long a
//!   stalled client may hold the state, and it costs a table entry,
//!   not a worker.
//! * **Dispatched** — the parsed request sits in the job queue or in a
//!   handler on the worker pool. The reactor drops all readiness
//!   interest (pipelined bytes stay buffered) and waits for the
//!   completion, which arrives over a shared vector plus an `eventfd`
//!   wake.
//! * **Writing** — response bytes flush as `EPOLLOUT` allows; streamed
//!   bodies are pulled from a bounded producer queue chunk-by-chunk
//!   (see [`StreamHandle`]), so a slow client backpressures the
//!   producer instead of buffering the whole body.
//! * **Idle** — HTTP/1.1 keep-alive: the connection returns to the
//!   table awaiting the next request (or a pipelined one already
//!   buffered), bounded by an idle deadline.
//!
//! Backpressure moved with the architecture: the legacy transport
//! bounds its accept queue; the reactor bounds **open connections**
//! (`max_connections`) — the dispatch queue needs no separate bound
//! because each connection has at most one request in flight, so it is
//! bounded by the connection cap already. Beyond the cap, a new
//! connection gets the same `503 + Retry-After` and is closed.
//!
//! Graceful drain is a state-machine property: stop accepting, close
//! idle connections, let mid-request and mid-write connections finish
//! (their deadlines bound the wait), then close the job queue and join
//! the workers.

use crate::http::{self, HeadParser, Request, RequestError};
use crate::reactor::{Epoll, Event, Waker};
use crate::server::{error_response, overloaded, server_timing, ServerConfig, ServerStats};
use crate::service::ExperimentService;
use crate::signal::sigint_received;
use lookahead_obs::log;
use lookahead_obs::span::{self, TraceContext, TraceScope};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const TOK_LISTENER: u64 = 0;
const TOK_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// How much framed stream data a producer may buffer ahead of the
/// socket before it blocks (per connection).
const STREAM_HIGH_WATER: usize = 256 * 1024;

/// The reactor never sleeps longer than this so the shutdown flag (and
/// SIGINT) is observed promptly even with no traffic.
const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

/// Per-connection lifecycle. `Closed` from the doc diagram is not a
/// variant: a closed connection leaves the table entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Reading,
    Dispatched,
    Writing,
    Idle,
}

/// Why the response write finished — carries what the transport must
/// record once the last byte is flushed.
enum Finish {
    /// A handled request with a full trace: close the span tree, file
    /// it, and release the in-flight slot the dispatch took.
    Traced {
        ctx: TraceContext,
        root: u32,
        path: String,
        status: u16,
        write_start_us: u64,
        popped: Instant,
    },
    /// A transport-level response (parse error, 408, 503): only the
    /// latency histogram is recorded, as in the legacy transport.
    Plain { start: Instant },
}

/// Pending response bytes for one connection.
struct WriteState {
    buf: Vec<u8>,
    at: usize,
    /// Chunked tail still being produced by a worker, pulled as the
    /// socket drains.
    stream: Option<Arc<StreamHandle>>,
    close_after: bool,
    finish: Finish,
}

struct Conn {
    stream: TcpStream,
    state: State,
    parser: HeadParser,
    write: Option<WriteState>,
    /// When reading of the *current* request began — the trace epoch
    /// and the base of the header-completion deadline.
    request_start: Instant,
    deadline: Option<Instant>,
    /// Requests completed on this connection (keep-alive reuse count).
    served: u64,
    /// Interest currently registered with epoll; `None` when the fd is
    /// deregistered (dispatched, or hangup observed).
    interest: Option<(bool, bool)>,
}

/// One parsed request travelling to the worker pool.
struct Job {
    token: u64,
    request: Request,
    request_start: Instant,
    parse_us: u64,
    dispatched: Instant,
    reused: bool,
}

/// A worker's finished response travelling back to the reactor.
struct Completion {
    token: u64,
    /// Response head plus buffered body, ready for the wire.
    bytes: Vec<u8>,
    stream: Option<Arc<StreamHandle>>,
    close_after: bool,
    ctx: TraceContext,
    root: u32,
    path: String,
    status: u16,
    write_start_us: u64,
    popped: Instant,
}

/// The blocking hand-off from the reactor to the handler workers.
/// Unbounded by construction: at most one job per open connection, and
/// open connections are capped.
struct JobQueue {
    state: Mutex<(VecDeque<Job>, bool)>,
    ready: Condvar,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        self.state
            .lock()
            .expect("job queue poisoned")
            .0
            .push_back(job);
        self.ready.notify_one();
    }

    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = state.0.pop_front() {
                return Some(job);
            }
            if state.1 {
                return None;
            }
            state = self.ready.wait(state).expect("job queue poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("job queue poisoned").1 = true;
        self.ready.notify_all();
    }
}

/// The shared byte queue between a worker producing a streamed body
/// and the reactor flushing it: the worker pushes framed chunks and
/// blocks at the high-water mark; the reactor pulls as `EPOLLOUT`
/// readiness allows and wakes the producer when space frees up.
pub(crate) struct StreamHandle {
    queue: Mutex<StreamQueue>,
    space: Condvar,
}

struct StreamQueue {
    buf: Vec<u8>,
    done: bool,
    failed: bool,
    aborted: bool,
}

enum StreamTake {
    Bytes(Vec<u8>),
    Pending,
    Done,
    Failed,
}

impl StreamHandle {
    fn new() -> StreamHandle {
        StreamHandle {
            queue: Mutex::new(StreamQueue {
                buf: Vec::new(),
                done: false,
                failed: false,
                aborted: false,
            }),
            space: Condvar::new(),
        }
    }

    /// Producer side: append framed bytes, blocking while the reactor
    /// is more than a high-water mark behind.
    fn push(&self, bytes: &[u8], waker: &Waker) -> io::Result<()> {
        let mut q = self.queue.lock().expect("stream queue poisoned");
        loop {
            if q.aborted {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "client gone; stream aborted",
                ));
            }
            if q.buf.len() < STREAM_HIGH_WATER {
                q.buf.extend_from_slice(bytes);
                drop(q);
                waker.wake();
                return Ok(());
            }
            q = self.space.wait(q).expect("stream queue poisoned");
        }
    }

    /// Producer side: final bytes (the zero-chunk terminator), then
    /// mark the stream complete.
    fn finish(&self, tail: &[u8], waker: &Waker) {
        let mut q = self.queue.lock().expect("stream queue poisoned");
        if !q.aborted {
            q.buf.extend_from_slice(tail);
        }
        q.done = true;
        drop(q);
        waker.wake();
    }

    /// Producer side: the body can no longer be completed; the
    /// connection must die mid-stream (chunked framing makes the
    /// truncation visible to the client).
    fn fail(&self, waker: &Waker) {
        let mut q = self.queue.lock().expect("stream queue poisoned");
        q.failed = true;
        q.done = true;
        drop(q);
        waker.wake();
    }

    /// Reactor side: take whatever is buffered.
    fn take(&self) -> StreamTake {
        let mut q = self.queue.lock().expect("stream queue poisoned");
        if !q.buf.is_empty() {
            let bytes = std::mem::take(&mut q.buf);
            drop(q);
            self.space.notify_all();
            return StreamTake::Bytes(bytes);
        }
        if q.failed {
            StreamTake::Failed
        } else if q.done {
            StreamTake::Done
        } else {
            StreamTake::Pending
        }
    }

    /// Reactor side: the client is gone; unblock and fail the
    /// producer.
    fn abort(&self) {
        let mut q = self.queue.lock().expect("stream queue poisoned");
        q.aborted = true;
        q.buf.clear();
        drop(q);
        self.space.notify_all();
    }
}

/// The sink a worker's stream producer writes into: frames each
/// fragment as one HTTP/1.1 chunk (the same framing the legacy
/// transport's `ChunkWriter` emits) and pushes it toward the reactor.
struct StreamSink<'a> {
    handle: &'a StreamHandle,
    waker: &'a Waker,
}

impl Write for StreamSink<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut framed = format!("{:x}\r\n", buf.len()).into_bytes();
        framed.extend_from_slice(buf);
        framed.extend_from_slice(b"\r\n");
        self.handle.push(&framed, self.waker)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Runs the reactor transport until shutdown, returning the transport
/// stats. The listener must already be nonblocking.
pub(crate) fn run_reactor(
    listener: &TcpListener,
    config: &ServerConfig,
    shutdown: &Arc<AtomicBool>,
    service: &Arc<ExperimentService>,
) -> ServerStats {
    let epoll = Epoll::new().expect("epoll_create1 failed");
    let waker = Arc::new(Waker::new().expect("eventfd failed"));
    epoll
        .add(listener.as_raw_fd(), TOK_LISTENER, true, false)
        .expect("register listener");
    epoll
        .add(waker.fd(), TOK_WAKER, true, false)
        .expect("register waker");

    let jobs = Arc::new(JobQueue::new());
    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));

    let mut r = Reactor {
        epoll,
        listener,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        stats: ServerStats::default(),
        eagain: 0,
        draining: false,
        config,
        service,
        jobs: Arc::clone(&jobs),
    };

    std::thread::scope(|scope| {
        for i in 0..config.threads.max(1) {
            let jobs = Arc::clone(&jobs);
            let completions = Arc::clone(&completions);
            let waker = Arc::clone(&waker);
            let service = Arc::clone(service);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn_scoped(scope, move || {
                    worker_loop(&jobs, &completions, &waker, &service)
                })
                .expect("spawn worker");
        }

        let mut events: Vec<Event> = Vec::new();
        loop {
            if !r.draining
                && (shutdown.load(Ordering::SeqCst) || (config.watch_sigint && sigint_received()))
            {
                r.begin_drain();
            }
            if r.draining && r.conns.is_empty() {
                break;
            }

            let timeout = r.next_timeout();
            let n = r.epoll.wait(&mut events, Some(timeout)).unwrap_or_default();
            let mut wakeups = 0u64;
            for &ev in events.iter().take(n) {
                match ev.token {
                    TOK_LISTENER => r.accept_ready(),
                    TOK_WAKER => {
                        waker.drain();
                        wakeups += 1;
                    }
                    token => r.conn_event(token, ev),
                }
            }

            // Completions and stream progress are checked every round:
            // the waker may have been consumed by an earlier iteration
            // and coalesced wakes must not strand a response.
            let ready = std::mem::take(&mut *completions.lock().expect("completions poisoned"));
            for completion in ready {
                r.install_completion(completion);
            }
            r.pump_streams();
            r.expire_deadlines(Instant::now());

            service.set_open_connections(r.conns.len() as u64);
            let eagain = std::mem::take(&mut r.eagain);
            service.record_reactor_tick(n as u64, wakeups, eagain);
        }

        jobs.close();
    });

    // Orphaned completions (connections that died mid-drain) still
    // hold in-flight slots.
    for completion in completions.lock().expect("completions poisoned").drain(..) {
        if let Some(stream) = &completion.stream {
            stream.abort();
        }
        service.in_flight_exit();
    }
    service.set_open_connections(0);
    r.stats
}

/// Handler workers: pop a job, run the service, push the completion.
/// Streamed bodies are produced here — the producer blocks on the
/// stream queue's high-water mark, so a slow client costs a worker
/// only while the body is actively being computed ahead of the socket.
fn worker_loop(
    jobs: &JobQueue,
    completions: &Mutex<Vec<Completion>>,
    waker: &Waker,
    service: &Arc<ExperimentService>,
) {
    while let Some(job) = jobs.pop() {
        let popped = Instant::now();
        let queue_us = popped.duration_since(job.dispatched).as_micros() as u64;
        service.record_queue_wait(queue_us);
        let rid = job
            .request
            .request_id
            .clone()
            .unwrap_or_else(span::next_request_id);
        let ctx = TraceContext::with_epoch(rid.clone(), job.request_start);
        let root = ctx.alloc_id();
        // Chronological order differs from the legacy transport —
        // bytes are parsed *before* the dispatch queue — but the stage
        // names and meanings are identical.
        ctx.record("parse", root, 0, job.parse_us);
        ctx.record("queue", root, job.parse_us, queue_us);
        if job.reused {
            // Stitch the connection's history into the request tree: a
            // zero-length marker span naming the reuse ordinal.
            ctx.record("conn.reuse", root, 0, 0);
            service.record_keepalive_reuse();
        }
        let prev = span::set_scope(Some(TraceScope::new(ctx.clone(), root)));
        let mut response = span::record_current("handler", || service.handle(&job.request));
        span::set_scope(prev);
        response.request_id = Some(rid);
        response.server_timing = Some(server_timing(&ctx, root));

        let close_after = !job.request.keep_alive;
        // The head must be rendered while `response.stream` is still
        // in place: it decides chunked vs Content-Length framing.
        let mut bytes = http::response_head(&response, close_after).into_bytes();
        let write_start_us = ctx.now_us();
        let completion = Completion {
            token: job.token,
            bytes: Vec::new(),
            stream: None,
            close_after,
            ctx,
            root,
            path: job.request.path.clone(),
            status: response.status,
            write_start_us,
            popped,
        };
        match response.stream.take() {
            None => {
                bytes.extend_from_slice(response.body.as_bytes());
                push_completion(
                    completions,
                    waker,
                    Completion {
                        bytes,
                        ..completion
                    },
                );
            }
            Some(body) => {
                // The completion ships first so the reactor starts
                // flushing the head (and early chunks) while this
                // worker is still producing the tail.
                let handle = Arc::new(StreamHandle::new());
                push_completion(
                    completions,
                    waker,
                    Completion {
                        bytes,
                        stream: Some(Arc::clone(&handle)),
                        ..completion
                    },
                );
                let mut sink = StreamSink {
                    handle: &handle,
                    waker,
                };
                match body.produce(&mut sink) {
                    Ok(()) => handle.finish(b"0\r\n\r\n", waker),
                    Err(_) => handle.fail(waker),
                }
            }
        }
    }
}

fn push_completion(completions: &Mutex<Vec<Completion>>, waker: &Waker, completion: Completion) {
    completions
        .lock()
        .expect("completions poisoned")
        .push(completion);
    waker.wake();
}

/// The single-threaded event loop's working state. All I/O happens
/// here; the only cross-thread traffic is jobs out, completions (and
/// stream bytes) back, and the eventfd wake.
struct Reactor<'a> {
    epoll: Epoll,
    listener: &'a TcpListener,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    stats: ServerStats,
    eagain: u64,
    draining: bool,
    config: &'a ServerConfig,
    service: &'a Arc<ExperimentService>,
    jobs: Arc<JobQueue>,
}

/// One step of the write pump; computed under a short connection
/// borrow, acted on without it.
enum WriteStep {
    Progress,
    Blocked,
    AwaitStream,
    Finished,
    Dead,
}

impl Reactor<'_> {
    /// Stops accepting and closes idle connections; mid-request and
    /// mid-write connections finish (bounded by their deadlines).
    fn begin_drain(&mut self) {
        self.draining = true;
        let _ = self.epoll.delete(self.listener.as_raw_fd());
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.state == State::Idle)
            .map(|(t, _)| *t)
            .collect();
        for token in idle {
            self.close_conn(token, false);
        }
    }

    /// Sleep no longer than the nearest deadline (or the shutdown
    /// poll tick).
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut timeout = SHUTDOWN_POLL;
        for conn in self.conns.values() {
            if let Some(d) = conn.deadline {
                timeout = timeout.min(d.saturating_duration_since(now));
            }
        }
        timeout
    }

    /// Accepts until the listener runs dry.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.stats.accepted += 1;
                    if self.draining {
                        continue;
                    }
                    if self.conns.len() >= self.config.max_connections {
                        self.reject_conn(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        self.stats.aborted += 1;
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    let now = Instant::now();
                    let conn = Conn {
                        stream,
                        state: State::Reading,
                        parser: HeadParser::new(),
                        write: None,
                        request_start: now,
                        // The header-completion deadline starts at
                        // accept: a silent client gets a 408, exactly
                        // as the legacy read timeout behaved.
                        deadline: Some(now + self.config.read_timeout),
                        served: 0,
                        interest: None,
                    };
                    if self
                        .epoll
                        .add(conn.stream.as_raw_fd(), token, true, false)
                        .is_ok()
                    {
                        let mut conn = conn;
                        conn.interest = Some((true, false));
                        self.conns.insert(token, conn);
                    } else {
                        self.stats.aborted += 1;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.eagain += 1;
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // A failed accept (e.g. fd exhaustion) is not fatal.
                Err(_) => return,
            }
        }
    }

    /// The connection-cap analog of the legacy queue-full rejection:
    /// best-effort 503 + `Retry-After`, then close.
    fn reject_conn(&mut self, mut stream: TcpStream) {
        self.stats.rejected += 1;
        self.service.record_rejected();
        let rid = span::next_request_id();
        log::warn(
            "serve.http",
            "connection cap reached; rejecting with 503",
            &[
                ("request_id", &rid),
                ("max_connections", &self.config.max_connections.to_string()),
            ],
        );
        let mut response = overloaded();
        response.request_id = Some(rid);
        let mut bytes = http::response_head(&response, true).into_bytes();
        bytes.extend_from_slice(response.body.as_bytes());
        // Nonblocking so a zero-window client cannot stall the
        // reactor; the tiny response almost always fits the send
        // buffer, and an overloaded server does not retry.
        let _ = stream.set_nonblocking(true);
        let _ = stream.write_all(&bytes);
    }

    fn conn_event(&mut self, token: u64, ev: Event) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.state {
            State::Reading | State::Idle => {
                if ev.readable {
                    self.try_read(token);
                }
            }
            State::Writing => {
                if ev.hangup {
                    // Quiesce the fd: a fully-closed peer would
                    // otherwise deliver a level-triggered HUP storm
                    // while the stream producer is still running. The
                    // write pump re-registers interest if it blocks.
                    if conn.interest.take().is_some() {
                        let _ = self.epoll.delete(conn.stream.as_raw_fd());
                    }
                }
                if ev.writable || ev.hangup {
                    self.try_write(token);
                }
            }
            State::Dispatched => {
                if ev.hangup && conn.interest.take().is_some() {
                    // Same storm avoidance; the completion's write
                    // will observe the failure and abort.
                    let _ = self.epoll.delete(conn.stream.as_raw_fd());
                }
            }
        }
    }

    /// Reads until `EAGAIN`, feeding the connection's parser; a
    /// completed head dispatches, a parse error answers its 4xx, EOF
    /// closes.
    fn try_read(&mut self, token: u64) {
        enum ReadOutcome {
            More,
            Stop,
            Dispatch(Request),
            Fail(RequestError),
            Close { aborted: bool },
        }
        let mut buf = [0u8; 4096];
        loop {
            let outcome = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        if conn.parser.has_buffered() {
                            ReadOutcome::Fail(RequestError::BadRequest(
                                "truncated request head".into(),
                            ))
                        } else {
                            // A keep-alive client closing between
                            // requests is clean; EOF before the first
                            // request ever arrived matches the legacy
                            // transport's aborted accounting.
                            ReadOutcome::Close {
                                aborted: conn.served == 0,
                            }
                        }
                    }
                    Ok(n) => {
                        if conn.state == State::Idle {
                            // First byte of the next request: back to
                            // Reading with a fresh trace epoch and
                            // header deadline.
                            let now = Instant::now();
                            conn.state = State::Reading;
                            conn.request_start = now;
                            conn.deadline = Some(now + self.config.read_timeout);
                        }
                        match conn.parser.feed(&buf[..n]) {
                            Ok(Some(request)) => ReadOutcome::Dispatch(request),
                            Ok(None) => ReadOutcome::More,
                            Err(e) => ReadOutcome::Fail(e),
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        self.eagain += 1;
                        ReadOutcome::Stop
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => ReadOutcome::More,
                    Err(_) => ReadOutcome::Close { aborted: true },
                }
            };
            match outcome {
                ReadOutcome::More => {}
                ReadOutcome::Stop => return,
                ReadOutcome::Dispatch(request) => {
                    self.dispatch(token, request);
                    return;
                }
                ReadOutcome::Fail(e) => {
                    self.fail_request(token, e);
                    return;
                }
                ReadOutcome::Close { aborted } => {
                    self.close_conn(token, aborted);
                    return;
                }
            }
        }
    }

    /// Hands a parsed request to the worker pool and parks the
    /// connection (no readiness interest) until the completion comes
    /// back.
    fn dispatch(&mut self, token: u64, request: Request) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.state = State::Dispatched;
        conn.deadline = None;
        let parse_us = conn.request_start.elapsed().as_micros() as u64;
        let reused = conn.served > 0;
        if conn.interest.is_some() && conn.interest != Some((false, false)) {
            let _ = self
                .epoll
                .modify(conn.stream.as_raw_fd(), token, false, false);
            conn.interest = Some((false, false));
        }
        let request_start = conn.request_start;
        // The in-flight slot is held from dispatch to write
        // completion, so streamed bodies keep the pre-warm thread
        // parked exactly as the legacy transport's guard did.
        self.service.in_flight_enter();
        self.jobs.push(Job {
            token,
            request,
            request_start,
            parse_us,
            dispatched: Instant::now(),
            reused,
        });
    }

    /// Answers a transport-level failure (parse error, timeout) with
    /// its status and closes after the write; pure I/O failures close
    /// silently.
    fn fail_request(&mut self, token: u64, e: RequestError) {
        let Some(status) = e.status() else {
            self.close_conn(token, true);
            return;
        };
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        let start = conn.request_start;
        let rid = span::next_request_id();
        log::warn(
            "serve.http",
            "request parse failed",
            &[
                ("request_id", &rid),
                ("status", &status.to_string()),
                ("error", &format!("{e:?}")),
            ],
        );
        let mut response = error_response(status, &e);
        response.request_id = Some(rid);
        let mut bytes = http::response_head(&response, true).into_bytes();
        bytes.extend_from_slice(response.body.as_bytes());
        self.queue_write(token, bytes, None, true, Finish::Plain { start });
    }

    /// Installs response bytes on the connection and starts flushing.
    fn queue_write(
        &mut self,
        token: u64,
        bytes: Vec<u8>,
        stream: Option<Arc<StreamHandle>>,
        close_after: bool,
        finish: Finish,
    ) {
        let Some(conn) = self.conns.get_mut(&token) else {
            // The connection died while its request was in flight.
            if let Some(stream) = &stream {
                stream.abort();
            }
            if matches!(finish, Finish::Traced { .. }) {
                self.service.in_flight_exit();
            }
            return;
        };
        conn.state = State::Writing;
        conn.deadline = Some(Instant::now() + self.config.write_timeout);
        conn.write = Some(WriteState {
            buf: bytes,
            at: 0,
            stream,
            close_after,
            finish,
        });
        self.try_write(token);
    }

    fn install_completion(&mut self, c: Completion) {
        self.queue_write(
            c.token,
            c.bytes,
            c.stream,
            c.close_after,
            Finish::Traced {
                ctx: c.ctx,
                root: c.root,
                path: c.path,
                status: c.status,
                write_start_us: c.write_start_us,
                popped: c.popped,
            },
        );
    }

    /// Flushes as much of the pending response as the socket takes,
    /// pulling more from the stream queue as it drains.
    fn try_write(&mut self, token: u64) {
        loop {
            let step = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                let Some(w) = conn.write.as_mut() else {
                    return;
                };
                if w.at < w.buf.len() {
                    match conn.stream.write(&w.buf[w.at..]) {
                        Ok(0) => WriteStep::Dead,
                        Ok(n) => {
                            w.at += n;
                            // Progress refreshes the write deadline
                            // (per-write timeout, like the legacy
                            // socket option).
                            conn.deadline = Some(Instant::now() + self.config.write_timeout);
                            WriteStep::Progress
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => WriteStep::Blocked,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => WriteStep::Progress,
                        Err(_) => WriteStep::Dead,
                    }
                } else if let Some(handle) = &w.stream {
                    match handle.take() {
                        StreamTake::Bytes(bytes) => {
                            w.buf = bytes;
                            w.at = 0;
                            WriteStep::Progress
                        }
                        StreamTake::Pending => WriteStep::AwaitStream,
                        StreamTake::Done => {
                            w.stream = None;
                            WriteStep::Progress
                        }
                        // The producer failed mid-body; the truncated
                        // chunked framing tells the client.
                        StreamTake::Failed => WriteStep::Dead,
                    }
                } else {
                    WriteStep::Finished
                }
            };
            match step {
                WriteStep::Progress => {}
                WriteStep::Blocked => {
                    self.eagain += 1;
                    self.set_interest(token, false, true);
                    return;
                }
                WriteStep::AwaitStream => {
                    // Nothing to write until the producer pushes more;
                    // the eventfd wake drives the next pump.
                    self.set_interest(token, false, false);
                    return;
                }
                WriteStep::Finished => {
                    self.finish_write(token);
                    return;
                }
                WriteStep::Dead => {
                    self.close_conn(token, true);
                    return;
                }
            }
        }
    }

    /// The response is fully flushed: record the trace, then keep the
    /// connection alive (possibly straight into a pipelined request)
    /// or close it.
    fn finish_write(&mut self, token: u64) {
        let finished = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let Some(w) = conn.write.take() else {
                return;
            };
            conn.served += 1;
            conn.deadline = None;
            w
        };
        match finished.finish {
            Finish::Traced {
                ctx,
                root,
                path,
                status,
                write_start_us,
                popped,
            } => {
                ctx.record(
                    "write",
                    root,
                    write_start_us,
                    ctx.now_us().saturating_sub(write_start_us),
                );
                ctx.record("request", 0, 0, ctx.now_us());
                self.service.finish_request(&ctx, &path, status);
                self.service
                    .record_http(popped.elapsed().as_micros() as u64);
                self.service.in_flight_exit();
            }
            Finish::Plain { start } => {
                self.service.record_http(start.elapsed().as_micros() as u64);
            }
        }
        self.stats.served += 1;
        if finished.close_after || self.draining {
            self.close_conn(token, false);
            return;
        }
        // Keep-alive: a pipelined request may already be buffered.
        let next = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.parser.advance()
        };
        match next {
            Ok(Some(request)) => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.state = State::Reading;
                    conn.request_start = Instant::now();
                }
                self.dispatch(token, request);
            }
            Ok(None) => {
                let now = Instant::now();
                if let Some(conn) = self.conns.get_mut(&token) {
                    if conn.parser.has_buffered() {
                        // A partial next request is already here: it
                        // is mid-request, deadline and all.
                        conn.state = State::Reading;
                        conn.request_start = now;
                        conn.deadline = Some(now + self.config.read_timeout);
                    } else {
                        conn.state = State::Idle;
                        conn.deadline = Some(now + self.config.keepalive_timeout);
                    }
                }
                self.set_interest(token, true, false);
            }
            Err(e) => self.fail_request(token, e),
        }
    }

    /// Revisits every connection mid-stream: the producer may have
    /// pushed bytes (or finished) since the last pump.
    fn pump_streams(&mut self) {
        let tokens: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.state == State::Writing && c.write.as_ref().is_some_and(|w| w.stream.is_some())
            })
            .map(|(t, _)| *t)
            .collect();
        for token in tokens {
            self.try_write(token);
        }
    }

    fn expire_deadlines(&mut self, now: Instant) {
        let expired: Vec<(u64, State)> = self
            .conns
            .iter()
            .filter(|(_, c)| c.deadline.is_some_and(|d| d <= now))
            .map(|(t, c)| (*t, c.state))
            .collect();
        for (token, state) in expired {
            match state {
                // The header-completion deadline: stalled mid-head (or
                // silent) clients get the legacy 408, but from a table
                // scan instead of a hostage worker.
                State::Reading => self.fail_request(token, RequestError::Timeout),
                // An idle keep-alive connection expiring is routine.
                State::Idle => self.close_conn(token, false),
                State::Writing => self.close_conn(token, true),
                State::Dispatched => {}
            }
        }
    }

    fn set_interest(&mut self, token: u64, readable: bool, writable: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.interest == Some((readable, writable)) {
            return;
        }
        let fd = conn.stream.as_raw_fd();
        let result = match conn.interest {
            None => self.epoll.add(fd, token, readable, writable),
            Some(_) => self.epoll.modify(fd, token, readable, writable),
        };
        if result.is_ok() {
            conn.interest = Some((readable, writable));
        }
    }

    fn close_conn(&mut self, token: u64, aborted: bool) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        if conn.interest.is_some() {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
        }
        if let Some(w) = conn.write {
            if let Some(stream) = &w.stream {
                stream.abort();
            }
            if matches!(w.finish, Finish::Traced { .. }) {
                self.service.in_flight_exit();
            }
        }
        // A connection closed while Dispatched keeps its in-flight
        // slot until the orphaned completion drains.
        if aborted {
            self.stats.aborted += 1;
        }
    }
}
