//! `lookahead-serve`: the experiment suite as a concurrent service.
//!
//! The simulation stack underneath is expensive to run and perfectly
//! cacheable — the same query always produces the same bytes. This
//! crate puts a small, dependency-free HTTP/1.1 server in front of it
//! so the suite can be queried interactively:
//!
//! ```text
//! GET /v1/experiments?app=mp3d&model=ds&window=64&consistency=rc
//! GET /v1/figure3?app=lu      GET /v1/figure4?app=ocean
//! GET /v1/summary             GET /v1/apps
//! GET /healthz                GET /metrics
//! ```
//!
//! The concurrency story mirrors the paper's own theme — overlap
//! independent work, never duplicate it:
//!
//! * **single-flight dedup** ([`lookahead_harness::singleflight`]):
//!   N concurrent requests for the same cold key run exactly one
//!   simulation and share the bytes;
//! * **backpressure** ([`server`]): a bounded connection queue answers
//!   `503` + `Retry-After` when full, instead of unbounded latency;
//! * **graceful shutdown**: SIGINT (or a [`ShutdownHandle`]) drains
//!   queued connections, joins the workers, then returns;
//! * **determinism**: response bodies are byte-identical regardless of
//!   concurrency, cache state, or worker count — pinned by golden
//!   tests against the `lookahead` CLI output.
//!
//! Module map: [`http`] (hardened parsing/framing, incremental
//! [`http::HeadParser`]), [`service`] (routing, queries, JSON bodies,
//! metrics), [`reactor`] (raw-syscall epoll + eventfd wakeups),
//! [`conn`] (per-connection state machines and the reactor event
//! loop), [`server`] (listener, transports, worker pool, drain),
//! [`knobs`] (fail-fast env configuration), [`signal`] (SIGINT →
//! flag).
//!
//! Two transports share the listener and handler pool: the default
//! **reactor** transport multiplexes thousands of keep-alive
//! connections onto one epoll thread (workers run only handler
//! compute), while `--legacy-transport` keeps the original
//! thread-per-connection pool for diffing; response bytes are
//! identical between the two modulo the `Connection` header on
//! keep-alive responses.

pub mod conn;
pub mod http;
pub mod knobs;
pub mod reactor;
pub mod server;
pub mod service;
pub mod signal;

pub use http::{Request, RequestError, Response};
pub use knobs::{
    parse_max_connections, parse_serve_addr, parse_serve_threads, parse_serve_transport,
    serve_addr_from_env, serve_threads_from_env, serve_transport_from_env, DEFAULT_ADDR,
};
pub use server::{Server, ServerConfig, ServerStats, ShutdownHandle, Transport};
pub use service::{handle_target, ApiError, ExperimentService, ServiceConfig};
pub use signal::{install_sigint, sigint_received};
