//! SIGINT handling without external dependencies.
//!
//! The server's accept loop polls [`sigint_received`]; the handler
//! installed by [`install_sigint`] only sets an atomic flag (the one
//! async-signal-safe thing worth doing), so a Ctrl-C triggers the
//! server's *graceful* drain path. A second Ctrl-C while draining
//! exits immediately with the conventional 130 — the escape hatch when
//! an operator decides the drain is taking too long.
//!
//! On non-Unix targets these are no-ops: the server is still fully
//! drivable through its [`ShutdownHandle`](crate::server::ShutdownHandle).

use std::sync::atomic::{AtomicBool, Ordering};

static SIGINT_RECEIVED: AtomicBool = AtomicBool::new(false);

/// Whether a SIGINT has arrived since [`install_sigint`].
pub fn sigint_received() -> bool {
    SIGINT_RECEIVED.load(Ordering::SeqCst)
}

/// Test/embedding hook: trigger the same flag the signal handler sets.
pub fn trigger_sigint_flag() {
    SIGINT_RECEIVED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::SIGINT_RECEIVED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;

    // Declared directly against libc's ABI so the workspace stays free
    // of external crates. `signal` here is glibc/musl's BSD-semantics
    // wrapper (handlers stay installed, interrupted syscalls restart);
    // the accept loop never blocks, so restart semantics are moot.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(code: i32) -> !;
    }

    extern "C" fn on_sigint(_sig: i32) {
        // swap + _exit are both async-signal-safe; nothing else is
        // allowed in here.
        if SIGINT_RECEIVED.swap(true, Ordering::SeqCst) {
            unsafe { _exit(130) }
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT-to-flag handler (idempotent). No-op off Unix.
pub fn install_sigint() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_roundtrip() {
        // Never raise a real SIGINT in tests (the harness would die);
        // exercise the flag path the handler shares.
        install_sigint();
        trigger_sigint_flag();
        assert!(sigint_received());
    }
}
