//! The HTTP transports: the default epoll **reactor** (one event-loop
//! thread multiplexing thousands of nonblocking keep-alive
//! connections, handlers on a small worker pool — see [`crate::conn`])
//! and the original **legacy** thread-per-connection pool, kept behind
//! [`Transport::Legacy`] as a diffing/escape hatch.
//!
//! The legacy design, in the order a connection sees it:
//!
//! 1. the acceptor thread polls a nonblocking listener (no reliance on
//!    EINTR semantics — SIGINT is observed as a flag between polls);
//! 2. an accepted connection enters a **bounded** queue. A full queue
//!    answers `503` with `Retry-After` immediately on the acceptor
//!    thread — the one fast, explicit backpressure signal — instead of
//!    letting latency grow without bound;
//! 3. a worker pops the connection, applies read/write timeouts, reads
//!    and parses one request (every malformed input is a typed 4xx,
//!    never a panic), asks the [`ExperimentService`] for the response,
//!    and writes it with `Connection: close` framing.
//!
//! The reactor replaces the bounded queue with a connection cap
//! (`max_connections`) — each connection has at most one request in
//! flight, so the dispatch queue is bounded by the connection table —
//! and writes `Connection: keep-alive` framing where the client allows
//! it. Response bytes are otherwise identical between transports.
//!
//! Shutdown (a [`ShutdownHandle`] or, opt-in, SIGINT) is graceful on
//! both: stop accepting, finish what is in flight, join the workers,
//! and `run` returns with the final stats.

use crate::http::{read_request, write_response, RequestError, Response};
use crate::service::ExperimentService;
use crate::signal::sigint_received;
use lookahead_obs::json::JsonObject;
use lookahead_obs::log;
use lookahead_obs::span::{self, TraceContext, TraceScope};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which connection-handling machinery [`Server::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Readiness-driven epoll event loop with nonblocking sockets and
    /// HTTP/1.1 keep-alive (the default). Falls back to [`Legacy`]
    /// (`Transport::Legacy`) on platforms without epoll support.
    Reactor,
    /// The original thread-per-connection worker pool
    /// (`Connection: close` on every response).
    Legacy,
}

/// Transport configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 lets the OS pick (see
    /// [`Server::local_addr`]).
    pub addr: SocketAddr,
    /// Handler worker threads. Under the reactor transport these run
    /// only handler compute (all socket I/O stays on the event loop);
    /// under the legacy transport each owns a connection end to end.
    pub threads: usize,
    /// Legacy transport only: most connections waiting for a worker
    /// before new ones are answered 503.
    pub queue_depth: usize,
    /// Per-connection read timeout. The reactor applies it as a
    /// header-completion deadline (a connection that has not produced
    /// a full request head within it gets a 408 — slow-loris clients
    /// cannot park forever); the legacy transport sets it as the
    /// socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout (the reactor refreshes its
    /// write deadline on progress, matching per-write semantics).
    pub write_timeout: Duration,
    /// Whether the accept loop also treats SIGINT (via
    /// [`crate::signal`]) as a shutdown request. Off by default so
    /// in-process servers in tests are not shut down by the signal
    /// test's flag; the `lookahead serve` binary turns it on.
    pub watch_sigint: bool,
    /// Which transport serves connections.
    pub transport: Transport,
    /// Reactor transport only: open-connection cap. New connections
    /// beyond it are answered 503 + `Retry-After` at accept — the
    /// reactor's backpressure signal, replacing the legacy queue
    /// bound.
    pub max_connections: usize,
    /// Reactor transport only: how long an idle keep-alive connection
    /// is kept open before the server closes it.
    pub keepalive_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: crate::knobs::DEFAULT_ADDR.parse().expect("default addr"),
            threads: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            watch_sigint: false,
            transport: Transport::Reactor,
            max_connections: 4096,
            keepalive_timeout: Duration::from_secs(5),
        }
    }
}

/// Counters the transport reports when `run` returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted (including ones later rejected 503).
    pub accepted: u64,
    /// Requests answered by the service.
    pub served: u64,
    /// Connections answered 503 because the queue was full.
    pub rejected: u64,
    /// Connections that failed before a response could be written
    /// (peer vanished, I/O error).
    pub aborted: u64,
}

/// Asks a running [`Server`] to shut down gracefully; cloneable and
/// usable from any thread.
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests a graceful drain: stop accepting, serve what is
    /// queued, join the workers.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// The bounded hand-off between the acceptor and the workers.
struct ConnQueue {
    queue: Mutex<QueueState>,
    ready: Condvar,
    depth: usize,
}

struct QueueState {
    /// Each connection carries the instant it was accepted, so the
    /// worker that pops it can attribute queue wait to the request's
    /// trace.
    conns: std::collections::VecDeque<(TcpStream, Instant)>,
    closed: bool,
}

enum Push {
    Queued,
    Full(TcpStream),
}

impl ConnQueue {
    fn new(depth: usize) -> ConnQueue {
        ConnQueue {
            queue: Mutex::new(QueueState {
                conns: std::collections::VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            depth,
        }
    }

    /// Queues a connection, or hands it back when the queue is full
    /// (the caller sends the 503 — the backpressure decision is made
    /// here, the response written by the acceptor).
    fn push(&self, conn: TcpStream, accepted: Instant) -> Push {
        let mut state = self.queue.lock().expect("conn queue poisoned");
        if state.conns.len() >= self.depth {
            return Push::Full(conn);
        }
        state.conns.push_back((conn, accepted));
        drop(state);
        self.ready.notify_one();
        Push::Queued
    }

    /// Pops the next connection, blocking; `None` once the queue is
    /// closed *and* empty (drain semantics: queued work is finished).
    fn pop(&self) -> Option<(TcpStream, Instant)> {
        let mut state = self.queue.lock().expect("conn queue poisoned");
        loop {
            if let Some(conn) = state.conns.pop_front() {
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("conn queue poisoned");
        }
    }

    /// Closes the queue; workers finish what is queued and exit.
    fn close(&self) {
        self.queue.lock().expect("conn queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

/// The HTTP server: owns the listener and, in [`run`](Server::run),
/// the worker pool.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the configured address (nonblocking) without serving yet.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            local_addr,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can request a graceful shutdown from any thread.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Serves until shutdown is requested, then drains and returns the
    /// transport stats. Consumes the server (the listener closes on
    /// return).
    pub fn run(self, service: Arc<ExperimentService>) -> ServerStats {
        let use_reactor =
            self.config.transport == Transport::Reactor && crate::reactor::supported();
        let mut stats = ServerStats::default();
        std::thread::scope(|scope| {
            // Speculative pre-warm: strictly idle-priority. The thread
            // only computes a predicted body when no client request is
            // in flight (or being written), and parks otherwise; it
            // observes the same shutdown signals as the transport.
            if service.prewarm_enabled() {
                let service = Arc::clone(&service);
                let shutdown = Arc::clone(&self.shutdown);
                let watch_sigint = self.config.watch_sigint;
                std::thread::Builder::new()
                    .name("serve-prewarm".to_string())
                    .spawn_scoped(scope, move || loop {
                        if shutdown.load(Ordering::SeqCst) || (watch_sigint && sigint_received()) {
                            return;
                        }
                        let worked = service.idle() && service.prewarm_tick();
                        if !worked {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    })
                    .expect("spawn prewarm");
            }

            stats = if use_reactor {
                crate::conn::run_reactor(&self.listener, &self.config, &self.shutdown, &service)
            } else {
                self.run_legacy(&service)
            };
            // Make shutdown visible to the pre-warm thread even when
            // it was requested via SIGINT rather than the handle.
            self.shutdown.store(true, Ordering::SeqCst);
        });
        stats
    }

    /// The original thread-per-connection transport: acceptor feeds a
    /// bounded queue, workers own connections end to end.
    fn run_legacy(&self, service: &Arc<ExperimentService>) -> ServerStats {
        let queue = Arc::new(ConnQueue::new(self.config.queue_depth));
        let served = Arc::new(AtomicU64::new(0));
        let aborted = Arc::new(AtomicU64::new(0));
        let mut stats = ServerStats::default();

        std::thread::scope(|scope| {
            for i in 0..self.config.threads.max(1) {
                let queue = Arc::clone(&queue);
                let service = Arc::clone(service);
                let served = Arc::clone(&served);
                let aborted = Arc::clone(&aborted);
                let config = self.config.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn_scoped(scope, move || {
                        while let Some((conn, accepted)) = queue.pop() {
                            match serve_connection(conn, accepted, &service, &config) {
                                Ok(()) => served.fetch_add(1, Ordering::Relaxed),
                                Err(_) => aborted.fetch_add(1, Ordering::Relaxed),
                            };
                        }
                    })
                    .expect("spawn worker");
            }

            // Acceptor: poll the nonblocking listener so the shutdown
            // flag (handle or SIGINT) is observed within ~5ms.
            loop {
                if self.shutdown.load(Ordering::SeqCst)
                    || (self.config.watch_sigint && sigint_received())
                {
                    break;
                }
                match self.listener.accept() {
                    Ok((conn, _)) => {
                        stats.accepted += 1;
                        match queue.push(conn, Instant::now()) {
                            Push::Queued => {}
                            Push::Full(mut conn) => {
                                stats.rejected += 1;
                                service.record_rejected();
                                // Even a rejected connection gets a
                                // request id, so the client's retry
                                // logs and ours can be joined.
                                let rid = span::next_request_id();
                                log::warn(
                                    "serve.http",
                                    "connection queue full; rejecting with 503",
                                    &[
                                        ("request_id", &rid),
                                        ("queue_depth", &self.config.queue_depth.to_string()),
                                    ],
                                );
                                let mut response = overloaded();
                                response.request_id = Some(rid);
                                let _ = conn.set_write_timeout(Some(self.config.write_timeout));
                                let _ = write_response(&mut conn, &response);
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // A failed accept (e.g. fd exhaustion) is not
                        // fatal; back off and keep serving.
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }

            // Graceful drain: serve everything queued, then join.
            queue.close();
        });

        stats.served = served.load(Ordering::Relaxed);
        stats.aborted = aborted.load(Ordering::Relaxed);
        stats
    }
}

/// The canned backpressure response (shared by the legacy queue-full
/// and the reactor connection-cap rejections).
pub(crate) fn overloaded() -> Response {
    Response {
        retry_after: Some(1),
        ..Response::json(
            503,
            JsonObject::render(|o| {
                o.str("error", "server overloaded, retry shortly");
            }),
        )
    }
}

/// Serves one connection: one request, one response, close.
///
/// Every parsed request gets a [`TraceContext`] whose epoch is the
/// accept instant, so the span tree covers the request's whole life:
/// `queue` (accept → worker pop), `parse`, `handler` (with the
/// service's and harness's nested spans underneath), and `write`, all
/// children of a root `request` span. The id rides back on
/// `X-Request-Id`, the root-level stage durations on `Server-Timing`,
/// and the finished tree lands in the service's debug ring / span log.
fn serve_connection(
    mut conn: TcpStream,
    accepted: Instant,
    service: &ExperimentService,
    config: &ServerConfig,
) -> io::Result<()> {
    // Held across handling AND the response write, so a streamed body
    // still being produced keeps the pre-warm thread parked.
    let _in_flight = service.in_flight_guard();
    conn.set_read_timeout(Some(config.read_timeout))?;
    conn.set_write_timeout(Some(config.write_timeout))?;
    let popped = Instant::now();
    let queue_us = popped.duration_since(accepted).as_micros() as u64;
    service.record_queue_wait(queue_us);
    match read_request(&mut conn) {
        Ok(request) => {
            let parsed = Instant::now();
            let rid = request
                .request_id
                .clone()
                .unwrap_or_else(span::next_request_id);
            let ctx = TraceContext::with_epoch(rid.clone(), accepted);
            let root = ctx.alloc_id();
            ctx.record("queue", root, 0, queue_us);
            ctx.record(
                "parse",
                root,
                queue_us,
                parsed.duration_since(popped).as_micros() as u64,
            );
            let prev = span::set_scope(Some(TraceScope::new(ctx.clone(), root)));
            let mut response = span::record_current("handler", || service.handle(&request));
            span::set_scope(prev);
            response.request_id = Some(rid);
            response.server_timing = Some(server_timing(&ctx, root));
            let write_start = ctx.now_us();
            let written = write_response(&mut conn, &response);
            ctx.record("write", root, write_start, ctx.now_us() - write_start);
            ctx.record("request", 0, 0, ctx.now_us());
            // Keep the finished trace (ring + span log) even when the
            // peer vanished mid-write: the failure is exactly when the
            // trace is wanted.
            service.finish_request(&ctx, &request.path, response.status);
            service.record_http(popped.elapsed().as_micros() as u64);
            written
        }
        Err(e) => match e.status() {
            Some(status) => {
                let rid = span::next_request_id();
                log::warn(
                    "serve.http",
                    "request parse failed",
                    &[
                        ("request_id", &rid),
                        ("status", &status.to_string()),
                        ("error", &format!("{e:?}")),
                    ],
                );
                let mut response = error_response(status, &e);
                response.request_id = Some(rid);
                let written = write_response(&mut conn, &response);
                service.record_http(popped.elapsed().as_micros() as u64);
                written
            }
            // Nothing sensible to write (peer gone); count as aborted.
            None => Err(io_error(e)),
        },
    }
}

/// Renders a `Server-Timing` header value from the root-level
/// transport spans (`queue`, `parse`, `handler`), in span order, as
/// `name;dur=<ms>` entries. Nested handler work stays out of the
/// header (it is in the trace); clients get the coarse where-did-the-
/// time-go split without asking for the full tree.
pub(crate) fn server_timing(ctx: &TraceContext, root: u32) -> String {
    let mut parts = Vec::new();
    for s in ctx.spans() {
        if s.parent == root && matches!(s.name.as_str(), "queue" | "parse" | "handler") {
            parts.push(format!("{};dur={:.3}", s.name, s.dur_us as f64 / 1000.0));
        }
    }
    parts.join(", ")
}

pub(crate) fn error_response(status: u16, e: &RequestError) -> Response {
    let message = match e {
        RequestError::BadRequest(m) => m.clone(),
        RequestError::MethodNotAllowed(m) => format!("method {m} not allowed; use GET"),
        RequestError::UriTooLong => "request line too long".into(),
        RequestError::HeadersTooLarge => "too many or too large headers".into(),
        RequestError::BodyUnsupported => "request bodies are not accepted".into(),
        RequestError::Timeout => "timed out reading the request".into(),
        RequestError::Io(e) => e.to_string(),
    };
    Response::json(
        status,
        JsonObject::render(|o| {
            o.str("error", &message);
        }),
    )
}

fn io_error(e: RequestError) -> io::Error {
    match e {
        RequestError::Io(e) => e,
        other => io::Error::other(format!("{other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use std::io::{Read as _, Write as _};

    fn spawn_server(
        config: ServerConfig,
    ) -> (
        SocketAddr,
        ShutdownHandle,
        std::thread::JoinHandle<ServerStats>,
    ) {
        let service = Arc::new(ExperimentService::new(ServiceConfig::default(), None));
        let server = Server::bind(config).unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run(service));
        (addr, handle, join)
    }

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut conn = TcpStream::connect(addr).unwrap();
        write!(
            conn,
            "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut text = String::new();
        conn.read_to_string(&mut text).unwrap();
        let status = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn local_config(transport: Transport) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            threads: 2,
            transport,
            ..ServerConfig::default()
        }
    }

    const BOTH: [Transport; 2] = [Transport::Reactor, Transport::Legacy];

    #[test]
    fn serves_health_and_drains_on_shutdown() {
        for transport in BOTH {
            let (addr, handle, join) = spawn_server(local_config(transport));
            let (status, body) = get(addr, "/healthz");
            assert_eq!(status, 200, "{transport:?}");
            assert_eq!(body, "{\"status\":\"ok\"}", "{transport:?}");
            handle.shutdown();
            let stats = join.join().unwrap();
            assert_eq!(stats.served, 1, "{transport:?}");
            assert_eq!(stats.rejected, 0, "{transport:?}");
        }
    }

    #[test]
    fn unknown_route_is_404_and_bad_bytes_400() {
        for transport in BOTH {
            let (addr, handle, join) = spawn_server(local_config(transport));
            let (status, _) = get(addr, "/nope");
            assert_eq!(status, 404, "{transport:?}");

            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(b"\x01\x02garbage\r\n\r\n").unwrap();
            let mut text = String::new();
            conn.read_to_string(&mut text).unwrap();
            assert!(text.starts_with("HTTP/1.1 400 "), "{transport:?}: {text}");

            handle.shutdown();
            join.join().unwrap();
        }
    }

    #[test]
    fn slow_client_gets_408_not_a_stuck_worker() {
        for transport in BOTH {
            let (addr, handle, join) = spawn_server(ServerConfig {
                read_timeout: Duration::from_millis(50),
                ..local_config(transport)
            });
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(b"GET /healthz HTT").unwrap(); // ...and stall.
            let mut text = String::new();
            conn.read_to_string(&mut text).unwrap();
            assert!(text.starts_with("HTTP/1.1 408 "), "{transport:?}: {text}");
            handle.shutdown();
            join.join().unwrap();
        }
    }

    #[test]
    fn shutdown_with_no_traffic_exits_promptly() {
        for transport in BOTH {
            let (_addr, handle, join) = spawn_server(local_config(transport));
            handle.shutdown();
            let stats = join.join().unwrap();
            assert_eq!(stats, ServerStats::default(), "{transport:?}");
        }
    }

    #[test]
    fn reactor_keeps_connections_alive_across_requests() {
        let (addr, handle, join) = spawn_server(local_config(Transport::Reactor));
        let mut conn = TcpStream::connect(addr).unwrap();
        let mut reader = std::io::BufReader::new(conn.try_clone().unwrap());
        for _ in 0..3 {
            write!(conn, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            let (head, body) = read_one_response(&mut reader);
            assert!(head.starts_with("HTTP/1.1 200 "), "{head}");
            assert!(head.contains("Connection: keep-alive"), "{head}");
            assert_eq!(body, "{\"status\":\"ok\"}");
        }
        drop(conn);
        drop(reader);
        handle.shutdown();
        let stats = join.join().unwrap();
        assert_eq!(stats.accepted, 1, "one connection carried all requests");
        assert_eq!(stats.served, 3);
        assert_eq!(stats.aborted, 0, "client close between requests is clean");
    }

    /// Reads exactly one `Content-Length`-framed response off a
    /// keep-alive connection.
    fn read_one_response(reader: &mut impl std::io::BufRead) -> (String, String) {
        let mut head = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" {
                break;
            }
            head.push_str(&line);
        }
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("content-length")
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).unwrap();
        (head, String::from_utf8(body).unwrap())
    }
}
