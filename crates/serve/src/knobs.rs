//! Environment knobs for the serve layer, with fail-fast parsing.
//!
//! Same convention as `LOOKAHEAD_PROCS`/`LOOKAHEAD_JOBS` (PR 2): a
//! malformed knob is a hard error the driver turns into exit code 2,
//! never a silent fallback — a typo in `LOOKAHEAD_SERVE_ADDR` must not
//! quietly bind the wrong interface.

use std::net::SocketAddr;
use std::str::FromStr;

/// The address the server binds when neither `--addr` nor
/// `LOOKAHEAD_SERVE_ADDR` says otherwise.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7417";

/// Parses a `LOOKAHEAD_SERVE_ADDR` / `--addr` value: an explicit
/// `IP:PORT` socket address (IPv6 bracketed, e.g. `[::1]:7417`).
/// Port 0 is allowed — the OS picks a free port, which `--addr-file`
/// exposes to scripts.
///
/// # Errors
///
/// Returns a message naming the knob and the accepted shape.
pub fn parse_serve_addr(v: &str) -> Result<SocketAddr, String> {
    SocketAddr::from_str(v.trim()).map_err(|_| {
        format!(
            "LOOKAHEAD_SERVE_ADDR must be an IP:PORT socket address \
             (e.g. 127.0.0.1:7417 or [::1]:0), got {v:?}"
        )
    })
}

/// Parses a `LOOKAHEAD_SERVE_THREADS` / `--threads` value: a positive
/// worker-thread count.
///
/// # Errors
///
/// Returns a message naming the knob.
pub fn parse_serve_threads(v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "LOOKAHEAD_SERVE_THREADS must be a positive integer (worker threads), got {v:?}"
        )),
    }
}

/// The bind address from `LOOKAHEAD_SERVE_ADDR`, or the default.
///
/// # Errors
///
/// Returns the parse error for a set-but-malformed value (fail fast:
/// the caller exits 2).
pub fn serve_addr_from_env() -> Result<SocketAddr, String> {
    match std::env::var("LOOKAHEAD_SERVE_ADDR") {
        Ok(v) => parse_serve_addr(&v),
        Err(_) => Ok(SocketAddr::from_str(DEFAULT_ADDR).expect("default address parses")),
    }
}

/// The worker-thread count from `LOOKAHEAD_SERVE_THREADS`, or `None`
/// when unset (the caller picks its own default).
///
/// # Errors
///
/// Returns the parse error for a set-but-malformed value.
pub fn serve_threads_from_env() -> Result<Option<usize>, String> {
    match std::env::var("LOOKAHEAD_SERVE_THREADS") {
        Ok(v) => parse_serve_threads(&v).map(Some),
        Err(_) => Ok(None),
    }
}

/// Parses a `LOOKAHEAD_SERVE_TRANSPORT` / transport-flag value:
/// `reactor` (the epoll event loop, default) or `legacy` (the
/// thread-per-connection pool).
///
/// # Errors
///
/// Returns a message naming the knob.
pub fn parse_serve_transport(v: &str) -> Result<crate::server::Transport, String> {
    match v.trim() {
        "reactor" => Ok(crate::server::Transport::Reactor),
        "legacy" => Ok(crate::server::Transport::Legacy),
        _ => Err(format!(
            "LOOKAHEAD_SERVE_TRANSPORT must be \"reactor\" or \"legacy\", got {v:?}"
        )),
    }
}

/// The transport from `LOOKAHEAD_SERVE_TRANSPORT`, or `None` when
/// unset (the caller picks the default, normally the reactor).
///
/// # Errors
///
/// Returns the parse error for a set-but-malformed value.
pub fn serve_transport_from_env() -> Result<Option<crate::server::Transport>, String> {
    match std::env::var("LOOKAHEAD_SERVE_TRANSPORT") {
        Ok(v) => parse_serve_transport(&v).map(Some),
        Err(_) => Ok(None),
    }
}

/// Parses a `--max-connections` value: the reactor's open-connection
/// cap (positive).
///
/// # Errors
///
/// Returns a message naming the knob.
pub fn parse_max_connections(v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "--max-connections must be a positive integer (open-connection cap), got {v:?}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_accepts_socket_addresses() {
        assert_eq!(
            parse_serve_addr("127.0.0.1:7417").unwrap().to_string(),
            "127.0.0.1:7417"
        );
        assert_eq!(
            parse_serve_addr(" 0.0.0.0:80 ").unwrap().to_string(),
            "0.0.0.0:80"
        );
        assert_eq!(parse_serve_addr("[::1]:0").unwrap().port(), 0);
        assert_eq!(parse_serve_addr("127.0.0.1:0").unwrap().port(), 0);
    }

    #[test]
    fn addr_rejects_everything_else_with_the_knob_named() {
        for bad in [
            "",
            "localhost:80", // hostnames need resolution; demand an IP
            "127.0.0.1",    // missing port
            ":8080",
            "127.0.0.1:notaport",
            "127.0.0.1:99999",
            "http://127.0.0.1:80",
        ] {
            let err = parse_serve_addr(bad).unwrap_err();
            assert!(err.contains("LOOKAHEAD_SERVE_ADDR"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn threads_accepts_positive_integers_only() {
        assert_eq!(parse_serve_threads("8"), Ok(8));
        assert_eq!(parse_serve_threads(" 1 "), Ok(1));
        for bad in ["0", "", "eight", "-2", "1.5"] {
            let err = parse_serve_threads(bad).unwrap_err();
            assert!(err.contains("LOOKAHEAD_SERVE_THREADS"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn default_addr_is_valid() {
        assert!(parse_serve_addr(DEFAULT_ADDR).is_ok());
    }

    #[test]
    fn transport_accepts_the_two_transports_only() {
        use crate::server::Transport;
        assert_eq!(parse_serve_transport("reactor"), Ok(Transport::Reactor));
        assert_eq!(parse_serve_transport(" legacy "), Ok(Transport::Legacy));
        for bad in ["", "epoll", "threads", "Reactor1"] {
            let err = parse_serve_transport(bad).unwrap_err();
            assert!(err.contains("LOOKAHEAD_SERVE_TRANSPORT"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn max_connections_accepts_positive_integers_only() {
        assert_eq!(parse_max_connections("4096"), Ok(4096));
        for bad in ["0", "", "-1", "many"] {
            let err = parse_max_connections(bad).unwrap_err();
            assert!(err.contains("--max-connections"), "{bad:?}: {err}");
        }
    }
}
