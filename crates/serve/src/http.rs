//! A deliberately small, hardened HTTP/1.1 layer over raw streams.
//!
//! This is not a general HTTP implementation: the service only needs
//! `GET` with a query string, HTTP/1.1 keep-alive with `Connection:
//! close` opt-out, and chunked streaming. What it *does* need — and
//! what this module is careful about — is surviving arbitrary bytes
//! from the network: every limit is explicit (request-line length,
//! header count and size), every malformed input is a typed error
//! mapped to a 4xx status, and nothing in here panics on any byte
//! stream. Parsing comes in two shapes over the same `parse_head`
//! core: the blocking one-shot [`read_request`] (legacy transport) and
//! the resumable [`HeadParser`] that the epoll reactor feeds as bytes
//! arrive, including pipelined requests left over from earlier reads.

use std::io::{self, Read, Write};
use std::sync::Mutex;

/// Longest accepted request line (method + target + version), bytes.
pub const MAX_REQUEST_LINE: usize = 8192;
/// Most header lines accepted before answering 431.
pub const MAX_HEADER_COUNT: usize = 100;
/// Longest accepted single header line, bytes.
pub const MAX_HEADER_LINE: usize = 8192;
/// Hard cap on the bytes read for one request head.
const MAX_HEAD_BYTES: usize = MAX_REQUEST_LINE + MAX_HEADER_COUNT * MAX_HEADER_LINE;

/// A parsed request: method, decoded path, decoded query parameters in
/// wire order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    /// Percent-decoded path, e.g. `/v1/experiments`.
    pub path: String,
    /// Percent-decoded `key=value` pairs in the order sent.
    pub query: Vec<(String, String)>,
    /// A client-supplied `X-Request-Id` header, kept only when it is
    /// safe to echo (see [`lookahead_obs::span::valid_request_id`]);
    /// the transport mints a deterministic id otherwise.
    pub request_id: Option<String>,
    /// Whether the connection may serve another request after this
    /// one: HTTP/1.1 defaults to keep-alive unless the client sent
    /// `Connection: close`; HTTP/1.0 requires an explicit
    /// `Connection: keep-alive`. The legacy transport ignores this and
    /// always closes.
    pub keep_alive: bool,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be served; each variant maps to a status
/// (or to silently dropping the connection for pure I/O failures).
#[derive(Debug)]
pub enum RequestError {
    /// Unparseable request head → 400.
    BadRequest(String),
    /// Parsed, but a method other than GET → 405.
    MethodNotAllowed(String),
    /// Request line over [`MAX_REQUEST_LINE`] → 414.
    UriTooLong,
    /// Too many or too large headers → 431.
    HeadersTooLarge,
    /// A request body was announced; this service accepts none → 413.
    BodyUnsupported,
    /// The socket read timed out mid-request → 408.
    Timeout,
    /// The peer vanished or the socket failed; nothing to send.
    Io(io::Error),
}

impl RequestError {
    /// The status line to answer with, or `None` when the connection
    /// is not worth (or capable of) a response.
    pub fn status(&self) -> Option<u16> {
        match self {
            RequestError::BadRequest(_) => Some(400),
            RequestError::MethodNotAllowed(_) => Some(405),
            RequestError::UriTooLong => Some(414),
            RequestError::HeadersTooLarge => Some(431),
            RequestError::BodyUnsupported => Some(413),
            RequestError::Timeout => Some(408),
            RequestError::Io(_) => None,
        }
    }
}

/// The canonical reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Reads one request head (everything through the blank line) from
/// `stream` and parses it.
///
/// # Errors
///
/// Every malformed, oversized, or timed-out input is a typed
/// [`RequestError`]; this function does not panic on any byte stream.
pub fn read_request(stream: &mut impl Read) -> Result<Request, RequestError> {
    let head = read_head(stream)?;
    parse_head(&head)
}

/// Reads bytes until the `\r\n\r\n` (or lenient `\n\n`) terminator,
/// with hard caps on total size.
fn read_head(stream: &mut impl Read) -> Result<Vec<u8>, RequestError> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => {
                return Err(if head.is_empty() {
                    RequestError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before a request",
                    ))
                } else {
                    RequestError::BadRequest("truncated request head".into())
                })
            }
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Err(RequestError::Timeout)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(RequestError::Io(e)),
        };
        head.extend_from_slice(&buf[..n]);
        if find_head_end(&head).is_some() {
            return Ok(head);
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(RequestError::HeadersTooLarge);
        }
        // An endless first line is a 414, not a 431.
        if !head.contains(&b'\n') && head.len() > MAX_REQUEST_LINE {
            return Err(RequestError::UriTooLong);
        }
    }
}

/// Offset one past the head terminator, if present.
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| bytes.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

fn parse_head(head: &[u8]) -> Result<Request, RequestError> {
    let end = find_head_end(head).unwrap_or(head.len());
    let text = std::str::from_utf8(&head[..end])
        .map_err(|_| RequestError::BadRequest("request head is not UTF-8".into()))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    let request_line = lines
        .next()
        .ok_or_else(|| RequestError::BadRequest("empty request".into()))?;
    if request_line.len() > MAX_REQUEST_LINE {
        return Err(RequestError::UriTooLong);
    }
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or_else(|| RequestError::BadRequest("missing method".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| RequestError::BadRequest("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| RequestError::BadRequest("missing HTTP version".into()))?;
    if parts.next().is_some() {
        return Err(RequestError::BadRequest("malformed request line".into()));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }
    if !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(RequestError::BadRequest(format!("bad method {method:?}")));
    }
    if method != "GET" {
        return Err(RequestError::MethodNotAllowed(method.to_string()));
    }

    // Headers: bounded, and a body announcement is rejected outright.
    let mut count = 0usize;
    let mut request_id = None;
    let mut conn_close = false;
    let mut conn_keep_alive = false;
    for line in lines {
        if line.is_empty() {
            break;
        }
        count += 1;
        if count > MAX_HEADER_COUNT || line.len() > MAX_HEADER_LINE {
            return Err(RequestError::HeadersTooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::BadRequest(format!(
                "malformed header line {line:?}"
            )));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" && value != "0" {
            return Err(RequestError::BodyUnsupported);
        }
        if name == "transfer-encoding" {
            return Err(RequestError::BodyUnsupported);
        }
        if name == "connection" {
            for token in value.split(',') {
                match token.trim().to_ascii_lowercase().as_str() {
                    "close" => conn_close = true,
                    "keep-alive" => conn_keep_alive = true,
                    _ => {}
                }
            }
        }
        // Honor a client correlation id only when it is safe to echo
        // into a response header and logs; junk is ignored, not a 4xx.
        if name == "x-request-id" && lookahead_obs::span::valid_request_id(value) {
            request_id = Some(value.to_string());
        }
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    if !path.starts_with('/') {
        return Err(RequestError::BadRequest(format!(
            "request target must be absolute, got {target:?}"
        )));
    }
    Ok(Request {
        method: method.to_string(),
        path: percent_decode(path),
        query: parse_query(query),
        request_id,
        keep_alive: if version == "HTTP/1.0" {
            conn_keep_alive && !conn_close
        } else {
            !conn_close
        },
    })
}

/// A resumable request-head parser for non-blocking transports: feed
/// it whatever bytes `read` returned (including across `EAGAIN`
/// boundaries) and it yields a [`Request`] once the blank-line
/// terminator arrives. Bytes beyond the terminator — pipelined
/// requests — stay buffered; after the current response is written,
/// call [`HeadParser::advance`] to parse the next head without
/// touching the socket.
///
/// Limits and error codes are identical to the one-shot
/// [`read_request`] path: oversized heads are 431, an endless request
/// line is 414, malformed heads are 400 — pinned by the
/// split-invariance property tests.
#[derive(Default)]
pub struct HeadParser {
    buf: Vec<u8>,
}

impl HeadParser {
    pub fn new() -> HeadParser {
        HeadParser { buf: Vec::new() }
    }

    /// Appends freshly-read bytes and tries to complete a head.
    ///
    /// # Errors
    ///
    /// The same typed [`RequestError`]s as the one-shot parser; the
    /// caller answers the mapped status and closes the connection.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Option<Request>, RequestError> {
        self.buf.extend_from_slice(chunk);
        self.advance()
    }

    /// Tries to parse a head from bytes already buffered (pipelined
    /// requests). Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// See [`HeadParser::feed`].
    pub fn advance(&mut self) -> Result<Option<Request>, RequestError> {
        match find_head_end(&self.buf) {
            Some(end) => {
                let request = parse_head(&self.buf[..end]);
                self.buf.drain(..end);
                request.map(Some)
            }
            None => {
                if self.buf.len() > MAX_HEAD_BYTES {
                    return Err(RequestError::HeadersTooLarge);
                }
                if !self.buf.contains(&b'\n') && self.buf.len() > MAX_REQUEST_LINE {
                    return Err(RequestError::UriTooLong);
                }
                Ok(None)
            }
        }
    }

    /// Whether any bytes of a (possibly partial) next request are
    /// buffered — the reactor uses this to tell an idle keep-alive
    /// connection (safe to close silently) from one mid-request (a
    /// stall deserves a 408).
    pub fn has_buffered(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Buffered byte count (observability).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// Splits a raw query string into decoded pairs, preserving order.
/// Empty segments are skipped; a segment without `=` gets an empty
/// value.
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Lenient percent-decoding: `%XX` becomes the byte, `+` becomes a
/// space, invalid escapes pass through literally, and invalid UTF-8 is
/// replaced rather than rejected (the router will 404/400 anyway).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// An incremental response body: a one-shot producer that writes the
/// body in fragments. Each `write` call the producer makes is framed
/// as one HTTP/1.1 chunk by [`write_response`], so a client sees
/// fragments as they are produced instead of waiting for the whole
/// body. The concatenated fragments must equal the body the buffered
/// path would have sent — streaming changes the framing, never the
/// bytes (the streaming tests pin this).
pub struct StreamBody {
    /// `FnOnce` behind a `Mutex<Option<..>>` so the producer can run
    /// through the `&Response` the transport already passes around.
    producer: Mutex<Option<BodyProducer>>,
}

type BodyProducer = Box<dyn FnOnce(&mut dyn Write) -> io::Result<()> + Send>;

impl StreamBody {
    /// Wraps a body producer. The producer receives the sink to write
    /// fragments into; every `write`/`write_all` becomes one chunk on
    /// the wire.
    pub fn new(
        producer: impl FnOnce(&mut dyn Write) -> io::Result<()> + Send + 'static,
    ) -> StreamBody {
        StreamBody {
            producer: Mutex::new(Some(Box::new(producer))),
        }
    }

    /// Runs the producer into `sink`. One-shot: a second call writes
    /// nothing (the body was already produced).
    ///
    /// # Errors
    ///
    /// Propagates the producer's sink write failures.
    pub fn produce(&self, sink: &mut dyn Write) -> io::Result<()> {
        let producer = self
            .producer
            .lock()
            .expect("stream producer poisoned")
            .take();
        match producer {
            Some(f) => f(sink),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for StreamBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let consumed = self.producer.lock().map(|g| g.is_none()).unwrap_or(true);
        f.debug_struct("StreamBody")
            .field("consumed", &consumed)
            .finish()
    }
}

/// A response about to be written: status, content type, body, and an
/// optional `Retry-After` (the backpressure signal on 503).
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
    pub retry_after: Option<u32>,
    /// Echoed as `X-Request-Id` on every transport-written response
    /// (success, 4xx/5xx, and 503 backpressure alike).
    pub request_id: Option<String>,
    /// `Server-Timing` header value (per-stage durations for clients
    /// like `loadgen`); the transport fills this from the span tree.
    pub server_timing: Option<String>,
    /// When set, the body is produced incrementally and written with
    /// chunked framing; `body` is ignored by the transport (it stays
    /// empty on streamed responses).
    pub stream: Option<StreamBody>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response::with_type(status, "application/json", body)
    }

    /// A response with an explicit content type (e.g. the Prometheus
    /// text exposition).
    pub fn with_type(status: u16, content_type: &'static str, body: String) -> Response {
        Response {
            status,
            content_type,
            body,
            retry_after: None,
            request_id: None,
            server_timing: None,
            stream: None,
        }
    }

    /// A streamed JSON response: the producer's fragments are the
    /// body.
    pub fn json_stream(
        producer: impl FnOnce(&mut dyn Write) -> io::Result<()> + Send + 'static,
    ) -> Response {
        Response {
            stream: Some(StreamBody::new(producer)),
            ..Response::json(200, String::new())
        }
    }

    /// The complete body bytes, draining the stream producer into
    /// memory when the response is streamed (the `lookahead query`
    /// path and tests; the HTTP transport streams instead). One-shot
    /// for streamed responses.
    pub fn full_body(&self) -> String {
        match &self.stream {
            None => self.body.clone(),
            Some(s) => {
                let mut buf = Vec::new();
                s.produce(&mut buf).expect("in-memory sink cannot fail");
                String::from_utf8_lossy(&buf).into_owned()
            }
        }
    }
}

/// Frames every `write` call as one HTTP/1.1 chunk.
struct ChunkWriter<'a, W: Write> {
    inner: &'a mut W,
}

impl<W: Write> Write for ChunkWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        // A zero-length chunk would terminate the body early; skip it.
        if !buf.is_empty() {
            write!(self.inner, "{:x}\r\n", buf.len())?;
            self.inner.write_all(buf)?;
            self.inner.write_all(b"\r\n")?;
            // Fragments should reach the client as they are produced.
            self.inner.flush()?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Writes `response` with `Connection: close` framing: buffered bodies
/// with `Content-Length`, streamed bodies with `Transfer-Encoding:
/// chunked` (one chunk per produced fragment, then the zero-length
/// terminator).
///
/// # Errors
///
/// Propagates socket write failures (the caller logs and drops).
pub fn write_response(stream: &mut impl Write, response: &Response) -> io::Result<()> {
    stream.write_all(response_head(response, true).as_bytes())?;
    match &response.stream {
        Some(body) => {
            body.produce(&mut ChunkWriter { inner: stream })?;
            stream.write_all(b"0\r\n\r\n")?;
        }
        None => stream.write_all(response.body.as_bytes())?,
    }
    stream.flush()
}

/// Renders the response head. `close: true` reproduces the legacy
/// transport's bytes exactly; the reactor passes `false` on keep-alive
/// responses, which differ from the legacy bytes only in the
/// `Connection` header value. Header order is load-bearing: the golden
/// transport-diff in CI compares heads modulo this one header.
pub fn response_head(response: &Response, close: bool) -> String {
    let framing = match &response.stream {
        Some(_) => "Transfer-Encoding: chunked".to_string(),
        None => format!("Content-Length: {}", response.body.len()),
    };
    let connection = if close { "close" } else { "keep-alive" };
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\n{framing}\r\nConnection: {connection}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
    );
    if let Some(secs) = response.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    if let Some(id) = &response.request_id {
        head.push_str(&format!("X-Request-Id: {id}\r\n"));
    }
    if let Some(timing) = &response.server_timing {
        head.push_str(&format!("Server-Timing: {timing}\r\n"));
    }
    head.push_str("\r\n");
    head
}

/// Decodes a chunked transfer-encoded body back to its bytes (test
/// and CLI helper; lenient about trailing garbage after the
/// terminator).
///
/// # Errors
///
/// Returns a message when the chunk framing is malformed.
pub fn decode_chunked(body: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    let mut rest = body;
    loop {
        let line_end = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or("missing chunk-size line terminator")?;
        let size_line =
            std::str::from_utf8(&rest[..line_end]).map_err(|_| "chunk size is not UTF-8")?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        rest = &rest[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if rest.len() < size + 2 {
            return Err(format!("truncated chunk of {size} bytes"));
        }
        out.extend_from_slice(&rest[..size]);
        if &rest[size..size + 2] != b"\r\n" {
            return Err("chunk data not terminated by CRLF".into());
        }
        rest = &rest[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, RequestError> {
        let mut cursor = io::Cursor::new(bytes.to_vec());
        read_request(&mut cursor)
    }

    #[test]
    fn parses_a_plain_get() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.query.is_empty());
    }

    #[test]
    fn parses_query_parameters_in_order() {
        let r = parse(b"GET /v1/experiments?app=mp3d&model=ds&window=64 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(
            r.query,
            vec![
                ("app".into(), "mp3d".into()),
                ("model".into(), "ds".into()),
                ("window".into(), "64".into()),
            ]
        );
        assert_eq!(r.param("model"), Some("ds"));
        assert_eq!(r.param("missing"), None);
    }

    #[test]
    fn percent_decoding_is_lenient() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%"), "%");
        assert_eq!(percent_decode("%4"), "%4");
        assert_eq!(percent_decode("caf%C3%A9"), "café");
        // Invalid UTF-8 after decoding is replaced, not a panic.
        assert_eq!(percent_decode("%ff"), "\u{fffd}");
    }

    #[test]
    fn rejects_non_get_with_405() {
        for m in ["POST", "PUT", "DELETE", "HEAD", "OPTIONS"] {
            let e = parse(format!("{m} / HTTP/1.1\r\n\r\n").as_bytes()).unwrap_err();
            assert_eq!(e.status(), Some(405), "{m}");
        }
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bytes in [
            &b"\x00\x01\x02\x03\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / \r\n\r\n",
            b"GET / SPDY/3\r\n\r\n",
            b"get / http/1.1\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"\xff\xfe\xfd\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
        ] {
            let e = parse(bytes).unwrap_err();
            assert_eq!(e.status(), Some(400), "{bytes:?}");
        }
    }

    #[test]
    fn truncated_head_is_a_bad_request() {
        let e = parse(b"GET / HTTP/1.1\r\nHost: x").unwrap_err();
        assert_eq!(e.status(), Some(400));
    }

    #[test]
    fn empty_connection_is_io_not_a_status() {
        let e = parse(b"").unwrap_err();
        assert!(e.status().is_none());
    }

    #[test]
    fn oversized_request_line_is_414() {
        let mut req = b"GET /".to_vec();
        req.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + 10));
        let e = parse(&req).unwrap_err();
        assert_eq!(e.status(), Some(414));
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut req = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..MAX_HEADER_COUNT + 5 {
            req.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        req.extend_from_slice(b"\r\n");
        let e = parse(&req).unwrap_err();
        assert_eq!(e.status(), Some(431));
    }

    #[test]
    fn announced_bodies_are_rejected() {
        let e = parse(b"GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789").unwrap_err();
        assert_eq!(e.status(), Some(413));
        let e = parse(b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), Some(413));
        // An explicit zero-length body is fine.
        assert!(parse(b"GET / HTTP/1.1\r\nContent-Length: 0\r\n\r\n").is_ok());
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let r = parse(b"GET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(r.path, "/healthz");
    }

    #[test]
    fn keep_alive_follows_http_version_and_connection_header() {
        let r = parse(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
        let r = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse(b"GET / HTTP/1.1\r\nConnection: Keep-Alive, close\r\n\r\n").unwrap();
        assert!(!r.keep_alive, "close wins over keep-alive");
        let r = parse(b"GET / HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
        let r = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive, "HTTP/1.0 may opt in");
    }

    #[test]
    fn head_parser_resumes_across_arbitrary_splits() {
        let wire = b"GET /v1/experiments?app=lu HTTP/1.1\r\nX-Request-Id: abc-1\r\n\r\n";
        let mut parser = HeadParser::new();
        for b in &wire[..wire.len() - 1] {
            assert!(parser.feed(&[*b]).unwrap().is_none());
        }
        let r = parser
            .feed(&wire[wire.len() - 1..])
            .unwrap()
            .expect("head complete");
        assert_eq!(r.path, "/v1/experiments");
        assert_eq!(r.request_id.as_deref(), Some("abc-1"));
        assert!(!parser.has_buffered());
    }

    #[test]
    fn head_parser_retains_pipelined_requests() {
        let mut parser = HeadParser::new();
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let first = parser.feed(two).unwrap().expect("first head");
        assert_eq!(first.path, "/a");
        assert!(first.keep_alive);
        assert!(parser.has_buffered(), "second request stays buffered");
        let second = parser.advance().unwrap().expect("second head");
        assert_eq!(second.path, "/b");
        assert!(!second.keep_alive);
        assert!(parser.advance().unwrap().is_none());
        assert!(!parser.has_buffered());
    }

    #[test]
    fn head_parser_applies_the_same_limits() {
        let mut parser = HeadParser::new();
        let mut line = b"GET /".to_vec();
        line.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + 10));
        let e = parser.feed(&line).unwrap_err();
        assert_eq!(e.status(), Some(414));
    }

    #[test]
    fn response_head_differs_only_in_connection_header() {
        let resp = Response {
            request_id: Some("req-000000000001".into()),
            ..Response::json(200, "{}".into())
        };
        let closed = response_head(&resp, true);
        let kept = response_head(&resp, false);
        assert_eq!(
            closed.replace("Connection: close", "Connection: keep-alive"),
            kept
        );
    }

    #[test]
    fn response_framing_includes_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"a\":1}".into())).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"a\":1}"));
    }

    #[test]
    fn client_request_ids_are_kept_only_when_safe() {
        let r = parse(b"GET / HTTP/1.1\r\nX-Request-Id: client-42\r\n\r\n").unwrap();
        assert_eq!(r.request_id.as_deref(), Some("client-42"));
        // Unsafe ids (header injection, junk) are dropped, not a 4xx.
        let r = parse(b"GET / HTTP/1.1\r\nX-Request-Id: has space\r\n\r\n").unwrap();
        assert_eq!(r.request_id, None);
        let r = parse(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.request_id, None);
    }

    #[test]
    fn request_id_and_server_timing_headers_are_written() {
        let mut out = Vec::new();
        let resp = Response {
            request_id: Some("req-000000000009".into()),
            server_timing: Some("queue;dur=0.120, handler;dur=3.400".into()),
            ..Response::json(200, "{}".into())
        };
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("X-Request-Id: req-000000000009\r\n"),
            "{text}"
        );
        assert!(
            text.contains("Server-Timing: queue;dur=0.120, handler;dur=3.400\r\n"),
            "{text}"
        );
    }

    #[test]
    fn retry_after_header_on_backpressure() {
        let mut out = Vec::new();
        let resp = Response {
            retry_after: Some(1),
            ..Response::json(503, "{}".into())
        };
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Retry-After: 1\r\n"));
    }

    #[test]
    fn random_byte_streams_never_panic() {
        // A tiny deterministic fuzz loop: whatever the bytes, the
        // parser must return, not panic.
        let mut state = 0x9e3779b97f4a7c15u64;
        for len in [0usize, 1, 7, 64, 512, 4096] {
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                bytes.push((state >> 32) as u8);
            }
            bytes.extend_from_slice(b"\r\n\r\n");
            let _ = parse(&bytes);
        }
    }
}
