//! A minimal epoll reactor core built on raw `syscall(2)` shims.
//!
//! The serve tier's zero-dependency rule forbids the `libc` crate, so
//! this module declares the variadic `syscall` symbol directly (the
//! same idiom `signal.rs` uses for `signal`/`_exit`) and issues
//! `epoll_create1`/`epoll_ctl`/`epoll_pwait`/`eventfd2` by number.
//! Everything std already wraps portably — nonblocking sockets,
//! `accept`, `read`, `write` — stays on `std::net`; only the readiness
//! machinery needs shims.
//!
//! Three types make up the surface:
//!
//! * [`Epoll`] — the readiness queue: register file descriptors with a
//!   `u64` token and an interest set, then [`Epoll::wait`] for events.
//!   Registrations are level-triggered: a socket with unread bytes (or
//!   writable space) keeps showing up until the state machine consumes
//!   it, which is the forgiving mode for a single-threaded reactor.
//! * [`Waker`] — an `eventfd` the handler workers write to when a
//!   response is ready, so a reactor parked in `wait` picks up
//!   completions immediately instead of at the next timeout tick.
//! * [`Event`] — one readiness notice, decoded into plain bools.
//!
//! The module is compiled for x86_64/aarch64 Linux; other targets get
//! stubs that report `Unsupported` and the server falls back to the
//! legacy blocking transport (`supported()` tells the caller which
//! world it is in).

use std::io;
use std::time::Duration;

/// Whether the reactor transport can run on this build target.
pub fn supported() -> bool {
    imp::SUPPORTED
}

/// One decoded readiness event for the fd registered under `token`.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    /// Readable — includes hangup/error so a `read` observes the EOF
    /// or failure instead of the connection idling forever.
    pub readable: bool,
    pub writable: bool,
    /// Peer hangup or socket error (`EPOLLHUP`/`EPOLLERR`/
    /// `EPOLLRDHUP`).
    pub hangup: bool,
}

/// The readiness queue. Wraps one `epoll` instance; closed on drop.
pub struct Epoll {
    fd: i32,
}

/// Cross-thread wakeup for a parked reactor (an `eventfd`). Cheap to
/// share behind `Arc`: `wake` is a single 8-byte write.
pub struct Waker {
    fd: i32,
}

pub use imp::raise_nofile_limit;

impl Epoll {
    /// Creates a new epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// The raw syscall's errno, or `Unsupported` off Linux.
    pub fn new() -> io::Result<Epoll> {
        imp::epoll_create().map(|fd| Epoll { fd })
    }

    /// Registers `fd` under `token` with the given interest set.
    ///
    /// # Errors
    ///
    /// The raw syscall's errno (e.g. `EEXIST` on double-add).
    pub fn add(&self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        imp::epoll_ctl(self.fd, imp::EPOLL_CTL_ADD, fd, token, readable, writable)
    }

    /// Replaces the interest set for an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// The raw syscall's errno (e.g. `ENOENT` when never added).
    pub fn modify(&self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        imp::epoll_ctl(self.fd, imp::EPOLL_CTL_MOD, fd, token, readable, writable)
    }

    /// Deregisters `fd`. Closing the fd does this implicitly; explicit
    /// removal keeps the kernel's interest list tight.
    ///
    /// # Errors
    ///
    /// The raw syscall's errno.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        imp::epoll_ctl(self.fd, imp::EPOLL_CTL_DEL, fd, 0, false, false)
    }

    /// Waits for readiness, decoding up to `events`' capacity (set by
    /// the caller via `Vec::with_capacity`; at least 64 is sensible).
    /// `None` blocks indefinitely; `Some(d)` wakes after `d` even with
    /// nothing ready (the reactor's deadline tick). Returns the number
    /// of events appended to `events` (cleared first).
    ///
    /// # Errors
    ///
    /// The raw syscall's errno; `EINTR` is retried internally.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                // Round up so a 0.4ms deadline does not busy-spin.
                let ms = d.as_millis();
                if ms >= i32::MAX as u128 {
                    i32::MAX
                } else if d.is_zero() {
                    0
                } else {
                    (ms as i32).max(1)
                }
            }
        };
        imp::epoll_wait(self.fd, events, timeout_ms)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = imp::close(self.fd);
    }
}

impl Waker {
    /// Creates a nonblocking `eventfd`.
    ///
    /// # Errors
    ///
    /// The raw syscall's errno, or `Unsupported` off Linux.
    pub fn new() -> io::Result<Waker> {
        imp::eventfd().map(|fd| Waker { fd })
    }

    /// The fd to register with [`Epoll::add`] (readable interest).
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Signals the reactor. Saturation (`EAGAIN` on a full counter)
    /// means a wake is already pending, which is success.
    pub fn wake(&self) {
        let one: u64 = 1;
        let _ = imp::write(self.fd, &one.to_ne_bytes());
    }

    /// Consumes pending wakes so level-triggered polling quiesces.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = imp::read(self.fd, &mut buf);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        let _ = imp::close(self.fd);
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::Event;
    use std::ffi::c_long;
    use std::io;

    pub const SUPPORTED: bool = true;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CLOEXEC: c_long = 0o2000000;
    const EFD_CLOEXEC: c_long = 0o2000000;
    const EFD_NONBLOCK: c_long = 0o4000;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const READ: i64 = 0;
        pub const WRITE: i64 = 1;
        pub const CLOSE: i64 = 3;
        pub const EPOLL_CTL: i64 = 233;
        pub const EPOLL_PWAIT: i64 = 281;
        pub const EVENTFD2: i64 = 290;
        pub const EPOLL_CREATE1: i64 = 291;
        pub const PRLIMIT64: i64 = 302;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const READ: i64 = 63;
        pub const WRITE: i64 = 64;
        pub const CLOSE: i64 = 57;
        pub const EPOLL_CTL: i64 = 21;
        pub const EPOLL_PWAIT: i64 = 22;
        pub const EVENTFD2: i64 = 19;
        pub const EPOLL_CREATE1: i64 = 20;
        pub const PRLIMIT64: i64 = 261;
    }

    // The kernel packs epoll_event on x86_64 only.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        /// The C library's variadic syscall entry point; arguments are
        /// register-sized, the return is `-1` + `errno` on failure.
        fn syscall(num: c_long, ...) -> c_long;
    }

    fn check(ret: c_long) -> io::Result<c_long> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create() -> io::Result<i32> {
        // SAFETY: epoll_create1 takes one integer flag argument.
        check(unsafe { syscall(nr::EPOLL_CREATE1 as c_long, EPOLL_CLOEXEC) }).map(|fd| fd as i32)
    }

    pub fn epoll_ctl(
        epfd: i32,
        op: i32,
        fd: i32,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        // RDHUP rides with read interest only: a connection waiting on
        // its handler (no interest) must not get a level-triggered
        // half-close storm while the response is still being computed.
        let mut events = 0;
        if readable {
            events |= EPOLLIN | EPOLLRDHUP;
        }
        if writable {
            events |= EPOLLOUT;
        }
        let ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: the event struct outlives the call; EPOLL_CTL_DEL
        // ignores the pointer but passing a valid one is always fine.
        check(unsafe {
            syscall(
                nr::EPOLL_CTL as c_long,
                epfd as c_long,
                op as c_long,
                fd as c_long,
                &ev as *const EpollEvent,
            )
        })
        .map(|_| ())
    }

    pub fn epoll_wait(epfd: i32, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        const MAX_EVENTS: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let n = loop {
            // SAFETY: `raw` is a valid buffer of MAX_EVENTS entries;
            // a null sigmask makes epoll_pwait behave as epoll_wait
            // (the portable spelling: aarch64 has no epoll_wait).
            let ret = unsafe {
                syscall(
                    nr::EPOLL_PWAIT as c_long,
                    epfd as c_long,
                    raw.as_mut_ptr(),
                    MAX_EVENTS as c_long,
                    timeout_ms as c_long,
                    std::ptr::null::<u8>(),
                    8 as c_long,
                )
            };
            match check(ret) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        out.clear();
        for ev in &raw[..n] {
            let bits = ev.events;
            let hangup = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
            out.push(Event {
                token: ev.data,
                readable: bits & EPOLLIN != 0 || hangup,
                writable: bits & EPOLLOUT != 0,
                hangup,
            });
        }
        Ok(n)
    }

    pub fn eventfd() -> io::Result<i32> {
        // SAFETY: eventfd2 takes an initial count and a flag word.
        check(unsafe { syscall(nr::EVENTFD2 as c_long, 0, EFD_CLOEXEC | EFD_NONBLOCK) })
            .map(|fd| fd as i32)
    }

    pub fn read(fd: i32, buf: &mut [u8]) -> io::Result<usize> {
        // SAFETY: buf is valid for writes of its length.
        check(unsafe {
            syscall(
                nr::READ as c_long,
                fd as c_long,
                buf.as_mut_ptr(),
                buf.len() as c_long,
            )
        })
        .map(|n| n as usize)
    }

    pub fn write(fd: i32, buf: &[u8]) -> io::Result<usize> {
        // SAFETY: buf is valid for reads of its length.
        check(unsafe {
            syscall(
                nr::WRITE as c_long,
                fd as c_long,
                buf.as_ptr(),
                buf.len() as c_long,
            )
        })
        .map(|n| n as usize)
    }

    pub fn close(fd: i32) -> io::Result<()> {
        // SAFETY: the callers own fd and call close exactly once.
        check(unsafe { syscall(nr::CLOSE as c_long, fd as c_long) }).map(|_| ())
    }

    #[repr(C)]
    struct Rlimit64 {
        cur: u64,
        max: u64,
    }

    /// Raises the open-file soft limit toward `want` (capped at the
    /// hard limit) so thousands of sockets fit; returns the resulting
    /// soft limit. Loadgen calls this before opening its fleet.
    ///
    /// # Errors
    ///
    /// The raw `prlimit64` errno.
    pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
        const RLIMIT_NOFILE: c_long = 7;
        let mut old = Rlimit64 { cur: 0, max: 0 };
        // SAFETY: pid 0 = self; a null new-limit pointer reads only.
        check(unsafe {
            syscall(
                nr::PRLIMIT64 as c_long,
                0 as c_long,
                RLIMIT_NOFILE,
                std::ptr::null::<Rlimit64>(),
                &mut old as *mut Rlimit64,
            )
        })?;
        if old.cur >= want {
            return Ok(old.cur);
        }
        let new = Rlimit64 {
            cur: want.min(old.max),
            max: old.max,
        };
        // SAFETY: both pointers reference live structs on this stack.
        check(unsafe {
            syscall(
                nr::PRLIMIT64 as c_long,
                0 as c_long,
                RLIMIT_NOFILE,
                &new as *const Rlimit64,
                std::ptr::null_mut::<Rlimit64>(),
            )
        })?;
        Ok(new.cur)
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::Event;
    use std::io;

    pub const SUPPORTED: bool = false;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the epoll reactor requires Linux; use the legacy transport",
        ))
    }

    pub fn epoll_create() -> io::Result<i32> {
        unsupported()
    }
    pub fn epoll_ctl(_: i32, _: i32, _: i32, _: u64, _: bool, _: bool) -> io::Result<()> {
        unsupported()
    }
    pub fn epoll_wait(_: i32, _: &mut Vec<Event>, _: i32) -> io::Result<usize> {
        unsupported()
    }
    pub fn eventfd() -> io::Result<i32> {
        unsupported()
    }
    pub fn read(_: i32, _: &mut [u8]) -> io::Result<usize> {
        unsupported()
    }
    pub fn write(_: i32, _: &[u8]) -> io::Result<usize> {
        unsupported()
    }
    pub fn close(_: i32) -> io::Result<()> {
        Ok(())
    }
    pub fn raise_nofile_limit(_: u64) -> io::Result<u64> {
        unsupported()
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[test]
    fn waker_rouses_a_parked_wait() {
        let epoll = Epoll::new().unwrap();
        let waker = Waker::new().unwrap();
        epoll.add(waker.fd(), 7, true, false).unwrap();

        let mut events = Vec::new();
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0, "nothing ready before the wake");

        waker.wake();
        waker.wake(); // coalesces, still one event
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        waker.drain();
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0, "drained waker quiesces");
    }

    #[test]
    fn sockets_report_accept_and_read_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(listener.as_raw_fd(), 1, true, false).unwrap();

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!((n, events[0].token), (1, 1), "listener becomes readable");

        let (conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        epoll.add(conn.as_raw_fd(), 2, true, false).unwrap();
        client.write_all(b"ping").unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!((n, events[0].token), (1, 2), "connection becomes readable");

        // Interest can be narrowed and restored.
        epoll.modify(conn.as_raw_fd(), 2, false, true).unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1 && events[0].writable, "EPOLLOUT on an open socket");
        epoll.delete(conn.as_raw_fd()).unwrap();
    }

    #[test]
    fn wait_timeout_expires_without_events() {
        let epoll = Epoll::new().unwrap();
        let start = Instant::now();
        let mut events = Vec::new();
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn nofile_limit_can_be_raised() {
        let got = raise_nofile_limit(1024).unwrap();
        assert!(got >= 1024);
    }
}
