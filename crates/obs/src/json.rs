//! A tiny hand-rolled JSON layer: an escape-correct compact writer
//! ([`JsonObject`] / [`JsonArray`]), enough parser to read back our
//! own JSONL (flat objects of string and unsigned-integer fields), and
//! the [`quote`] primitive both sides share.
//!
//! This is intentionally not a general JSON library; it exists so the
//! workspace has no external dependencies. The writer is the one JSON
//! encoder of the workspace — the journal/metrics exporters, the
//! experiment service's response bodies and the bench load generator
//! all build their output through it instead of hand-rolling strings.
//! Output is compact (no insignificant whitespace) and deterministic:
//! fields appear exactly in the order they are written.
//!
//! ```
//! use lookahead_obs::json::JsonObject;
//!
//! let body = JsonObject::render(|o| {
//!     o.str("app", "MP3D").u64("window", 64);
//!     o.array("models", |a| {
//!         a.str("base");
//!         a.str("ds");
//!     });
//! });
//! assert_eq!(body, r#"{"app":"MP3D","window":64,"models":["base","ds"]}"#);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Quotes a string as a JSON string literal, escaping the characters
/// our identifiers can contain. Control characters are escaped as
/// `\u00XX`; everything else passes through as UTF-8.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number: finite values use Rust's
/// shortest-roundtrip `Display` (deterministic across platforms);
/// NaN and infinities, which JSON cannot represent, become `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let mut s = v.to_string();
        // `Display` omits the fraction for integral values ("3"); keep
        // that — both are valid JSON numbers and it is deterministic.
        if s == "-0" {
            s = "0".to_string();
        }
        s
    } else {
        "null".to_string()
    }
}

/// An object being written: `{"key":value,...}` in insertion order.
///
/// Construct one with [`JsonObject::render`] (returns the finished
/// string) or nest one inside another writer via
/// [`object`](Self::object) / [`JsonArray::object`].
#[derive(Debug)]
pub struct JsonObject<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> JsonObject<'a> {
    /// Renders a complete object into a fresh string.
    pub fn render(f: impl FnOnce(&mut JsonObject<'_>)) -> String {
        let mut out = String::new();
        {
            let mut obj = JsonObject::open(&mut out);
            f(&mut obj);
            obj.close();
        }
        out
    }

    fn open(out: &'a mut String) -> JsonObject<'a> {
        out.push('{');
        JsonObject { out, first: true }
    }

    fn close(self) {
        self.out.push('}');
    }

    fn key(&mut self, key: &str) -> &mut String {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push_str(&quote(key));
        self.out.push(':');
        self.out
    }

    /// Writes a string field (escaped).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        let out = self.key(key);
        out.push_str(&quote(value));
        self
    }

    /// Writes an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        let out = self.key(key);
        let _ = write!(out, "{value}");
        self
    }

    /// Writes a signed integer field.
    pub fn i64(&mut self, key: &str, value: i64) -> &mut Self {
        let out = self.key(key);
        let _ = write!(out, "{value}");
        self
    }

    /// Writes a floating-point field (`null` for NaN/infinity).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        let out = self.key(key);
        out.push_str(&number(value));
        self
    }

    /// Writes a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        let out = self.key(key);
        out.push_str(if value { "true" } else { "false" });
        self
    }

    /// Writes a `null` field.
    pub fn null(&mut self, key: &str) -> &mut Self {
        let out = self.key(key);
        out.push_str("null");
        self
    }

    /// Writes a field whose value is already-rendered JSON. The caller
    /// vouches for `raw`'s validity (e.g. another writer's output).
    pub fn raw(&mut self, key: &str, raw: &str) -> &mut Self {
        let out = self.key(key);
        out.push_str(raw);
        self
    }

    /// Writes a nested object field.
    pub fn object(&mut self, key: &str, f: impl FnOnce(&mut JsonObject<'_>)) -> &mut Self {
        let out = self.key(key);
        let mut obj = JsonObject::open(out);
        f(&mut obj);
        obj.close();
        self
    }

    /// Writes a nested array field.
    pub fn array(&mut self, key: &str, f: impl FnOnce(&mut JsonArray<'_>)) -> &mut Self {
        let out = self.key(key);
        let mut arr = JsonArray::open(out);
        f(&mut arr);
        arr.close();
        self
    }
}

/// An array being written: `[value,...]` in push order.
#[derive(Debug)]
pub struct JsonArray<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> JsonArray<'a> {
    /// Renders a complete array into a fresh string.
    pub fn render(f: impl FnOnce(&mut JsonArray<'_>)) -> String {
        let mut out = String::new();
        {
            let mut arr = JsonArray::open(&mut out);
            f(&mut arr);
            arr.close();
        }
        out
    }

    fn open(out: &'a mut String) -> JsonArray<'a> {
        out.push('[');
        JsonArray { out, first: true }
    }

    fn close(self) {
        self.out.push(']');
    }

    fn slot(&mut self) -> &mut String {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out
    }

    /// Pushes a string element (escaped).
    pub fn str(&mut self, value: &str) -> &mut Self {
        let out = self.slot();
        out.push_str(&quote(value));
        self
    }

    /// Pushes an unsigned integer element.
    pub fn u64(&mut self, value: u64) -> &mut Self {
        let out = self.slot();
        let _ = write!(out, "{value}");
        self
    }

    /// Pushes a floating-point element (`null` for NaN/infinity).
    pub fn f64(&mut self, value: f64) -> &mut Self {
        let out = self.slot();
        out.push_str(&number(value));
        self
    }

    /// Pushes already-rendered JSON.
    pub fn raw(&mut self, raw: &str) -> &mut Self {
        let out = self.slot();
        out.push_str(raw);
        self
    }

    /// Pushes a nested object element.
    pub fn object(&mut self, f: impl FnOnce(&mut JsonObject<'_>)) -> &mut Self {
        let out = self.slot();
        let mut obj = JsonObject::open(out);
        f(&mut obj);
        obj.close();
        self
    }

    /// Pushes a nested array element.
    pub fn array(&mut self, f: impl FnOnce(&mut JsonArray<'_>)) -> &mut Self {
        let out = self.slot();
        let mut arr = JsonArray::open(out);
        f(&mut arr);
        arr.close();
        self
    }
}

/// A value in a flat parsed object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatValue {
    Str(String),
    UInt(u64),
}

impl FlatValue {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FlatValue::Str(s) => Some(s),
            FlatValue::UInt(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FlatValue::UInt(n) => Some(*n),
            FlatValue::Str(_) => None,
        }
    }
}

/// Parse failure for [`parse_flat_object`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the error was detected at.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!(
                "expected '{}', found {:?}",
                b as char,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex =
                                self.bytes.get(self.pos + 1..self.pos + 5).ok_or_else(|| {
                                    ParseError {
                                        at: self.pos,
                                        message: "truncated \\u escape".into(),
                                    }
                                })?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| ParseError {
                                    at: self.pos,
                                    message: "bad \\u escape".into(),
                                })?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return self.err(format!("bad escape {other:?}"));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| ParseError {
                        at: self.pos,
                        message: "invalid UTF-8".into(),
                    })?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn uint(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if start == self.pos {
            return self.err("expected a number");
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| ParseError {
                at: start,
                message: "number out of range".into(),
            })
    }
}

/// Parses one flat JSON object — string keys, values that are strings
/// or unsigned integers — as produced by the journal's JSONL writer.
pub fn parse_flat_object(line: &str) -> Result<BTreeMap<String, FlatValue>, ParseError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let mut map = BTreeMap::new();
    p.expect(b'{')?;
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            let value = match p.peek() {
                Some(b'"') => FlatValue::Str(p.string()?),
                Some(b'0'..=b'9') => FlatValue::UInt(p.uint()?),
                other => {
                    return p.err(format!(
                        "expected string or unsigned number value, found {:?}",
                        other.map(|b| b as char)
                    ))
                }
            };
            map.insert(key, value);
            match p.peek() {
                Some(b',') => {
                    p.pos += 1;
                }
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                other => {
                    return p.err(format!(
                        "expected ',' or '}}', found {:?}",
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing data after object");
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("ab"), "\"ab\"");
        assert_eq!(quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn roundtrip_flat_object() {
        let m = parse_flat_object("{\"a\":1,\"b\":\"x\\ny\",\"c\":18446744073709551615}").unwrap();
        assert_eq!(m["a"], FlatValue::UInt(1));
        assert_eq!(m["b"], FlatValue::Str("x\ny".into()));
        assert_eq!(m["c"], FlatValue::UInt(u64::MAX));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_flat_object("{").is_err());
        assert!(parse_flat_object("{\"a\":}").is_err());
        assert!(parse_flat_object("{\"a\":1} extra").is_err());
        assert!(parse_flat_object("{\"a\":-1}").is_err());
        assert!(parse_flat_object("").is_err());
    }

    #[test]
    fn empty_object_ok() {
        assert!(parse_flat_object("{}").unwrap().is_empty());
    }

    #[test]
    fn builder_renders_every_value_kind() {
        let s = JsonObject::render(|o| {
            o.str("s", "a\"b")
                .u64("u", u64::MAX)
                .i64("i", -3)
                .f64("f", 1.5)
                .bool("t", true)
                .bool("ff", false)
                .null("n")
                .raw("r", "[1,2]");
        });
        assert_eq!(
            s,
            "{\"s\":\"a\\\"b\",\"u\":18446744073709551615,\"i\":-3,\
             \"f\":1.5,\"t\":true,\"ff\":false,\"n\":null,\"r\":[1,2]}"
        );
    }

    #[test]
    fn builder_nests_objects_and_arrays() {
        let s = JsonObject::render(|o| {
            o.object("inner", |i| {
                i.u64("x", 1);
            });
            o.array("list", |a| {
                a.u64(1).str("two").object(|i| {
                    i.bool("three", true);
                });
                a.array(|inner| {
                    inner.f64(0.25);
                });
            });
        });
        assert_eq!(
            s,
            "{\"inner\":{\"x\":1},\"list\":[1,\"two\",{\"three\":true},[0.25]]}"
        );
    }

    #[test]
    fn builder_empty_containers() {
        assert_eq!(JsonObject::render(|_| {}), "{}");
        assert_eq!(JsonArray::render(|_| {}), "[]");
        assert_eq!(
            JsonObject::render(|o| {
                o.array("a", |_| {});
            }),
            "{\"a\":[]}"
        );
    }

    #[test]
    fn number_rendering_is_json_safe() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(-0.0), "0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn builder_strings_roundtrip_through_the_parser() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{1} unicode\u{00e9}";
        let s = JsonObject::render(|o| {
            o.str("k", nasty).u64("n", 7);
        });
        let m = parse_flat_object(&s).unwrap();
        assert_eq!(m["k"], FlatValue::Str(nasty.into()));
        assert_eq!(m["n"], FlatValue::UInt(7));
    }
}
