//! A tiny hand-rolled JSON layer: enough writer support to emit the
//! journal/metrics formats and enough parser to read back our own
//! JSONL (flat objects of string and unsigned-integer fields).
//!
//! This is intentionally not a general JSON library; it exists so the
//! workspace has no external dependencies. The parser accepts exactly
//! the subset the writer produces (plus insignificant whitespace).

use std::collections::BTreeMap;
use std::fmt;

/// Quotes a string as a JSON string literal, escaping the characters
/// our identifiers can contain. Control characters are escaped as
/// `\u00XX`; everything else passes through as UTF-8.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A value in a flat parsed object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatValue {
    Str(String),
    UInt(u64),
}

impl FlatValue {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FlatValue::Str(s) => Some(s),
            FlatValue::UInt(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FlatValue::UInt(n) => Some(*n),
            FlatValue::Str(_) => None,
        }
    }
}

/// Parse failure for [`parse_flat_object`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the error was detected at.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!(
                "expected '{}', found {:?}",
                b as char,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex =
                                self.bytes.get(self.pos + 1..self.pos + 5).ok_or_else(|| {
                                    ParseError {
                                        at: self.pos,
                                        message: "truncated \\u escape".into(),
                                    }
                                })?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| ParseError {
                                    at: self.pos,
                                    message: "bad \\u escape".into(),
                                })?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return self.err(format!("bad escape {other:?}"));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| ParseError {
                        at: self.pos,
                        message: "invalid UTF-8".into(),
                    })?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn uint(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if start == self.pos {
            return self.err("expected a number");
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| ParseError {
                at: start,
                message: "number out of range".into(),
            })
    }
}

/// Parses one flat JSON object — string keys, values that are strings
/// or unsigned integers — as produced by the journal's JSONL writer.
pub fn parse_flat_object(line: &str) -> Result<BTreeMap<String, FlatValue>, ParseError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let mut map = BTreeMap::new();
    p.expect(b'{')?;
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            let value = match p.peek() {
                Some(b'"') => FlatValue::Str(p.string()?),
                Some(b'0'..=b'9') => FlatValue::UInt(p.uint()?),
                other => {
                    return p.err(format!(
                        "expected string or unsigned number value, found {:?}",
                        other.map(|b| b as char)
                    ))
                }
            };
            map.insert(key, value);
            match p.peek() {
                Some(b',') => {
                    p.pos += 1;
                }
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                other => {
                    return p.err(format!(
                        "expected ',' or '}}', found {:?}",
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing data after object");
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("ab"), "\"ab\"");
        assert_eq!(quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn roundtrip_flat_object() {
        let m = parse_flat_object("{\"a\":1,\"b\":\"x\\ny\",\"c\":18446744073709551615}").unwrap();
        assert_eq!(m["a"], FlatValue::UInt(1));
        assert_eq!(m["b"], FlatValue::Str("x\ny".into()));
        assert_eq!(m["c"], FlatValue::UInt(u64::MAX));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_flat_object("{").is_err());
        assert!(parse_flat_object("{\"a\":}").is_err());
        assert!(parse_flat_object("{\"a\":1} extra").is_err());
        assert!(parse_flat_object("{\"a\":-1}").is_err());
        assert!(parse_flat_object("").is_err());
    }

    #[test]
    fn empty_object_ok() {
        assert!(parse_flat_object("{}").unwrap().is_empty());
    }
}
