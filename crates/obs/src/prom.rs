//! Prometheus text-exposition (format 0.0.4) rendering of a
//! [`MetricsRegistry`], plus a strict checker for the produced text.
//!
//! The registry's dotted paths become underscore-separated metric
//! names (`serve.http.requests` → `serve_http_requests_total`);
//! counters get the conventional `_total` suffix, gauges render
//! plainly, and the log2 [`Histogram`]s render as *cumulative*
//! `_bucket{le="..."}` series with `_sum` and `_count` — each log2
//! bucket's inclusive upper bound (`2^i - 1`) becomes its `le` label,
//! so any Prometheus-compatible scraper can compute quantile estimates
//! without knowing the bucketing scheme.
//!
//! [`check_exposition`] validates text in this format — name charset,
//! one `# TYPE` per family before its samples, label syntax, bucket
//! monotonicity, `+Inf` consistency, duplicate series — and backs both
//! the unit tests and the `trace_tool promcheck` CI gate, so the
//! checker cannot drift from the renderer.

use crate::metrics::{bucket_range, Metric, MetricsRegistry};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maps a dotted registry path onto a legal Prometheus metric name:
/// dots and other illegal characters become `_`, and a leading digit
/// is prefixed with `_`.
pub fn metric_name(path: &str) -> String {
    let mut name = String::with_capacity(path.len());
    for (i, c) in path.chars().enumerate() {
        let legal =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            name.push('_');
            name.push(c);
        } else if legal {
            name.push(c);
        } else {
            name.push('_');
        }
    }
    if name.is_empty() {
        name.push('_');
    }
    name
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders `registry` in the Prometheus text exposition format.
/// Families appear in registry (path) order, so the output is
/// deterministic for a given registry state.
pub fn render(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (path, metric) in registry.iter() {
        let name = metric_name(path);
        match metric {
            Metric::Counter(v) => {
                let name = if name.ends_with("_total") {
                    name
                } else {
                    format!("{name}_total")
                };
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            Metric::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {v}");
            }
            Metric::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                let top = h
                    .nonzero_buckets()
                    .map(|(i, _)| i)
                    .max()
                    .unwrap_or(0)
                    .min(63);
                for i in 0..=top {
                    cumulative += h.bucket(i);
                    // Inclusive upper bound of the half-open log2 range.
                    let le = bucket_range(i).1.expect("buckets 0..=63 are bounded") - 1;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                let _ = writeln!(out, "{name}_sum {}", h.sum());
                let _ = writeln!(out, "{name}_count {}", h.count());
            }
        }
    }
    out
}

/// What [`check_exposition`] found in a valid exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpositionSummary {
    /// `# TYPE` families declared.
    pub families: usize,
    /// Sample lines.
    pub samples: usize,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits `name{labels} value` into parts; labels may be absent.
fn split_sample(line: &str) -> Result<(String, String, String), String> {
    if let Some(open) = line.find('{') {
        let close = line
            .rfind('}')
            .ok_or_else(|| format!("unclosed label set: {line:?}"))?;
        if close < open {
            return Err(format!("malformed label set: {line:?}"));
        }
        let name = line[..open].to_string();
        let labels = line[open + 1..close].to_string();
        let value = line[close + 1..].trim().to_string();
        Ok((name, labels, value))
    } else {
        let mut parts = line.split_whitespace();
        let name = parts
            .next()
            .ok_or_else(|| format!("empty sample line: {line:?}"))?;
        let value = parts
            .next()
            .ok_or_else(|| format!("sample without a value: {line:?}"))?;
        if parts.next().is_some() {
            // A third token would be a timestamp; this renderer never
            // emits one, so treat it as an error to keep output tight.
            return Err(format!("unexpected trailing tokens: {line:?}"));
        }
        Ok((name.to_string(), String::new(), value.to_string()))
    }
}

/// Parses a label set, validating names and escape sequences.
fn parse_labels(labels: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = labels.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = rest[..eq].trim();
        if !valid_name(key) {
            return Err(format!("bad label name {key:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("unquoted label value in {rest:?}"));
        }
        // Find the closing quote, honoring backslash escapes.
        let bytes = after.as_bytes();
        let mut i = 1;
        let mut value = String::new();
        loop {
            match bytes.get(i) {
                None => return Err(format!("unterminated label value in {rest:?}")),
                Some(b'"') => break,
                Some(b'\\') => match bytes.get(i + 1) {
                    Some(b'\\') => {
                        value.push('\\');
                        i += 2;
                    }
                    Some(b'"') => {
                        value.push('"');
                        i += 2;
                    }
                    Some(b'n') => {
                        value.push('\n');
                        i += 2;
                    }
                    other => return Err(format!("bad escape \\{other:?} in {rest:?}")),
                },
                Some(_) => {
                    // Multibyte-safe: push the whole char.
                    let c = after[i..].chars().next().expect("in bounds");
                    value.push(c);
                    i += c.len_utf8();
                }
            }
        }
        out.push((key.to_string(), value));
        rest = after[i + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected ',' between labels, got {rest:?}"));
        }
    }
    Ok(out)
}

fn parse_value(value: &str) -> Result<f64, String> {
    match value {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        v => v
            .parse::<f64>()
            .map_err(|_| format!("unparseable sample value {v:?}")),
    }
}

/// Validates Prometheus exposition text as produced by [`render`].
///
/// Checks: every sample belongs to a family declared by exactly one
/// `# TYPE` line appearing first; legal metric and label names; legal
/// escape sequences; parseable values; no duplicate series; and for
/// histograms, `le` buckets cumulative (non-decreasing), a `+Inf`
/// bucket present, and `+Inf == _count`.
///
/// # Errors
///
/// Returns a message naming the first offending line or family.
pub fn check_exposition(text: &str) -> Result<ExpositionSummary, String> {
    #[derive(Default)]
    struct HistState {
        buckets: Vec<(f64, f64)>,
        inf: Option<f64>,
        count: Option<f64>,
        sum_seen: bool,
    }
    let mut families: BTreeMap<String, String> = BTreeMap::new();
    let mut hists: BTreeMap<String, HistState> = BTreeMap::new();
    let mut seen: BTreeMap<String, ()> = BTreeMap::new();
    let mut samples = 0usize;

    let family_of = |families: &BTreeMap<String, String>, name: &str| -> Option<(String, String)> {
        if let Some(kind) = families.get(name) {
            return Some((name.to_string(), kind.clone()));
        }
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = name.strip_suffix(suffix) {
                if families.get(base).is_some_and(|k| k == "histogram") {
                    return Some((base.to_string(), "histogram".to_string()));
                }
            }
        }
        None
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() != Some("TYPE") {
                continue; // HELP or free comments: ignored.
            }
            let name = parts
                .next()
                .ok_or_else(|| at("TYPE without a name".into()))?;
            let kind = parts
                .next()
                .ok_or_else(|| at("TYPE without a kind".into()))?;
            if !valid_name(name) {
                return Err(at(format!("illegal metric name {name:?}")));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(at(format!("unknown TYPE kind {kind:?}")));
            }
            if families
                .insert(name.to_string(), kind.to_string())
                .is_some()
            {
                return Err(at(format!("duplicate TYPE for {name}")));
            }
            continue;
        }

        let (name, labels, value) = split_sample(line).map_err(at)?;
        if !valid_name(&name) {
            return Err(at(format!("illegal metric name {name:?}")));
        }
        let labels = parse_labels(&labels).map_err(at)?;
        let value = parse_value(&value).map_err(at)?;
        let series = format!("{name}{labels:?}");
        if seen.insert(series, ()).is_some() {
            return Err(at(format!("duplicate series for {name}")));
        }
        let (base, kind) = family_of(&families, &name)
            .ok_or_else(|| at(format!("sample {name} has no preceding # TYPE")))?;
        samples += 1;

        if kind == "counter" && value < 0.0 {
            return Err(at(format!("negative counter {name}")));
        }
        if kind == "histogram" {
            let st = hists.entry(base.clone()).or_default();
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())
                    .ok_or_else(|| at(format!("{name} bucket without le label")))?;
                if le == "+Inf" {
                    st.inf = Some(value);
                } else {
                    let bound = le
                        .parse::<f64>()
                        .map_err(|_| at(format!("unparseable le {le:?}")))?;
                    st.buckets.push((bound, value));
                }
            } else if name.ends_with("_count") {
                st.count = Some(value);
            } else if name.ends_with("_sum") {
                st.sum_seen = true;
            }
        }
    }

    for (base, st) in &hists {
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_cum = 0.0;
        for &(bound, cum) in &st.buckets {
            if bound <= prev_bound {
                return Err(format!("{base}: le bounds not increasing at {bound}"));
            }
            if cum < prev_cum {
                return Err(format!(
                    "{base}: bucket counts not cumulative ({cum} after {prev_cum})"
                ));
            }
            prev_bound = bound;
            prev_cum = cum;
        }
        let inf = st
            .inf
            .ok_or_else(|| format!("{base}: histogram without a +Inf bucket"))?;
        if inf < prev_cum {
            return Err(format!("{base}: +Inf bucket below the last finite bucket"));
        }
        match st.count {
            Some(count) if count == inf => {}
            Some(count) => {
                return Err(format!("{base}: +Inf bucket {inf} != _count {count}"));
            }
            None => return Err(format!("{base}: histogram without _count")),
        }
        if !st.sum_seen {
            return Err(format!("{base}: histogram without _sum"));
        }
    }

    Ok(ExpositionSummary {
        families: families.len(),
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_mangled_onto_the_legal_charset() {
        assert_eq!(metric_name("serve.http.requests"), "serve_http_requests");
        assert_eq!(metric_name("a-b c.d"), "a_b_c_d");
        assert_eq!(metric_name("9lives"), "_9lives");
        assert_eq!(
            metric_name("core.ds.rob_occupancy"),
            "core_ds_rob_occupancy"
        );
    }

    #[test]
    fn label_values_escape_quotes_backslashes_newlines() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        // And the checker reads them back.
        let parsed = parse_labels(&format!("le=\"{}\"", escape_label_value("a\"\\\nb"))).unwrap();
        assert_eq!(parsed[0].1, "a\"\\\nb");
    }

    #[test]
    fn counters_gauges_and_histograms_render_and_validate() {
        let mut r = MetricsRegistry::new();
        r.inc("serve.http.requests", 3);
        r.gauge_set("serve.queue.depth", -2);
        for v in [0u64, 1, 2, 3, 100, 5000] {
            r.observe("serve.http.latency_micros", v);
        }
        let text = render(&r);
        assert!(text.contains("# TYPE serve_http_requests_total counter"));
        assert!(text.contains("serve_http_requests_total 3"));
        assert!(text.contains("serve_queue_depth -2"));
        assert!(text.contains("serve_http_latency_micros_bucket{le=\"0\"} 1"));
        assert!(text.contains("serve_http_latency_micros_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("serve_http_latency_micros_count 6"));
        assert!(text.contains("serve_http_latency_micros_sum 5106"));
        let summary = check_exposition(&text).expect("renderer output must validate");
        assert_eq!(summary.families, 3);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let mut r = MetricsRegistry::new();
        // Samples landing in log2 buckets 1 (value 1), 2 (2–3), 4 (8–15).
        for v in [1u64, 2, 3, 9] {
            r.observe("h", v);
        }
        let text = render(&r);
        // Cumulative counts at the inclusive upper bounds.
        assert!(text.contains("h_bucket{le=\"0\"} 0"), "{text}");
        assert!(text.contains("h_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("h_bucket{le=\"3\"} 3"), "{text}");
        assert!(text.contains("h_bucket{le=\"7\"} 3"), "{text}");
        assert!(text.contains("h_bucket{le=\"15\"} 4"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 4"), "{text}");
        check_exposition(&text).unwrap();
    }

    #[test]
    fn empty_registry_and_empty_histogram_are_valid() {
        assert_eq!(
            check_exposition(&render(&MetricsRegistry::new())).unwrap(),
            ExpositionSummary {
                families: 0,
                samples: 0
            }
        );
        let mut r = MetricsRegistry::new();
        r.observe_n("h", 0, 0); // registers the histogram, no samples
        let text = render(&r);
        assert!(text.contains("h_bucket{le=\"+Inf\"} 0"));
        check_exposition(&text).unwrap();
    }

    #[test]
    fn checker_rejects_broken_expositions() {
        for (text, needle) in [
            ("metric 1\n", "no preceding # TYPE"),
            ("# TYPE m counter\nm{ 1\n", "unclosed label"),
            ("# TYPE m counter\nm -1\n", "negative counter"),
            ("# TYPE m counter\nm 1\nm 2\n", "duplicate series"),
            (
                "# TYPE m counter\n# TYPE m counter\nm 1\n",
                "duplicate TYPE",
            ),
            ("# TYPE m counter\nm one\n", "unparseable sample value"),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"3\"} 1\n\
                 h_bucket{le=\"+Inf\"} 2\nh_sum 2\nh_count 2\n",
                "not cumulative",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
                "without a +Inf",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 2\nh_count 3\n",
                "!= _count",
            ),
        ] {
            let err = check_exposition(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} => {err}");
        }
    }

    #[test]
    fn merge_of_shards_is_deterministic() {
        // The same totals distributed differently across shards must
        // render byte-identical expositions.
        let build = |split: &[(u64, u64)]| {
            let shards = crate::metrics::ShardedMetrics::new(4);
            for (i, &(reqs, lat)) in split.iter().enumerate() {
                shards.with_shard(i, |r| {
                    r.inc("serve.http.requests", reqs);
                    r.observe("serve.http.latency_micros", lat);
                    r.gauge_set("serve.queue.depth", 5);
                });
            }
            render(&shards.merged())
        };
        let a = build(&[(3, 100), (1, 900), (0, 7), (2, 100)]);
        let b = build(&[(0, 900), (2, 100), (3, 100), (1, 7)]);
        assert_eq!(a, b);
        check_exposition(&a).unwrap();
        assert!(a.contains("serve_http_requests_total 6"));
        assert!(a.contains("serve_http_latency_micros_count 4"));
    }
}
