//! Stall attribution: classifying every cycle of a retimed execution.
//!
//! The paper's figures charge each cycle of execution to exactly one
//! of busy/read/write/sync. That coarse split says *where* the time
//! went but not *why* — a read-class stall may be a genuine cache miss
//! or a true dependence on an earlier load. The attribution pass keeps
//! both axes: the coarse [`StallClass`] (which must reconcile exactly
//! with the run's reported execution-time breakdown) and the fine
//! [`StallCause`] taxonomy, plus a per-PC site table for the
//! `trace_tool profile` report.

use std::collections::BTreeMap;
use std::fmt;

/// The coarse class a stalled cycle is charged to. Mirrors the
/// breakdown categories of the timing models: `Read`/`Write`/`Sync`
/// stalls accumulate into the corresponding breakdown component, while
/// `Fetch` stalls are charged to busy time (the paper folds
/// instruction-supply limits into the busy component).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallClass {
    Read,
    Write,
    Sync,
    Fetch,
}

impl StallClass {
    pub const ALL: [StallClass; 4] = [
        StallClass::Read,
        StallClass::Write,
        StallClass::Sync,
        StallClass::Fetch,
    ];

    pub fn name(self) -> &'static str {
        match self {
            StallClass::Read => "read",
            StallClass::Write => "write",
            StallClass::Sync => "sync",
            StallClass::Fetch => "fetch",
        }
    }

    pub fn from_name(s: &str) -> Option<StallClass> {
        StallClass::ALL.into_iter().find(|c| c.name() == s)
    }
}

impl fmt::Display for StallClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The fine-grained cause of a stalled cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallCause {
    /// Waiting for a read's memory latency (the read has issued).
    ReadMiss,
    /// Waiting for a write/release's memory latency or buffer slot.
    WriteMiss,
    /// Waiting for an acquire (lock/event/barrier) to perform.
    Acquire,
    /// The head operation has issued but the reorder buffer cannot
    /// retire past it while the window is full behind it.
    RobFull,
    /// The instruction window ran dry (fetch/decode limit).
    FetchLimit,
    /// Waiting on a register produced by an earlier instruction.
    TrueDependence,
}

impl StallCause {
    pub const ALL: [StallCause; 6] = [
        StallCause::ReadMiss,
        StallCause::WriteMiss,
        StallCause::Acquire,
        StallCause::RobFull,
        StallCause::FetchLimit,
        StallCause::TrueDependence,
    ];

    pub fn name(self) -> &'static str {
        match self {
            StallCause::ReadMiss => "read_miss",
            StallCause::WriteMiss => "write_miss",
            StallCause::Acquire => "acquire",
            StallCause::RobFull => "rob_full",
            StallCause::FetchLimit => "fetch_limit",
            StallCause::TrueDependence => "true_dependence",
        }
    }

    pub fn from_name(s: &str) -> Option<StallCause> {
        StallCause::ALL.into_iter().find(|c| c.name() == s)
    }
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of the top-N stall-site report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallSite {
    /// The blamed program counter (the head instruction the pipeline
    /// was stalled on).
    pub pc: u32,
    pub cause: StallCause,
    pub cycles: u64,
}

/// Exact per-cycle accounting of a retimed execution.
///
/// Invariants (checked by the obs test suite): `busy_cycles` plus the
/// sum of all matrix cells equals the run's total cycle count, and the
/// per-class sums reconcile with the reported breakdown —
/// `class_cycles(Read) == breakdown.read` (ditto write/sync), while
/// `busy_cycles + class_cycles(Fetch) == breakdown.busy`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallAttribution {
    /// Cycles in which at least one instruction retired.
    pub busy_cycles: u64,
    /// Stalled cycles by (coarse class, fine cause).
    matrix: BTreeMap<(StallClass, StallCause), u64>,
    /// Stalled cycles by (blamed pc, fine cause).
    sites: BTreeMap<(u32, StallCause), u64>,
}

impl StallAttribution {
    pub fn new() -> StallAttribution {
        StallAttribution::default()
    }

    /// Records one cycle in which useful work retired.
    pub fn record_busy(&mut self) {
        self.record_busy_n(1);
    }

    /// Records `n` cycles in which useful work retired.
    pub fn record_busy_n(&mut self, n: u64) {
        self.busy_cycles += n;
    }

    /// Records one stalled cycle blamed on `pc`.
    pub fn record_stall(&mut self, class: StallClass, cause: StallCause, pc: u32) {
        self.record_stall_n(class, cause, pc, 1);
    }

    /// Records `n` stalled cycles with identical blame in one update,
    /// so event-driven engines can account a skipped span without a
    /// per-cycle loop. Exactly equivalent to `n` single-cycle calls.
    pub fn record_stall_n(&mut self, class: StallClass, cause: StallCause, pc: u32, n: u64) {
        *self.matrix.entry((class, cause)).or_insert(0) += n;
        *self.sites.entry((pc, cause)).or_insert(0) += n;
    }

    /// Stalled cycles recorded for `(class, cause)`.
    pub fn cell(&self, class: StallClass, cause: StallCause) -> u64 {
        self.matrix.get(&(class, cause)).copied().unwrap_or(0)
    }

    /// Total stalled cycles charged to a coarse class.
    pub fn class_cycles(&self, class: StallClass) -> u64 {
        self.matrix
            .iter()
            .filter(|((c, _), _)| *c == class)
            .map(|(_, &n)| n)
            .sum()
    }

    /// Total stalled cycles attributed to a fine cause.
    pub fn cause_cycles(&self, cause: StallCause) -> u64 {
        self.matrix
            .iter()
            .filter(|((_, c), _)| *c == cause)
            .map(|(_, &n)| n)
            .sum()
    }

    /// All stalled cycles.
    pub fn stall_cycles(&self) -> u64 {
        self.matrix.values().sum()
    }

    /// Every accounted cycle: busy + stalled. For a DS run this equals
    /// the run's total cycle count.
    pub fn total_cycles(&self) -> u64 {
        self.busy_cycles + self.stall_cycles()
    }

    /// The populated matrix cells in (class, cause) order.
    pub fn cells(&self) -> impl Iterator<Item = (StallClass, StallCause, u64)> + '_ {
        self.matrix.iter().map(|(&(cl, ca), &n)| (cl, ca, n))
    }

    /// The `n` stall sites with the most attributed cycles, heaviest
    /// first (ties broken by pc then cause for determinism).
    pub fn top_sites(&self, n: usize) -> Vec<StallSite> {
        let mut rows: Vec<StallSite> = self
            .sites
            .iter()
            .map(|(&(pc, cause), &cycles)| StallSite { pc, cause, cycles })
            .collect();
        rows.sort_by(|a, b| {
            b.cycles
                .cmp(&a.cycles)
                .then(a.pc.cmp(&b.pc))
                .then(a.cause.cmp(&b.cause))
        });
        rows.truncate(n);
        rows
    }

    /// Folds another attribution into this one (e.g. across runs).
    pub fn merge(&mut self, other: &StallAttribution) {
        self.busy_cycles += other.busy_cycles;
        for (&k, &n) in &other.matrix {
            *self.matrix.entry(k).or_insert(0) += n;
        }
        for (&k, &n) in &other.sites {
            *self.sites.entry(k).or_insert(0) += n;
        }
    }

    /// Serializes as a JSON object: busy cycles, the class×cause
    /// matrix, and per-class/per-cause sums.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let _ = write!(out, "\"busy_cycles\":{}", self.busy_cycles);
        let _ = write!(out, ",\"stall_cycles\":{}", self.stall_cycles());
        let _ = write!(out, ",\"total_cycles\":{}", self.total_cycles());
        out.push_str(",\"by_class\":{");
        for (i, class) in StallClass::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", class.name(), self.class_cycles(class));
        }
        out.push_str("},\"by_cause\":{");
        for (i, cause) in StallCause::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", cause.name(), self.cause_cycles(cause));
        }
        out.push_str("},\"matrix\":[");
        for (i, (class, cause, n)) in self.cells().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"class\":\"{}\",\"cause\":\"{}\",\"cycles\":{}}}",
                class.name(),
                cause.name(),
                n
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_are_consistent() {
        let mut a = StallAttribution::new();
        a.record_busy();
        a.record_busy();
        a.record_stall(StallClass::Read, StallCause::ReadMiss, 10);
        a.record_stall(StallClass::Read, StallCause::TrueDependence, 10);
        a.record_stall(StallClass::Sync, StallCause::Acquire, 20);
        assert_eq!(a.busy_cycles, 2);
        assert_eq!(a.class_cycles(StallClass::Read), 2);
        assert_eq!(a.cause_cycles(StallCause::Acquire), 1);
        assert_eq!(a.stall_cycles(), 3);
        assert_eq!(a.total_cycles(), 5);
    }

    #[test]
    fn top_sites_orders_by_weight() {
        let mut a = StallAttribution::new();
        for _ in 0..5 {
            a.record_stall(StallClass::Read, StallCause::ReadMiss, 7);
        }
        a.record_stall(StallClass::Write, StallCause::WriteMiss, 3);
        let sites = a.top_sites(10);
        assert_eq!(sites[0].pc, 7);
        assert_eq!(sites[0].cycles, 5);
        assert_eq!(sites.len(), 2);
        assert_eq!(a.top_sites(1).len(), 1);
    }

    #[test]
    fn names_roundtrip() {
        for c in StallClass::ALL {
            assert_eq!(StallClass::from_name(c.name()), Some(c));
        }
        for c in StallCause::ALL {
            assert_eq!(StallCause::from_name(c.name()), Some(c));
        }
    }
}
