//! Request-scoped tracing: monotonic-clock spans with parent/child
//! links under a per-request [`TraceContext`].
//!
//! The serve tier answers "where did this request's time go?" with a
//! span tree: the transport opens a context at accept time (so queue
//! wait is measurable), gives it a deterministic request id, and every
//! pipeline stage underneath — cache lookup, trace generation, archive
//! write, per-cell re-timing, report render — records a span against
//! whatever context the current thread carries. The model mirrors the
//! crate's [`Recorder`](crate::Recorder) pattern: a **thread-local
//! scope** that instrumentation sites consult through
//! [`record_current`], which is a cheap no-op when no request is being
//! traced (CLI paths, benches, untraced tests pay nothing).
//!
//! Design points:
//!
//! * **Monotonic time only.** Every timestamp is microseconds since
//!   the context's epoch (`Instant`-based); wall-clock never enters a
//!   span, so traces are immune to clock steps.
//! * **Deterministic request ids.** Ids come from a process-wide
//!   counter (`req-000000000001`, ...), not randomness, so tests and
//!   log correlation are reproducible.
//! * **Cross-thread by construction.** A context is `Clone + Send`;
//!   the harness worker pool captures the caller's scope and installs
//!   it in each worker, so per-cell re-timing spans land in the same
//!   request tree with the right parent.
//! * **Flat JSONL.** [`render_spans_jsonl`] emits one flat JSON object
//!   per span per line — exactly the shape
//!   [`parse_flat_object`](crate::json::parse_flat_object) reads back,
//!   which is what the `trace_tool spans` analyzer consumes.

use crate::json::JsonObject;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One finished span: `[start_us, start_us + dur_us)` relative to the
/// owning context's epoch. `parent == 0` means top-level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within the context, allocated from 1.
    pub id: u32,
    /// Parent span id, or 0 for a top-level span.
    pub parent: u32,
    /// Stage name (`"queue"`, `"generate"`, `"retime.cell"`, ...).
    pub name: String,
    /// Microseconds from the context epoch to the span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

struct TraceInner {
    request_id: String,
    epoch: Instant,
    next_id: AtomicU32,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A per-request trace: a request id, a monotonic epoch, and the spans
/// recorded so far. Cheap to clone (an `Arc`); clones share the same
/// trace.
#[derive(Clone)]
pub struct TraceContext {
    inner: Arc<TraceInner>,
}

/// Process-wide request-id counter (deterministic, monotonic).
static NEXT_REQUEST: AtomicU64 = AtomicU64::new(0);

/// The next deterministic request id (`req-000000000001`, ...).
pub fn next_request_id() -> String {
    let n = NEXT_REQUEST.fetch_add(1, Ordering::Relaxed) + 1;
    format!("req-{n:012}")
}

/// Whether `id` is acceptable as a client-supplied request id: 1..=64
/// bytes of `[A-Za-z0-9._-]` (safe to echo into headers and logs).
pub fn valid_request_id(id: &str) -> bool {
    (1..=64).contains(&id.len())
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

impl TraceContext {
    /// A context whose epoch is now.
    pub fn new(request_id: impl Into<String>) -> TraceContext {
        TraceContext::with_epoch(request_id, Instant::now())
    }

    /// A context with an explicit epoch (e.g. the accept time, so the
    /// queue wait that happened *before* the context existed can still
    /// be recorded as `[0, queue_us)`).
    pub fn with_epoch(request_id: impl Into<String>, epoch: Instant) -> TraceContext {
        TraceContext {
            inner: Arc::new(TraceInner {
                request_id: request_id.into(),
                epoch,
                next_id: AtomicU32::new(1),
                spans: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The request id this trace belongs to.
    pub fn request_id(&self) -> &str {
        &self.inner.request_id
    }

    /// Microseconds elapsed since the context epoch.
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Allocates a span id without recording anything yet (for spans
    /// whose children must reference them before they finish).
    pub fn alloc_id(&self) -> u32 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Appends an already-built record (id from [`alloc_id`]).
    ///
    /// [`alloc_id`]: TraceContext::alloc_id
    pub fn push(&self, record: SpanRecord) {
        self.inner
            .spans
            .lock()
            .expect("span list poisoned")
            .push(record);
    }

    /// Records a finished span and returns its id.
    pub fn record(&self, name: &str, parent: u32, start_us: u64, dur_us: u64) -> u32 {
        let id = self.alloc_id();
        self.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_us,
            dur_us,
        });
        id
    }

    /// The spans recorded so far, ordered by start time (ties by id,
    /// so the order is deterministic however threads interleaved).
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut spans = self.inner.spans.lock().expect("span list poisoned").clone();
        spans.sort_by_key(|s| (s.start_us, s.id));
        spans
    }
}

impl std::fmt::Debug for TraceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceContext")
            .field("request_id", &self.inner.request_id)
            .finish_non_exhaustive()
    }
}

/// The thread's active trace position: which context, and which span
/// the next recorded span is a child of.
#[derive(Clone)]
pub struct TraceScope {
    /// The request's trace.
    pub ctx: TraceContext,
    /// Parent id for spans recorded under this scope (0 = top level).
    pub parent: u32,
}

impl TraceScope {
    pub fn new(ctx: TraceContext, parent: u32) -> TraceScope {
        TraceScope { ctx, parent }
    }
}

thread_local! {
    static SCOPE: RefCell<Option<TraceScope>> = const { RefCell::new(None) };
}

/// Installs `scope` as this thread's trace scope, returning the
/// previous one (restore it when done — the worker pool does).
pub fn set_scope(scope: Option<TraceScope>) -> Option<TraceScope> {
    SCOPE.with(|s| std::mem::replace(&mut *s.borrow_mut(), scope))
}

/// This thread's trace scope, if a request is being traced.
pub fn current_scope() -> Option<TraceScope> {
    SCOPE.with(|s| s.borrow().clone())
}

/// The request id the current thread is working for, if any (log lines
/// use this to stay correlatable without plumbing ids through APIs).
pub fn current_request_id() -> Option<String> {
    SCOPE.with(|s| {
        s.borrow()
            .as_ref()
            .map(|scope| scope.ctx.request_id().to_string())
    })
}

/// Runs `f` as a span named `name` under the current scope; while `f`
/// runs, the scope's parent is the new span, so nested calls become
/// children. With no scope installed this is a cheap passthrough.
pub fn record_current<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let Some(scope) = current_scope() else {
        return f();
    };
    let id = scope.ctx.alloc_id();
    let start = scope.ctx.now_us();
    SCOPE.with(|s| {
        if let Some(cur) = s.borrow_mut().as_mut() {
            cur.parent = id;
        }
    });
    let out = f();
    SCOPE.with(|s| {
        if let Some(cur) = s.borrow_mut().as_mut() {
            cur.parent = scope.parent;
        }
    });
    scope.ctx.push(SpanRecord {
        id,
        parent: scope.parent,
        name: name.to_string(),
        start_us: start,
        dur_us: scope.ctx.now_us().saturating_sub(start),
    });
    out
}

/// Records a span named `name` covering `[start_us, now)` under the
/// current scope (for stages timed around a call that could not be
/// wrapped, e.g. a coalesced single-flight wait).
pub fn record_since(name: &str, start_us: u64) {
    if let Some(scope) = current_scope() {
        let now = scope.ctx.now_us();
        scope
            .ctx
            .record(name, scope.parent, start_us, now.saturating_sub(start_us));
    }
}

/// `now_us` of the current scope's context, or `None` untraced.
/// Pairs with [`record_since`].
pub fn now_current() -> Option<u64> {
    current_scope().map(|s| s.ctx.now_us())
}

/// Renders the context's spans as flat JSONL: one object per span per
/// line, each carrying the request id, readable back with
/// [`parse_flat_object`](crate::json::parse_flat_object).
pub fn render_spans_jsonl(ctx: &TraceContext) -> String {
    let mut out = String::new();
    for s in ctx.spans() {
        let _ = writeln!(
            out,
            "{}",
            JsonObject::render(|o| {
                o.str("request_id", ctx.request_id())
                    .u64("span", s.id as u64)
                    .u64("parent", s.parent as u64)
                    .str("name", &s.name)
                    .u64("start_us", s.start_us)
                    .u64("dur_us", s.dur_us);
            })
        );
    }
    out
}

/// Renders the context's span tree as one nested JSON object (the
/// `/v1/debug/trace/<id>` body): request id, total duration, and the
/// spans in start order with their parent links.
pub fn render_trace_json(ctx: &TraceContext, target: &str, status: u16) -> String {
    let spans = ctx.spans();
    let total = spans
        .iter()
        .map(|s| s.start_us + s.dur_us)
        .max()
        .unwrap_or(0);
    JsonObject::render(|o| {
        o.str("request_id", ctx.request_id())
            .str("target", target)
            .u64("status", status as u64)
            .u64("total_us", total);
        o.array("spans", |a| {
            for s in &spans {
                a.object(|so| {
                    so.u64("span", s.id as u64)
                        .u64("parent", s.parent as u64)
                        .str("name", &s.name)
                        .u64("start_us", s.start_us)
                        .u64("dur_us", s.dur_us);
                });
            }
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_deterministic_in_format_and_monotonic() {
        let a = next_request_id();
        let b = next_request_id();
        assert!(a.starts_with("req-") && a.len() == 16, "{a}");
        assert!(valid_request_id(&a));
        let na: u64 = a[4..].parse().unwrap();
        let nb: u64 = b[4..].parse().unwrap();
        assert_eq!(nb, na + 1);
    }

    #[test]
    fn client_request_id_validation() {
        assert!(valid_request_id("req-000000000001"));
        assert!(valid_request_id("a.b_C-9"));
        assert!(!valid_request_id(""));
        assert!(!valid_request_id(&"x".repeat(65)));
        assert!(!valid_request_id("has space"));
        assert!(!valid_request_id("inject\r\nheader"));
    }

    #[test]
    fn nesting_reconciles_with_wall_time() {
        let ctx = TraceContext::new("req-test");
        let prev = set_scope(Some(TraceScope::new(ctx.clone(), 0)));
        record_current("outer", || {
            std::thread::sleep(std::time::Duration::from_millis(4));
            record_current("inner", || {
                std::thread::sleep(std::time::Duration::from_millis(4));
            });
        });
        set_scope(prev);

        let spans = ctx.spans();
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        // Parent/child link, and the child's interval nested inside
        // the parent's.
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
        // Both slept ≥ 4ms; the outer covers the inner.
        assert!(inner.dur_us >= 4_000, "{inner:?}");
        assert!(outer.dur_us >= inner.dur_us + 4_000, "{spans:?}");
    }

    #[test]
    fn scope_crosses_threads_and_keeps_parents() {
        let ctx = TraceContext::new("req-x");
        let root = ctx.alloc_id();
        let scope = TraceScope::new(ctx.clone(), root);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let scope = scope.clone();
                s.spawn(move || {
                    set_scope(Some(scope));
                    record_current("cell", || {});
                    set_scope(None);
                });
            }
        });
        let spans = ctx.spans();
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.name == "cell" && s.parent == root));
    }

    #[test]
    fn untraced_threads_pay_only_a_passthrough() {
        assert!(current_scope().is_none());
        assert_eq!(record_current("ignored", || 7), 7);
        assert!(now_current().is_none());
        record_since("ignored", 0); // no-op, must not panic
    }

    #[test]
    fn jsonl_lines_parse_back_as_flat_objects() {
        let ctx = TraceContext::new("req-000000000042");
        ctx.record("queue", 0, 0, 120);
        ctx.record("handler", 0, 120, 900);
        let text = render_spans_jsonl(&ctx);
        let mut lines = 0;
        for line in text.lines() {
            let obj = crate::json::parse_flat_object(line).expect("flat span line");
            assert_eq!(
                obj.get("request_id").and_then(|v| v.as_str()),
                Some("req-000000000042")
            );
            assert!(obj.get("dur_us").and_then(|v| v.as_u64()).is_some());
            lines += 1;
        }
        assert_eq!(lines, 2);
    }

    #[test]
    fn trace_json_totals_the_latest_span_end() {
        let ctx = TraceContext::new("r");
        ctx.record("a", 0, 0, 10);
        ctx.record("b", 0, 5, 20);
        let body = render_trace_json(&ctx, "/v1/x", 200);
        assert!(body.contains("\"total_us\":25"), "{body}");
        assert!(body.contains("\"status\":200"), "{body}");
    }
}
