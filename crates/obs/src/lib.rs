//! Observability substrate for the Lookahead simulators.
//!
//! The paper's entire argument rests on attributing execution time to
//! busy/read/write/sync components; this crate makes that attribution
//! observable at every level instead of only as final tables:
//!
//! * [`metrics::MetricsRegistry`] — typed counters, gauges, and
//!   log2-bucketed histograms under a hierarchical dotted-path
//!   namespace (`core.ds.rob_occupancy`, `memsys.mshr.merge_hits`,
//!   `multiproc.net.contention_cycles`).
//! * [`journal::EventJournal`] — a ring-buffered stream of structured
//!   cycle-level events (fetch/issue/complete/retire, cache hit/miss/
//!   fill, MSHR allocate/merge, write-buffer drain, acquire waits,
//!   stalls), serializable as JSONL and as Chrome `trace_event` JSON
//!   so runs open directly in chrome://tracing or Perfetto.
//! * [`attr::StallAttribution`] — exact per-cycle accounting that
//!   classifies every stalled cycle into the paper-aligned taxonomy
//!   (read-miss, write-miss, acquire, ROB-full, fetch-limit, true
//!   dependence) and reconciles with the run's breakdown.
//! * [`span::TraceContext`] — request-scoped monotonic spans with
//!   parent/child links and deterministic request ids, threaded from
//!   the serve tier through the harness pipeline.
//! * [`log`] — leveled, structured JSONL logging to stderr, filtered
//!   by the `LOOKAHEAD_LOG` environment variable.
//! * [`prom`] — Prometheus text-exposition rendering of a registry
//!   (plus [`metrics::ShardedMetrics`] for contention-free serving).
//!
//! # Wiring
//!
//! The instrumented crates (`lookahead-core`, `lookahead-memsys`,
//! `lookahead-multiproc`) only reference this crate behind their `obs`
//! cargo feature, so default builds compile none of the hooks and pay
//! nothing. With the feature on, instrumentation sites call
//! [`with`], which records into a **thread-local** [`Recorder`] — the
//! timing models run one per thread in the bench harness, so each run
//! gets its own isolated recorder without any API changes:
//!
//! ```
//! use lookahead_obs as obs;
//!
//! obs::install(obs::Recorder::new(0));
//! obs::with(|r| r.metrics.inc("core.ds.instructions", 1));
//! let rec = obs::take().expect("installed above");
//! assert_eq!(rec.metrics.counter("core.ds.instructions"), 1);
//! ```
//!
//! When no recorder is installed, [`with`] is a cheap thread-local
//! check that does nothing.

pub mod attr;
pub mod journal;
pub mod json;
pub mod log;
pub mod metrics;
pub mod prom;
pub mod span;

pub use attr::{StallAttribution, StallCause, StallClass, StallSite};
pub use journal::{Event, EventJournal, EventKind, JournalReadError, DEFAULT_JOURNAL_CAPACITY};
pub use metrics::{Histogram, Metric, MetricsRegistry, ShardedMetrics};
pub use span::{SpanRecord, TraceContext, TraceScope};

use std::cell::RefCell;

/// A stall span being coalesced: consecutive stalled cycles with the
/// same blame collapse into one journal event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpenStall {
    start: u64,
    last: u64,
    pc: u32,
    class: StallClass,
    cause: StallCause,
}

/// Everything one instrumented run records: metrics, the event
/// journal, and exact stall attribution.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    pub metrics: MetricsRegistry,
    pub journal: EventJournal,
    pub attribution: StallAttribution,
    /// Processor / lane id stamped on emitted events.
    pub proc: u32,
    open_stall: Option<OpenStall>,
}

impl Recorder {
    /// A recorder for processor/lane `proc` with the default journal
    /// capacity.
    pub fn new(proc: u32) -> Recorder {
        Recorder::with_capacity(proc, DEFAULT_JOURNAL_CAPACITY)
    }

    pub fn with_capacity(proc: u32, journal_capacity: usize) -> Recorder {
        Recorder {
            metrics: MetricsRegistry::new(),
            journal: EventJournal::new(journal_capacity),
            attribution: StallAttribution::new(),
            proc,
            open_stall: None,
        }
    }

    /// Appends an event at cycle `t`, flushing any open stall span
    /// first so journal order stays chronological.
    pub fn event(&mut self, t: u64, kind: EventKind) {
        self.flush_stall();
        self.journal.push(Event {
            t,
            proc: self.proc,
            kind,
        });
    }

    /// Records a cycle in which work retired.
    pub fn busy_cycle(&mut self) {
        self.busy_span(1);
    }

    /// Records `n` consecutive cycles in which work retired (or that
    /// are charged to busy time, e.g. context-switch overhead), in one
    /// call. Equivalent to `n` [`busy_cycle`](Self::busy_cycle)s.
    pub fn busy_span(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.flush_stall();
        self.attribution.record_busy_n(n);
    }

    /// Records one stalled cycle at time `t`, blamed on `pc`.
    /// Consecutive cycles with identical blame coalesce into a single
    /// journal span; attribution counts stay exact per cycle.
    pub fn stall_cycle(&mut self, t: u64, pc: u32, class: StallClass, cause: StallCause) {
        self.stall_span(t, 1, pc, class, cause);
    }

    /// Records `dur` consecutive stalled cycles starting at `t`, all
    /// with the same blame, in one call. Byte-for-byte equivalent to
    /// `dur` consecutive [`stall_cycle`](Self::stall_cycle) calls —
    /// the span extends (or opens) the same coalesced journal event
    /// and bumps the attribution matrix by `dur` — but O(1), so
    /// event-driven engines can skip dead cycles without a per-cycle
    /// recording loop.
    pub fn stall_span(&mut self, t: u64, dur: u64, pc: u32, class: StallClass, cause: StallCause) {
        if dur == 0 {
            return;
        }
        self.attribution.record_stall_n(class, cause, pc, dur);
        match &mut self.open_stall {
            Some(open)
                if open.pc == pc
                    && open.class == class
                    && open.cause == cause
                    && t == open.last + 1 =>
            {
                open.last = t + dur - 1;
            }
            _ => {
                self.flush_stall();
                self.open_stall = Some(OpenStall {
                    start: t,
                    last: t + dur - 1,
                    pc,
                    class,
                    cause,
                });
            }
        }
    }

    /// Closes any open stall span. Call when a run finishes (also
    /// called automatically by [`event`](Self::event) and
    /// [`busy_cycle`](Self::busy_cycle)).
    pub fn flush_stall(&mut self) {
        if let Some(open) = self.open_stall.take() {
            self.journal.push(Event {
                t: open.start,
                proc: self.proc,
                kind: EventKind::Stall {
                    pc: open.pc,
                    class: open.class,
                    cause: open.cause,
                    dur: open.last - open.start + 1,
                },
            });
        }
    }
}

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Installs `recorder` as this thread's active recorder, returning the
/// previously installed one, if any.
pub fn install(recorder: Recorder) -> Option<Recorder> {
    RECORDER.with(|r| r.borrow_mut().replace(recorder))
}

/// Removes and returns this thread's active recorder (with any open
/// stall span flushed).
pub fn take() -> Option<Recorder> {
    RECORDER.with(|r| {
        let mut rec = r.borrow_mut().take();
        if let Some(rec) = rec.as_mut() {
            rec.flush_stall();
        }
        rec
    })
}

/// Whether a recorder is installed on this thread.
pub fn is_active() -> bool {
    RECORDER.with(|r| r.borrow().is_some())
}

/// Runs `f` against this thread's recorder; does nothing (cheaply) if
/// none is installed. All instrumentation sites funnel through here.
pub fn with<F: FnOnce(&mut Recorder)>(f: F) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_take_roundtrip() {
        assert!(take().is_none());
        assert!(!is_active());
        install(Recorder::new(3));
        assert!(is_active());
        with(|r| r.metrics.inc("a.b", 2));
        with(|r| r.metrics.inc("a.b", 1));
        let rec = take().expect("installed");
        assert_eq!(rec.metrics.counter("a.b"), 3);
        assert_eq!(rec.proc, 3);
        assert!(take().is_none());
    }

    #[test]
    fn with_is_noop_without_recorder() {
        let mut ran = false;
        with(|_| ran = true);
        assert!(!ran);
    }

    #[test]
    fn stall_spans_coalesce() {
        let mut r = Recorder::new(0);
        for t in 10..15 {
            r.stall_cycle(t, 7, StallClass::Read, StallCause::ReadMiss);
        }
        r.busy_cycle();
        for t in 16..18 {
            r.stall_cycle(t, 9, StallClass::Sync, StallCause::Acquire);
        }
        r.flush_stall();
        let events: Vec<Event> = r.journal.iter().copied().collect();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].kind,
            EventKind::Stall {
                pc: 7,
                class: StallClass::Read,
                cause: StallCause::ReadMiss,
                dur: 5,
            }
        );
        assert_eq!(events[0].t, 10);
        assert_eq!(
            events[1].kind,
            EventKind::Stall {
                pc: 9,
                class: StallClass::Sync,
                cause: StallCause::Acquire,
                dur: 2,
            }
        );
        // Attribution remains per-cycle exact.
        assert_eq!(r.attribution.stall_cycles(), 7);
        assert_eq!(r.attribution.busy_cycles, 1);
    }

    #[test]
    fn nonconsecutive_stalls_do_not_merge() {
        let mut r = Recorder::new(0);
        r.stall_cycle(5, 1, StallClass::Read, StallCause::ReadMiss);
        r.stall_cycle(9, 1, StallClass::Read, StallCause::ReadMiss);
        r.flush_stall();
        assert_eq!(r.journal.len(), 2);
    }

    /// A span call must be indistinguishable from the equivalent run
    /// of per-cycle calls: same journal events, same attribution.
    #[test]
    fn spans_equal_per_cycle_recording() {
        let mut per_cycle = Recorder::new(0);
        for t in 10..15 {
            per_cycle.stall_cycle(t, 7, StallClass::Read, StallCause::ReadMiss);
        }
        for t in 15..18 {
            per_cycle.stall_cycle(t, 7, StallClass::Read, StallCause::ReadMiss);
        }
        per_cycle.busy_cycle();
        per_cycle.busy_cycle();
        for t in 20..24 {
            per_cycle.stall_cycle(t, 9, StallClass::Sync, StallCause::Acquire);
        }
        per_cycle.flush_stall();

        let mut spans = Recorder::new(0);
        spans.stall_span(10, 5, 7, StallClass::Read, StallCause::ReadMiss);
        spans.stall_span(15, 3, 7, StallClass::Read, StallCause::ReadMiss);
        spans.busy_span(2);
        spans.stall_span(20, 4, 9, StallClass::Sync, StallCause::Acquire);
        spans.flush_stall();

        let a: Vec<Event> = per_cycle.journal.iter().copied().collect();
        let b: Vec<Event> = spans.journal.iter().copied().collect();
        assert_eq!(a, b);
        assert_eq!(per_cycle.attribution, spans.attribution);
        // Adjacent same-blame spans coalesced into one journal event.
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn zero_length_spans_are_noops() {
        let mut r = Recorder::new(0);
        r.stall_span(5, 0, 1, StallClass::Read, StallCause::ReadMiss);
        r.busy_span(0);
        r.flush_stall();
        assert_eq!(r.journal.len(), 0);
        assert_eq!(r.attribution.total_cycles(), 0);
    }
}
