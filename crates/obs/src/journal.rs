//! The cycle-level event journal: a bounded ring buffer of structured
//! simulator events, serializable as JSONL (one event per line) and as
//! Chrome `trace_event` JSON for chrome://tracing / Perfetto.

use crate::attr::{StallCause, StallClass};
use crate::json::{self, FlatValue};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Write};

/// What happened. Times and the owning processor live on [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An instruction entered the window.
    Fetch { pc: u32 },
    /// A memory operation issued to the memory system.
    Issue { pc: u32, addr: u64 },
    /// A memory operation's reply returned.
    Complete { pc: u32, addr: u64 },
    /// An instruction retired from the window head.
    Retire { pc: u32 },
    /// A cache access hit.
    CacheHit { addr: u64, write: bool },
    /// A cache access missed.
    CacheMiss { addr: u64, write: bool },
    /// A line fill completed.
    CacheFill { addr: u64 },
    /// An MSHR was allocated for a line.
    MshrAlloc { line: u64 },
    /// A request merged into an existing MSHR.
    MshrMerge { line: u64 },
    /// A write entered the write buffer.
    WbPush { addr: u64 },
    /// A buffered write performed (drained).
    WbDrain { addr: u64 },
    /// A push was refused because the write buffer was full.
    WbFull,
    /// An acquire (lock/event/barrier) waited `dur` cycles starting at
    /// the event's timestamp.
    AcquireWait { addr: u64, dur: u64 },
    /// A miss queued `dur` cycles at the memory/network due to
    /// contention.
    Contention { dur: u64 },
    /// A hardware context switch (multiple-contexts processor).
    ContextSwitch { to: u32 },
    /// The pipeline stalled for `dur` consecutive cycles blamed on the
    /// instruction at `pc` (coalesced; starts at the timestamp).
    Stall {
        pc: u32,
        class: StallClass,
        cause: StallCause,
        dur: u64,
    },
}

impl EventKind {
    /// The event's wire name (the `"ev"` field in JSONL).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Fetch { .. } => "fetch",
            EventKind::Issue { .. } => "issue",
            EventKind::Complete { .. } => "complete",
            EventKind::Retire { .. } => "retire",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::CacheFill { .. } => "cache_fill",
            EventKind::MshrAlloc { .. } => "mshr_alloc",
            EventKind::MshrMerge { .. } => "mshr_merge",
            EventKind::WbPush { .. } => "wb_push",
            EventKind::WbDrain { .. } => "wb_drain",
            EventKind::WbFull => "wb_full",
            EventKind::AcquireWait { .. } => "acquire_wait",
            EventKind::Contention { .. } => "contention",
            EventKind::ContextSwitch { .. } => "context_switch",
            EventKind::Stall { .. } => "stall",
        }
    }

    /// The span length for duration events, if this is one.
    fn dur(&self) -> Option<u64> {
        match self {
            EventKind::AcquireWait { dur, .. }
            | EventKind::Contention { dur }
            | EventKind::Stall { dur, .. } => Some(*dur),
            _ => None,
        }
    }
}

/// One journal entry: a cycle timestamp, the processor (or model lane)
/// it belongs to, and what happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated cycle the event occurred (span events: started).
    pub t: u64,
    /// Processor / lane id, used as the trace row in Perfetto.
    pub proc: u32,
    pub kind: EventKind,
}

/// Error from [`EventJournal::from_jsonl`].
#[derive(Debug)]
pub enum JournalReadError {
    Io(io::Error),
    /// Line number (1-based) and what was wrong with it.
    Malformed(usize, String),
}

impl fmt::Display for JournalReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalReadError::Io(e) => write!(f, "I/O error reading journal: {e}"),
            JournalReadError::Malformed(line, why) => {
                write!(f, "malformed journal line {line}: {why}")
            }
        }
    }
}

impl std::error::Error for JournalReadError {}

impl From<io::Error> for JournalReadError {
    fn from(e: io::Error) -> JournalReadError {
        JournalReadError::Io(e)
    }
}

/// A bounded ring buffer of [`Event`]s. When full, the oldest events
/// are dropped (and counted), so a journal holds the *tail* of a run —
/// the part you usually want when debugging where time went.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventJournal {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

/// Default ring capacity: enough for the tail of a paper-size run
/// without letting instrumented runs grow unbounded.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1 << 16;

impl EventJournal {
    pub fn new(capacity: usize) -> EventJournal {
        EventJournal {
            events: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    pub fn push(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped from the front because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Writes the journal as JSONL: one flat JSON object per line with
    /// fields `t`, `proc`, `ev`, plus the kind's payload fields.
    /// Booleans are encoded as 0/1 so every value is a string or an
    /// unsigned integer.
    pub fn to_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        for e in &self.events {
            let mut line = format!(
                "{{\"t\":{},\"proc\":{},\"ev\":{}",
                e.t,
                e.proc,
                json::quote(e.kind.name())
            );
            match e.kind {
                EventKind::Fetch { pc } | EventKind::Retire { pc } => {
                    line.push_str(&format!(",\"pc\":{pc}"));
                }
                EventKind::Issue { pc, addr } | EventKind::Complete { pc, addr } => {
                    line.push_str(&format!(",\"pc\":{pc},\"addr\":{addr}"));
                }
                EventKind::CacheHit { addr, write } | EventKind::CacheMiss { addr, write } => {
                    line.push_str(&format!(",\"addr\":{addr},\"write\":{}", write as u8));
                }
                EventKind::CacheFill { addr }
                | EventKind::WbPush { addr }
                | EventKind::WbDrain { addr } => {
                    line.push_str(&format!(",\"addr\":{addr}"));
                }
                EventKind::MshrAlloc { line: l } | EventKind::MshrMerge { line: l } => {
                    line.push_str(&format!(",\"line\":{l}"));
                }
                EventKind::WbFull => {}
                EventKind::AcquireWait { addr, dur } => {
                    line.push_str(&format!(",\"addr\":{addr},\"dur\":{dur}"));
                }
                EventKind::Contention { dur } => {
                    line.push_str(&format!(",\"dur\":{dur}"));
                }
                EventKind::ContextSwitch { to } => {
                    line.push_str(&format!(",\"to\":{to}"));
                }
                EventKind::Stall {
                    pc,
                    class,
                    cause,
                    dur,
                } => {
                    line.push_str(&format!(
                        ",\"pc\":{pc},\"class\":\"{}\",\"cause\":\"{}\",\"dur\":{dur}",
                        class.name(),
                        cause.name()
                    ));
                }
            }
            line.push('}');
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// Reads a JSONL journal back (the inverse of [`Self::to_jsonl`]).
    /// The reconstructed journal has capacity equal to its length.
    pub fn from_jsonl(r: impl io::BufRead) -> Result<EventJournal, JournalReadError> {
        let mut events = VecDeque::new();
        for (i, line) in r.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let lineno = i + 1;
            let obj = json::parse_flat_object(&line)
                .map_err(|e| JournalReadError::Malformed(lineno, e.to_string()))?;
            let field = |name: &str| -> Result<u64, JournalReadError> {
                obj.get(name).and_then(FlatValue::as_u64).ok_or_else(|| {
                    JournalReadError::Malformed(lineno, format!("missing numeric field {name:?}"))
                })
            };
            let str_field = |name: &str| -> Result<&str, JournalReadError> {
                obj.get(name).and_then(FlatValue::as_str).ok_or_else(|| {
                    JournalReadError::Malformed(lineno, format!("missing string field {name:?}"))
                })
            };
            let ev = str_field("ev")?;
            let kind = match ev {
                "fetch" => EventKind::Fetch {
                    pc: field("pc")? as u32,
                },
                "retire" => EventKind::Retire {
                    pc: field("pc")? as u32,
                },
                "issue" => EventKind::Issue {
                    pc: field("pc")? as u32,
                    addr: field("addr")?,
                },
                "complete" => EventKind::Complete {
                    pc: field("pc")? as u32,
                    addr: field("addr")?,
                },
                "cache_hit" => EventKind::CacheHit {
                    addr: field("addr")?,
                    write: field("write")? != 0,
                },
                "cache_miss" => EventKind::CacheMiss {
                    addr: field("addr")?,
                    write: field("write")? != 0,
                },
                "cache_fill" => EventKind::CacheFill {
                    addr: field("addr")?,
                },
                "mshr_alloc" => EventKind::MshrAlloc {
                    line: field("line")?,
                },
                "mshr_merge" => EventKind::MshrMerge {
                    line: field("line")?,
                },
                "wb_push" => EventKind::WbPush {
                    addr: field("addr")?,
                },
                "wb_drain" => EventKind::WbDrain {
                    addr: field("addr")?,
                },
                "wb_full" => EventKind::WbFull,
                "acquire_wait" => EventKind::AcquireWait {
                    addr: field("addr")?,
                    dur: field("dur")?,
                },
                "contention" => EventKind::Contention { dur: field("dur")? },
                "context_switch" => EventKind::ContextSwitch {
                    to: field("to")? as u32,
                },
                "stall" => EventKind::Stall {
                    pc: field("pc")? as u32,
                    class: StallClass::from_name(str_field("class")?).ok_or_else(|| {
                        JournalReadError::Malformed(lineno, "unknown stall class".into())
                    })?,
                    cause: StallCause::from_name(str_field("cause")?).ok_or_else(|| {
                        JournalReadError::Malformed(lineno, "unknown stall cause".into())
                    })?,
                    dur: field("dur")?,
                },
                other => {
                    return Err(JournalReadError::Malformed(
                        lineno,
                        format!("unknown event kind {other:?}"),
                    ))
                }
            };
            events.push_back(Event {
                t: field("t")?,
                proc: field("proc")? as u32,
                kind,
            });
        }
        let capacity = events.len().max(1);
        Ok(EventJournal {
            events,
            capacity,
            dropped: 0,
        })
    }

    /// Writes the journal in Chrome `trace_event` format (the JSON
    /// object form, `{"traceEvents": [...]}`), loadable directly in
    /// chrome://tracing or https://ui.perfetto.dev.
    ///
    /// Span events (`stall`, `acquire_wait`, `contention`) become
    /// complete (`"ph":"X"`) events with their duration; everything
    /// else becomes a thread-scoped instant (`"ph":"i"`). Cycles map
    /// 1:1 onto microseconds — Perfetto's "us" are really cycles.
    pub fn to_chrome_trace(&self, w: &mut impl Write) -> io::Result<()> {
        write!(w, "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
        let mut first = true;
        for e in &self.events {
            if !first {
                write!(w, ",")?;
            }
            first = false;
            let name = match e.kind {
                EventKind::Stall { cause, .. } => format!("stall:{}", cause.name()),
                ref k => k.name().to_owned(),
            };
            let mut args = String::new();
            match e.kind {
                EventKind::Fetch { pc } | EventKind::Retire { pc } => {
                    args.push_str(&format!("\"pc\":{pc}"));
                }
                EventKind::Issue { pc, addr } | EventKind::Complete { pc, addr } => {
                    args.push_str(&format!("\"pc\":{pc},\"addr\":{addr}"));
                }
                EventKind::CacheHit { addr, write } | EventKind::CacheMiss { addr, write } => {
                    args.push_str(&format!("\"addr\":{addr},\"write\":{}", write as u8));
                }
                EventKind::CacheFill { addr }
                | EventKind::WbPush { addr }
                | EventKind::WbDrain { addr } => {
                    args.push_str(&format!("\"addr\":{addr}"));
                }
                EventKind::MshrAlloc { line } | EventKind::MshrMerge { line } => {
                    args.push_str(&format!("\"line\":{line}"));
                }
                EventKind::WbFull => {}
                EventKind::AcquireWait { addr, .. } => {
                    args.push_str(&format!("\"addr\":{addr}"));
                }
                EventKind::Contention { .. } => {}
                EventKind::ContextSwitch { to } => {
                    args.push_str(&format!("\"to\":{to}"));
                }
                EventKind::Stall { pc, class, .. } => {
                    args.push_str(&format!("\"pc\":{pc},\"class\":\"{}\"", class.name()));
                }
            }
            match e.kind.dur() {
                Some(dur) => write!(
                    w,
                    "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{{args}}}}}",
                    json::quote(&name),
                    e.t,
                    dur.max(1),
                    e.proc
                )?,
                None => write!(
                    w,
                    "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{{args}}}}}",
                    json::quote(&name),
                    e.t,
                    e.proc
                )?,
            }
        }
        write!(w, "]}}")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                t: 0,
                proc: 0,
                kind: EventKind::Fetch { pc: 1 },
            },
            Event {
                t: 2,
                proc: 0,
                kind: EventKind::Issue { pc: 1, addr: 0x40 },
            },
            Event {
                t: 3,
                proc: 1,
                kind: EventKind::CacheMiss {
                    addr: 0x40,
                    write: false,
                },
            },
            Event {
                t: 3,
                proc: 1,
                kind: EventKind::MshrAlloc { line: 4 },
            },
            Event {
                t: 9,
                proc: 1,
                kind: EventKind::Stall {
                    pc: 1,
                    class: StallClass::Read,
                    cause: StallCause::ReadMiss,
                    dur: 47,
                },
            },
            Event {
                t: 60,
                proc: 0,
                kind: EventKind::AcquireWait {
                    addr: 0x80,
                    dur: 12,
                },
            },
            Event {
                t: 99,
                proc: 0,
                kind: EventKind::WbFull,
            },
        ]
    }

    #[test]
    fn jsonl_roundtrips() {
        let mut j = EventJournal::new(64);
        for e in sample_events() {
            j.push(e);
        }
        let mut buf = Vec::new();
        j.to_jsonl(&mut buf).unwrap();
        let back = EventJournal::from_jsonl(buf.as_slice()).unwrap();
        assert_eq!(
            back.iter().copied().collect::<Vec<_>>(),
            j.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn ring_drops_oldest() {
        let mut j = EventJournal::new(2);
        for e in sample_events() {
            j.push(e);
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 5);
        assert_eq!(j.iter().next().unwrap().t, 60);
    }

    #[test]
    fn malformed_jsonl_is_an_error() {
        assert!(matches!(
            EventJournal::from_jsonl("not json\n".as_bytes()),
            Err(JournalReadError::Malformed(1, _))
        ));
        assert!(matches!(
            EventJournal::from_jsonl("{\"t\":1,\"proc\":0,\"ev\":\"nope\"}\n".as_bytes()),
            Err(JournalReadError::Malformed(1, _))
        ));
        // Missing a payload field.
        assert!(matches!(
            EventJournal::from_jsonl("{\"t\":1,\"proc\":0,\"ev\":\"fetch\"}\n".as_bytes()),
            Err(JournalReadError::Malformed(1, _))
        ));
    }

    #[test]
    fn chrome_trace_is_wellformed_json() {
        let mut j = EventJournal::new(64);
        for e in sample_events() {
            j.push(e);
        }
        let mut buf = Vec::new();
        j.to_chrome_trace(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("{\"displayTimeUnit\""));
        assert!(s.ends_with("]}"));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("stall:read_miss"));
        // Balanced braces/brackets (no string in our output contains
        // either, so raw counting is sound).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }
}
