//! Leveled, structured JSONL logging to stderr.
//!
//! One log call = one flat JSON object on one stderr line: timestamp,
//! level, target, message, the caller's key/value fields, and — when
//! the calling thread is inside a traced request — the request id, so
//! server logs correlate with `X-Request-Id` headers and span files
//! without any plumbing at the call sites.
//!
//! Filtering follows the workspace's env-knob style via
//! `LOOKAHEAD_LOG`: a default level, optionally refined per target
//! prefix:
//!
//! ```text
//! LOOKAHEAD_LOG=info                 # info and up, everywhere
//! LOOKAHEAD_LOG=warn,serve.http=debug
//! LOOKAHEAD_LOG=off                  # silence
//! ```
//!
//! The default (unset) level is `warn`: a healthy server is silent.
//! A malformed filter never breaks logging — the parse error is
//! reported once on stderr and the default is used — but fail-fast
//! callers (the `lookahead serve` CLI) can validate the knob up front
//! with [`check_env_filter`].

use crate::json::JsonObject;
use std::io::Write as _;
use std::sync::OnceLock;

/// The environment variable holding the log filter.
pub const LOG_ENV: &str = "LOOKAHEAD_LOG";

/// Log severity, ordered: `Error` is always the most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
}

impl Level {
    /// The lowercase name that appears in log lines and filters.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn from_name(s: &str) -> Option<Option<Level>> {
        match s {
            "error" => Some(Some(Level::Error)),
            "warn" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "off" => Some(None),
            _ => None,
        }
    }
}

/// A parsed `LOOKAHEAD_LOG` filter: a default maximum level plus
/// per-target-prefix overrides (`None` = off).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    default: Option<Level>,
    /// `(prefix, max level)`, longest prefix wins.
    targets: Vec<(String, Option<Level>)>,
}

impl Default for Filter {
    fn default() -> Filter {
        Filter {
            default: Some(Level::Warn),
            targets: Vec::new(),
        }
    }
}

impl Filter {
    /// Whether a line at `level` for `target` passes the filter.
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        let max = self
            .targets
            .iter()
            .filter(|(prefix, _)| {
                target == prefix
                    || (target.starts_with(prefix.as_str())
                        && target.as_bytes().get(prefix.len()) == Some(&b'.'))
            })
            .max_by_key(|(prefix, _)| prefix.len())
            .map(|(_, lvl)| *lvl)
            .unwrap_or(self.default);
        match max {
            Some(max) => level <= max,
            None => false,
        }
    }
}

/// Parses a `LOOKAHEAD_LOG` value: comma-separated entries, each a
/// bare level (the default) or `target=level`.
///
/// # Errors
///
/// Returns a descriptive message for unknown levels or malformed
/// entries.
pub fn parse_filter(value: &str) -> Result<Filter, String> {
    let mut filter = Filter::default();
    for entry in value.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        match entry.split_once('=') {
            None => {
                filter.default = Level::from_name(entry).ok_or_else(|| {
                    format!(
                        "{LOG_ENV}: unknown level {entry:?}; valid: \
                         error, warn, info, debug, off"
                    )
                })?;
            }
            Some((target, level)) => {
                let target = target.trim();
                if target.is_empty() {
                    return Err(format!("{LOG_ENV}: empty target in {entry:?}"));
                }
                let level = Level::from_name(level.trim()).ok_or_else(|| {
                    format!(
                        "{LOG_ENV}: unknown level {:?} for target {target:?}; \
                         valid: error, warn, info, debug, off",
                        level.trim()
                    )
                })?;
                filter.targets.push((target.to_string(), level));
            }
        }
    }
    Ok(filter)
}

/// Validates the `LOOKAHEAD_LOG` environment variable without
/// installing anything (for fail-fast CLI startup).
///
/// # Errors
///
/// Returns the parse error for a malformed filter value.
pub fn check_env_filter() -> Result<(), String> {
    match std::env::var(LOG_ENV) {
        Ok(v) => parse_filter(&v).map(|_| ()),
        Err(_) => Ok(()),
    }
}

fn active_filter() -> &'static Filter {
    static FILTER: OnceLock<Filter> = OnceLock::new();
    FILTER.get_or_init(|| match std::env::var(LOG_ENV) {
        Ok(v) => parse_filter(&v).unwrap_or_else(|e| {
            eprintln!("warning: {e}; using the default filter (warn)");
            Filter::default()
        }),
        Err(_) => Filter::default(),
    })
}

/// Whether a log call at `level` for `target` would be emitted (guard
/// expensive field formatting behind this).
pub fn enabled(level: Level, target: &str) -> bool {
    active_filter().enabled(level, target)
}

/// Renders one log line (without the trailing newline). Pure, so the
/// schema is unit-testable; [`log`] adds the timestamp and emits.
pub fn render_line(
    ts_us: u64,
    level: Level,
    target: &str,
    message: &str,
    request_id: Option<&str>,
    fields: &[(&str, &str)],
) -> String {
    JsonObject::render(|o| {
        o.u64("ts_us", ts_us)
            .str("level", level.name())
            .str("target", target)
            .str("msg", message);
        if let Some(id) = request_id {
            o.str("request_id", id);
        }
        for (k, v) in fields {
            o.str(k, v);
        }
    })
}

/// Emits one structured line to stderr if the filter allows it. The
/// request id of the current trace scope (if any) is attached
/// automatically.
pub fn log(level: Level, target: &str, message: &str, fields: &[(&str, &str)]) {
    if !enabled(level, target) {
        return;
    }
    let ts_us = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let request_id = crate::span::current_request_id();
    let line = render_line(ts_us, level, target, message, request_id.as_deref(), fields);
    // One write_all per line keeps concurrent workers' lines whole.
    let mut err = std::io::stderr().lock();
    let _ = err.write_all(line.as_bytes());
    let _ = err.write_all(b"\n");
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, message: &str, fields: &[(&str, &str)]) {
    log(Level::Error, target, message, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, message: &str, fields: &[(&str, &str)]) {
    log(Level::Warn, target, message, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, message: &str, fields: &[(&str, &str)]) {
    log(Level::Info, target, message, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, message: &str, fields: &[(&str, &str)]) {
    log(Level::Debug, target, message, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_filter_is_warn_and_up() {
        let f = Filter::default();
        assert!(f.enabled(Level::Error, "serve.http"));
        assert!(f.enabled(Level::Warn, "serve.http"));
        assert!(!f.enabled(Level::Info, "serve.http"));
        assert!(!f.enabled(Level::Debug, "serve.http"));
    }

    #[test]
    fn per_target_overrides_use_longest_prefix() {
        let f = parse_filter("warn,serve=info,serve.http=debug,harness=off").unwrap();
        assert!(f.enabled(Level::Debug, "serve.http"));
        assert!(f.enabled(Level::Debug, "serve.http.conn"));
        assert!(f.enabled(Level::Info, "serve.queue"));
        assert!(!f.enabled(Level::Debug, "serve.queue"));
        assert!(!f.enabled(Level::Error, "harness.cache"));
        // Prefixes match whole dotted segments only.
        assert!(!f.enabled(Level::Info, "serves.other"));
        assert!(f.enabled(Level::Warn, "other"));
    }

    #[test]
    fn off_silences_everything() {
        let f = parse_filter("off").unwrap();
        assert!(!f.enabled(Level::Error, "anything"));
    }

    #[test]
    fn malformed_filters_are_descriptive_errors() {
        assert!(parse_filter("loud").unwrap_err().contains("unknown level"));
        assert!(parse_filter("serve=silly").unwrap_err().contains("silly"));
        assert!(parse_filter("=info").unwrap_err().contains("empty target"));
    }

    #[test]
    fn lines_are_flat_json_with_escaped_fields() {
        let line = render_line(
            42,
            Level::Error,
            "serve.http",
            "bad \"bytes\"",
            Some("req-000000000007"),
            &[("status", "400"), ("detail", "line1\nline2")],
        );
        let obj = crate::json::parse_flat_object(&line).expect("log line is flat JSON");
        assert_eq!(obj.get("level").and_then(|v| v.as_str()), Some("error"));
        assert_eq!(
            obj.get("msg").and_then(|v| v.as_str()),
            Some("bad \"bytes\"")
        );
        assert_eq!(
            obj.get("request_id").and_then(|v| v.as_str()),
            Some("req-000000000007")
        );
        assert_eq!(
            obj.get("detail").and_then(|v| v.as_str()),
            Some("line1\nline2")
        );
    }

    #[test]
    fn request_id_is_omitted_outside_a_trace() {
        let line = render_line(0, Level::Warn, "t", "m", None, &[]);
        assert!(!line.contains("request_id"), "{line}");
    }
}
