//! The metrics registry: typed counters, gauges, and log2-bucketed
//! histograms under a hierarchical dotted-path namespace.
//!
//! Paths are plain strings like `core.ds.rob_occupancy` or
//! `memsys.mshr.merge_hits`: the first segment names the crate, the
//! second the component, the third the quantity. The registry is a
//! sorted map so reports and serialized snapshots list related metrics
//! together.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::hash::{Hash as _, Hasher as _};
use std::sync::Mutex;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples whose bit length is `i`: bucket 0 holds
/// the value 0, bucket 1 holds 1, bucket 2 holds 2–3, bucket 3 holds
/// 4–7, and so on up to bucket 64. This gives a compact fixed-size
/// summary with ~2x resolution at every scale, which is plenty for
/// latencies and occupancies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

/// The bucket index a value lands in: its bit length.
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The half-open value range `[lo, hi)` covered by bucket `i`
/// (`hi == None` means the bucket is unbounded above only for i = 64,
/// where `hi` would overflow).
pub fn bucket_range(i: usize) -> (u64, Option<u64>) {
    match i {
        0 => (0, Some(1)),
        64 => (1 << 63, None),
        _ => (1 << (i - 1), Some(1 << i)),
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.observe_n(value, 1);
    }

    /// Records the same sample `n` times in one update — equivalent to
    /// `n` [`observe`](Self::observe) calls, so per-cycle gauges stay
    /// exact when an event-driven engine skips a span of identical
    /// cycles.
    pub fn observe_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += n;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in bucket `i` (see [`bucket_index`]).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// The non-empty buckets as `(index, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time signed value (last write wins).
    Gauge(i64),
    /// A distribution of samples (boxed: a histogram is ~70x larger
    /// than the scalar variants).
    Histogram(Box<Histogram>),
}

/// A sorted map of dotted metric paths to metric values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `by` to the counter at `path`, creating it at zero first if
    /// absent. A path already registered with a different type is left
    /// unchanged (debug builds panic: that is an instrumentation bug).
    pub fn inc(&mut self, path: &str, by: u64) {
        match self
            .metrics
            .entry(path.to_owned())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += by,
            other => debug_assert!(false, "{path} is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge at `path`.
    pub fn gauge_set(&mut self, path: &str, value: i64) {
        match self
            .metrics
            .entry(path.to_owned())
            .or_insert(Metric::Gauge(0))
        {
            Metric::Gauge(g) => *g = value,
            other => debug_assert!(false, "{path} is not a gauge: {other:?}"),
        }
    }

    /// Records a sample into the histogram at `path`.
    pub fn observe(&mut self, path: &str, value: u64) {
        self.observe_n(path, value, 1);
    }

    /// Records the same sample `n` times into the histogram at `path`
    /// (see [`Histogram::observe_n`]).
    pub fn observe_n(&mut self, path: &str, value: u64, n: u64) {
        match self
            .metrics
            .entry(path.to_owned())
            .or_insert_with(|| Metric::Histogram(Box::default()))
        {
            Metric::Histogram(h) => h.observe_n(value, n),
            other => debug_assert!(false, "{path} is not a histogram: {other:?}"),
        }
    }

    /// The metric at `path`, if registered.
    pub fn get(&self, path: &str) -> Option<&Metric> {
        self.metrics.get(path)
    }

    /// The counter value at `path` (0 if absent or not a counter).
    pub fn counter(&self, path: &str) -> u64 {
        match self.metrics.get(path) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// All metrics in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All metrics under a path prefix (`"core.ds"` matches
    /// `core.ds.rob_occupancy` but not `core.dsx.y`).
    pub fn iter_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a Metric)> {
        self.metrics
            .range(prefix.to_owned()..)
            .take_while(move |(k, _)| k.as_str().starts_with(prefix))
            .filter(move |(k, _)| k.len() == prefix.len() || k.as_bytes()[prefix.len()] == b'.')
            .map(|(k, v)| (k.as_str(), v))
    }

    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Merges another registry into this one: counters add, gauges
    /// take the other's value, histograms add bucket-wise.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (path, m) in other.iter() {
            match m {
                Metric::Counter(c) => self.inc(path, *c),
                Metric::Gauge(g) => self.gauge_set(path, *g),
                Metric::Histogram(h) => {
                    match self
                        .metrics
                        .entry(path.to_owned())
                        .or_insert_with(|| Metric::Histogram(Box::default()))
                    {
                        Metric::Histogram(mine) => {
                            mine.count += h.count;
                            mine.sum = mine.sum.saturating_add(h.sum);
                            mine.min = mine.min.min(h.min);
                            mine.max = mine.max.max(h.max);
                            for (i, b) in h.buckets.iter().enumerate() {
                                mine.buckets[i] += b;
                            }
                        }
                        other => debug_assert!(false, "{path} is not a histogram: {other:?}"),
                    }
                }
            }
        }
    }

    /// Serializes the registry as one JSON object keyed by path.
    /// Counters and gauges are plain numbers; histograms are objects
    /// with count/sum/min/max and the non-empty buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (path, m)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", crate::json::quote(path));
            match m {
                Metric::Counter(c) => {
                    let _ = write!(out, "{c}");
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, "{g}");
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":{{",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max()
                    );
                    for (j, (idx, c)) in h.nonzero_buckets().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "\"{idx}\":{c}");
                    }
                    out.push_str("}}");
                }
            }
        }
        out.push('}');
        out
    }
}

/// A sharded registry for hot concurrent writers: each calling thread
/// hashes onto one of a fixed set of `Mutex<MetricsRegistry>` shards,
/// so request workers updating metrics contend only with threads that
/// happen to share a shard — never with a scrape, which locks shards
/// *one at a time* and merges them into a snapshot.
///
/// Merging is deterministic: counters and histogram buckets add (so
/// any distribution of the same updates across shards merges to the
/// same registry), and the merged map is sorted by path as always.
/// Gauges remain last-write-wins per shard; use them for values where
/// any recent write is acceptable.
#[derive(Debug)]
pub struct ShardedMetrics {
    shards: Vec<Mutex<MetricsRegistry>>,
}

impl ShardedMetrics {
    /// A sharded registry with `shards` shards (at least 1).
    pub fn new(shards: usize) -> ShardedMetrics {
        ShardedMetrics {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(MetricsRegistry::new()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_for_thread(&self) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Runs `f` against the calling thread's shard.
    pub fn with<T>(&self, f: impl FnOnce(&mut MetricsRegistry) -> T) -> T {
        self.with_shard(self.shard_for_thread(), f)
    }

    /// Runs `f` against a specific shard (tests and deterministic
    /// setups; `i` wraps modulo the shard count).
    pub fn with_shard<T>(&self, i: usize, f: impl FnOnce(&mut MetricsRegistry) -> T) -> T {
        let mut shard = self.shards[i % self.shards.len()]
            .lock()
            .expect("metrics shard poisoned");
        f(&mut shard)
    }

    /// A merged snapshot of all shards (shard order, which is fixed,
    /// so the merge is deterministic for a given set of shard states).
    pub fn merged(&self) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for shard in &self.shards {
            out.merge(&shard.lock().expect("metrics shard poisoned"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn sharded_writes_merge_to_exact_totals() {
        let shards = ShardedMetrics::new(4);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for v in 0..100u64 {
                        shards.with(|r| {
                            r.inc("t.count", 1);
                            r.observe("t.lat", v);
                        });
                    }
                });
            }
        });
        let merged = shards.merged();
        assert_eq!(merged.counter("t.count"), 800);
        match merged.get("t.lat") {
            Some(Metric::Histogram(h)) => {
                assert_eq!(h.count(), 800);
                assert_eq!(h.sum(), 8 * (0..100).sum::<u64>());
                assert_eq!(h.max(), 99);
            }
            other => panic!("t.lat missing: {other:?}"),
        }
    }

    #[test]
    fn shard_count_is_clamped_to_one() {
        let shards = ShardedMetrics::new(0);
        assert_eq!(shards.shards(), 1);
        shards.with(|r| r.inc("a", 1));
        assert_eq!(shards.merged().counter("a"), 1);
    }

    #[test]
    fn bucket_ranges_partition_the_domain() {
        // Every value maps into the bucket whose range contains it.
        for v in [0u64, 1, 2, 3, 4, 5, 63, 64, 65, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_range(i);
            assert!(v >= lo, "{v} below bucket {i} range");
            if let Some(hi) = hi {
                assert!(v < hi, "{v} above bucket {i} range");
            }
        }
        // Ranges are contiguous.
        for i in 0..64 {
            let (_, hi) = bucket_range(i);
            let (lo_next, _) = bucket_range(i + 1);
            assert_eq!(hi, Some(lo_next));
        }
    }
}
