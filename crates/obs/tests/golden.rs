//! Golden-format tests: the JSONL wire format and the Chrome
//! `trace_event` export are stable interfaces (external tools and the
//! artifact readers depend on them), so changes must show up here.

use lookahead_obs::{Event, EventJournal, EventKind, JournalReadError, StallCause, StallClass};

/// One event of every kind, in a deterministic order.
fn every_kind_journal() -> EventJournal {
    let kinds = [
        EventKind::Fetch { pc: 1 },
        EventKind::Issue { pc: 2, addr: 64 },
        EventKind::Complete { pc: 2, addr: 64 },
        EventKind::Retire { pc: 2 },
        EventKind::CacheHit {
            addr: 128,
            write: false,
        },
        EventKind::CacheMiss {
            addr: 192,
            write: true,
        },
        EventKind::CacheFill { addr: 192 },
        EventKind::MshrAlloc { line: 3 },
        EventKind::MshrMerge { line: 3 },
        EventKind::WbPush { addr: 256 },
        EventKind::WbDrain { addr: 256 },
        EventKind::WbFull,
        EventKind::AcquireWait { addr: 8, dur: 500 },
        EventKind::Contention { dur: 12 },
        EventKind::ContextSwitch { to: 3 },
        EventKind::Stall {
            pc: 9,
            class: StallClass::Read,
            cause: StallCause::ReadMiss,
            dur: 49,
        },
    ];
    let mut j = EventJournal::new(64);
    for (i, kind) in kinds.into_iter().enumerate() {
        j.push(Event {
            t: 10 + i as u64,
            proc: (i % 4) as u32,
            kind,
        });
    }
    j
}

/// The exact JSONL rendering of every event kind. A diff here means
/// the wire format changed: saved journals in the wild stop loading.
const GOLDEN_JSONL: &str = "\
{\"t\":10,\"proc\":0,\"ev\":\"fetch\",\"pc\":1}
{\"t\":11,\"proc\":1,\"ev\":\"issue\",\"pc\":2,\"addr\":64}
{\"t\":12,\"proc\":2,\"ev\":\"complete\",\"pc\":2,\"addr\":64}
{\"t\":13,\"proc\":3,\"ev\":\"retire\",\"pc\":2}
{\"t\":14,\"proc\":0,\"ev\":\"cache_hit\",\"addr\":128,\"write\":0}
{\"t\":15,\"proc\":1,\"ev\":\"cache_miss\",\"addr\":192,\"write\":1}
{\"t\":16,\"proc\":2,\"ev\":\"cache_fill\",\"addr\":192}
{\"t\":17,\"proc\":3,\"ev\":\"mshr_alloc\",\"line\":3}
{\"t\":18,\"proc\":0,\"ev\":\"mshr_merge\",\"line\":3}
{\"t\":19,\"proc\":1,\"ev\":\"wb_push\",\"addr\":256}
{\"t\":20,\"proc\":2,\"ev\":\"wb_drain\",\"addr\":256}
{\"t\":21,\"proc\":3,\"ev\":\"wb_full\"}
{\"t\":22,\"proc\":0,\"ev\":\"acquire_wait\",\"addr\":8,\"dur\":500}
{\"t\":23,\"proc\":1,\"ev\":\"contention\",\"dur\":12}
{\"t\":24,\"proc\":2,\"ev\":\"context_switch\",\"to\":3}
{\"t\":25,\"proc\":3,\"ev\":\"stall\",\"pc\":9,\"class\":\"read\",\"cause\":\"read_miss\",\"dur\":49}
";

#[test]
fn jsonl_matches_golden() {
    let mut out = Vec::new();
    every_kind_journal().to_jsonl(&mut out).unwrap();
    assert_eq!(String::from_utf8(out).unwrap(), GOLDEN_JSONL);
}

#[test]
fn golden_jsonl_round_trips() {
    let back = EventJournal::from_jsonl(GOLDEN_JSONL.as_bytes()).unwrap();
    let original = every_kind_journal();
    assert_eq!(back.len(), original.len());
    for (a, b) in back.iter().zip(original.iter()) {
        assert_eq!(a, b);
    }
    // And re-serializing reproduces the golden text exactly.
    let mut out = Vec::new();
    back.to_jsonl(&mut out).unwrap();
    assert_eq!(String::from_utf8(out).unwrap(), GOLDEN_JSONL);
}

#[test]
fn chrome_trace_shape() {
    let mut out = Vec::new();
    every_kind_journal().to_chrome_trace(&mut out).unwrap();
    let trace = String::from_utf8(out).unwrap();
    // Valid-enough JSON to load in Perfetto: balanced braces/brackets,
    // a traceEvents array, one entry per journal event.
    assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    assert_eq!(trace.matches('[').count(), trace.matches(']').count());
    assert!(trace.starts_with("{\"displayTimeUnit\""));
    assert!(trace.contains("\"traceEvents\":["));
    assert_eq!(trace.matches("\"name\":").count(), 16);
    // Duration events become complete spans (ph X with a dur)...
    assert!(trace.contains("\"name\":\"stall:read_miss\",\"ph\":\"X\""));
    assert!(trace.contains("\"name\":\"acquire_wait\",\"ph\":\"X\""));
    assert!(trace.contains("\"name\":\"contention\",\"ph\":\"X\""));
    assert_eq!(trace.matches("\"ph\":\"X\"").count(), 3);
    // ...point events become instants on the owning processor's row.
    assert!(trace.contains("\"name\":\"cache_miss\",\"ph\":\"i\""));
    assert!(trace.contains("\"tid\":3"));
}

#[test]
fn malformed_lines_report_line_numbers() {
    let cases: &[(&str, usize)] = &[
        // Bad JSON on line 1.
        ("{\"t\":oops}\n", 1),
        // Valid first line, unknown event on line 2.
        (
            "{\"t\":1,\"proc\":0,\"ev\":\"fetch\",\"pc\":0}\n{\"t\":2,\"proc\":0,\"ev\":\"warp\"}\n",
            2,
        ),
        // Missing payload field.
        ("{\"t\":1,\"proc\":0,\"ev\":\"fetch\"}\n", 1),
        // Missing the ev discriminator entirely.
        ("{\"t\":1,\"proc\":0}\n", 1),
    ];
    for (text, want_line) in cases {
        match EventJournal::from_jsonl(text.as_bytes()) {
            Err(JournalReadError::Malformed(line, _)) => {
                assert_eq!(line, *want_line, "input {text:?}");
            }
            other => panic!("input {text:?}: expected Malformed, got {other:?}"),
        }
    }
    // Blank lines are tolerated (trailing newline artifacts).
    let ok = EventJournal::from_jsonl("\n{\"t\":1,\"proc\":0,\"ev\":\"wb_full\"}\n\n".as_bytes())
        .unwrap();
    assert_eq!(ok.len(), 1);
}
