//! The discrete-event scheduler at the heart of the event-driven
//! trace-generation engine.
//!
//! Each processor has **at most one pending event** — the next cycle at
//! which it can make progress (execute an instruction, retry a full
//! write buffer, take a granted lock, leave a barrier). The queue
//! dequeues events in nondecreasing time order with **ties broken by
//! ascending processor id**, which reproduces exactly the order the
//! cycle-by-cycle reference stepper visits processors within one cycle
//! — the property that keeps traces byte-identical between the two
//! engines.
//!
//! Scheduling the same processor again keeps the **earlier** of the
//! two times: a wakeup may only move a processor's next chance to run
//! forward, never delay it (a late release-visibility re-estimate must
//! not overwrite an earlier one — that would be a lost wakeup).
//!
//! The representation is a flat per-processor array of pending times,
//! popped by a linear minimum scan. At machine sizes (16–64
//! processors) the scan over one cache line or two beats a binary
//! heap's per-operation pointer chasing by a wide margin, and the
//! simulator consults the queue on every dispatch — this is the
//! hottest data structure of the generation engine. Scanning in
//! ascending index order with a strict `<` comparison yields the
//! processor-id tie-break for free.

/// Sentinel for "no pending event". `u64::MAX` is not a representable
/// event time (the cycle-limit guard fires long before).
const NONE: u64 = u64::MAX;

/// A deterministic per-processor event queue. See the module docs for
/// the ordering and replacement contract.
#[derive(Debug, Clone)]
pub struct EventQueue {
    /// The currently scheduled time of each processor (`NONE` when the
    /// processor has no pending event).
    pending: Vec<u64>,
    /// Number of processors with a pending event.
    scheduled: usize,
}

impl EventQueue {
    /// An empty queue for `num_procs` processors.
    pub fn new(num_procs: usize) -> EventQueue {
        EventQueue {
            pending: vec![NONE; num_procs],
            scheduled: 0,
        }
    }

    /// Schedules (or reschedules) `proc`'s next event at cycle `t`.
    ///
    /// If the processor already has a pending event at an earlier or
    /// equal time, the call is a no-op — an event can only be pulled
    /// earlier, never pushed later. Scheduling at the time that was
    /// just popped is allowed (an event inserted "at `now`" is still
    /// dequeued; nothing is lost).
    pub fn schedule(&mut self, proc: usize, t: u64) {
        debug_assert!(t < NONE, "u64::MAX is not a representable event time");
        let cur = self.pending[proc];
        if t < cur {
            if cur == NONE {
                self.scheduled += 1;
            }
            self.pending[proc] = t;
        }
    }

    /// Removes and returns the earliest pending event as
    /// `(time, proc)`; ties are broken by ascending processor id.
    pub fn pop(&mut self) -> Option<(u64, usize)> {
        let (t, p) = self.peek()?;
        self.pending[p] = NONE;
        self.scheduled -= 1;
        Some((t, p))
    }

    /// The earliest pending event without removing it.
    pub fn peek(&self) -> Option<(u64, usize)> {
        let mut best = NONE;
        let mut who = 0;
        for (p, &t) in self.pending.iter().enumerate() {
            // Strict `<` keeps the lowest processor id on a time tie.
            if t < best {
                best = t;
                who = p;
            }
        }
        (best != NONE).then_some((best, who))
    }

    /// The pending event time of `proc`, if it has one.
    pub fn pending(&self, proc: usize) -> Option<u64> {
        let t = self.pending[proc];
        (t != NONE).then_some(t)
    }

    /// Removes and returns `proc`'s pending event iff it is scheduled
    /// exactly at cycle `t`. Lets the simulator sweep every processor
    /// scheduled at the current cycle with one direct slot probe per
    /// processor instead of a full minimum scan per dequeue.
    pub fn take_if_at(&mut self, proc: usize, t: u64) -> Option<u64> {
        debug_assert!(t < NONE, "u64::MAX is not a representable event time");
        if self.pending[proc] != t {
            return None;
        }
        self.pending[proc] = NONE;
        self.scheduled -= 1;
        Some(t)
    }

    /// Number of processors with a pending event.
    pub fn len(&self) -> usize {
        self.scheduled
    }

    /// Whether no processor has a pending event.
    pub fn is_empty(&self) -> bool {
        self.scheduled == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dequeues_in_time_order() {
        let mut q = EventQueue::new(4);
        q.schedule(2, 30);
        q.schedule(0, 10);
        q.schedule(1, 20);
        assert_eq!(q.pop(), Some((10, 0)));
        assert_eq!(q.pop(), Some((20, 1)));
        assert_eq!(q.pop(), Some((30, 2)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_ascending_processor_id() {
        let mut q = EventQueue::new(8);
        // Insertion order must not matter.
        for &p in &[5usize, 1, 7, 0, 3] {
            q.schedule(p, 42);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec![0, 1, 3, 5, 7]);
    }

    #[test]
    fn reschedule_keeps_the_earlier_time() {
        let mut q = EventQueue::new(2);
        q.schedule(0, 50);
        q.schedule(0, 30);
        assert_eq!(q.pending(0), Some(30));
        q.schedule(0, 40); // later: ignored
        assert_eq!(q.pending(0), Some(30));
        assert_eq!(q.pop(), Some((30, 0)));
        // The superseded entries must not resurface.
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn no_lost_wakeup_when_inserting_at_now() {
        let mut q = EventQueue::new(3);
        q.schedule(0, 10);
        assert_eq!(q.pop(), Some((10, 0)));
        // An event inserted at the time just popped is still delivered.
        q.schedule(1, 10);
        q.schedule(2, 10);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((10, 2)));
    }

    #[test]
    fn pop_after_reschedule_reflects_live_entry_only() {
        let mut q = EventQueue::new(2);
        q.schedule(0, 100);
        q.schedule(1, 60);
        q.schedule(0, 50); // pulls proc 0 ahead of proc 1
        assert_eq!(q.pop(), Some((50, 0)));
        assert_eq!(q.pop(), Some((60, 1)));
        assert_eq!(q.pop(), None);
        // Re-use after drain works.
        q.schedule(0, 7);
        assert_eq!(q.peek(), Some((7, 0)));
        assert_eq!(q.pop(), Some((7, 0)));
    }

    #[test]
    fn take_if_at_removes_only_an_exact_time_match() {
        let mut q = EventQueue::new(3);
        q.schedule(0, 5);
        q.schedule(1, 5);
        q.schedule(2, 9);
        assert_eq!(q.take_if_at(2, 5), None, "scheduled later: untouched");
        assert_eq!(q.pending(2), Some(9));
        assert_eq!(q.take_if_at(1, 5), Some(5));
        assert_eq!(q.pending(1), None);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((5, 0)));
        assert_eq!(q.pop(), Some((9, 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn len_counts_processors_not_heap_entries() {
        let mut q = EventQueue::new(4);
        q.schedule(0, 9);
        q.schedule(0, 5);
        q.schedule(0, 3);
        assert_eq!(q.len(), 1, "one processor, however many reschedules");
        q.schedule(1, 4);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    /// In-tree deterministic generator (xorshift64; same idiom as the
    /// rest of the workspace — no external dependencies).
    struct XorShift64(u64);

    impl XorShift64 {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound
        }
    }

    /// Reference model: per-proc pending times as `Option`s with the
    /// same keep-the-earlier contract, popped by an independent
    /// `Iterator::min`-based scan over `(time, proc)` tuples.
    #[derive(Clone)]
    struct ModelQueue {
        pending: Vec<Option<u64>>,
    }

    impl ModelQueue {
        fn new(n: usize) -> ModelQueue {
            ModelQueue {
                pending: vec![None; n],
            }
        }

        fn schedule(&mut self, proc: usize, t: u64) {
            match self.pending[proc] {
                Some(cur) if cur <= t => {}
                _ => self.pending[proc] = Some(t),
            }
        }

        fn pop(&mut self) -> Option<(u64, usize)> {
            let best = self
                .pending
                .iter()
                .enumerate()
                .filter_map(|(p, t)| t.map(|t| (t, p)))
                .min()?;
            self.pending[best.1] = None;
            Some(best)
        }
    }

    /// Property soak: random interleavings of schedules and pops agree
    /// with the model exactly, and the popped sequence is monotone in
    /// time with proc-id tie-breaking (which the model guarantees by
    /// construction of its min scan).
    #[test]
    fn random_soak_matches_model_and_stays_monotone() {
        for seed in [1u64, 0xDEAD_BEEF, 42, 7_777_777, 0x1234_5678_9ABC] {
            let mut rng = XorShift64(seed | 1);
            let n = 1 + rng.below(12) as usize;
            let mut q = EventQueue::new(n);
            let mut model = ModelQueue::new(n);
            let mut clock = 0u64; // last popped time: simulator "now"
            let mut last: Option<(u64, usize)> = None;
            let mut inserted_since_pop = false;
            for _ in 0..4000 {
                if rng.below(3) < 2 {
                    let p = rng.below(n as u64) as usize;
                    // Insertions at or after the current time, including
                    // exactly `now` (the lost-wakeup hazard).
                    let t = clock + rng.below(20);
                    q.schedule(p, t);
                    model.schedule(p, t);
                    inserted_since_pop = true;
                } else {
                    let got = q.pop();
                    assert_eq!(got, model.pop(), "seed {seed}");
                    if let Some((t, p)) = got {
                        if let Some((lt, lp)) = last {
                            assert!(lt <= t, "seed {seed}: time went backwards: {lt} then {t}");
                            // With no intervening insertion, same-time
                            // pops must come out in ascending proc id.
                            assert!(
                                inserted_since_pop || lt < t || lp < p,
                                "seed {seed}: tie not broken by proc id: \
                                 ({lt},{lp}) then ({t},{p})"
                            );
                        }
                        last = Some((t, p));
                        clock = t;
                        inserted_since_pop = false;
                    }
                }
            }
            // Drain both completely; tails must agree too.
            loop {
                let got = q.pop();
                assert_eq!(got, model.pop(), "seed {seed} (drain)");
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
