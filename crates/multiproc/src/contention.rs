//! Memory-bandwidth contention — the effect the paper deliberately
//! leaves out.
//!
//! §3.2: "Queuing and contention effects in the interconnection
//! network are not modeled", and §5 concedes "our results are somewhat
//! optimistic since we assume a high bandwidth memory system". This
//! module makes that assumption a knob: the memory system services at
//! most `capacity` misses concurrently; further misses queue FIFO and
//! their observed latency grows by the queueing delay. With
//! `capacity = None` (the default) the paper's infinite-bandwidth
//! assumption is reproduced exactly.
//!
//! Because queueing delay flows into the *trace* latencies, the
//! downstream processor models automatically experience the contention
//! — overlap techniques lose exactly the headroom the shared memory
//! system cannot provide, which is the sensitivity the paper's caveat
//! is about (regenerate with the `contention` binary).

use std::collections::BinaryHeap;

/// A bounded-concurrency memory service queue.
///
/// # Example
///
/// ```
/// use lookahead_multiproc::contention::MemoryContention;
///
/// // Two misses may be serviced at once.
/// let mut mem = MemoryContention::new(Some(2));
/// assert_eq!(mem.service(0, 50), 50); // slot 1
/// assert_eq!(mem.service(0, 50), 50); // slot 2
/// assert_eq!(mem.service(0, 50), 100); // queues behind the first
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryContention {
    /// Max concurrently serviced misses; `None` = unbounded (paper).
    capacity: Option<usize>,
    /// Completion times of in-flight misses (min-heap via Reverse).
    in_flight: BinaryHeap<std::cmp::Reverse<u64>>,
    /// Total extra cycles of queueing delay imposed.
    queueing_cycles: u64,
    /// Misses that had to queue.
    queued_misses: u64,
    /// All misses serviced.
    misses: u64,
}

impl MemoryContention {
    /// Creates a memory service queue with the given concurrency.
    pub fn new(capacity: Option<usize>) -> MemoryContention {
        MemoryContention {
            capacity,
            ..MemoryContention::default()
        }
    }

    /// Services a miss arriving at cycle `now` with intrinsic
    /// `latency`; returns its completion cycle including any queueing
    /// delay.
    pub fn service(&mut self, now: u64, latency: u32) -> u64 {
        self.misses += 1;
        // Drop completed transactions.
        while self
            .in_flight
            .peek()
            .is_some_and(|&std::cmp::Reverse(t)| t <= now)
        {
            self.in_flight.pop();
        }
        let start = match self.capacity {
            Some(cap) if self.in_flight.len() >= cap => {
                // Wait for the earliest in-flight miss to finish.
                let std::cmp::Reverse(free_at) = self
                    .in_flight
                    .pop()
                    .expect("len >= cap >= 1 implies non-empty");
                self.queued_misses += 1;
                self.queueing_cycles += free_at - now;
                #[cfg(feature = "obs")]
                lookahead_obs::with(|r| {
                    r.metrics.inc("multiproc.net.queued_misses", 1);
                    r.metrics
                        .inc("multiproc.net.contention_cycles", free_at - now);
                    r.event(
                        now,
                        lookahead_obs::EventKind::Contention { dur: free_at - now },
                    );
                });
                free_at
            }
            _ => now,
        };
        let done = start + latency as u64;
        self.in_flight.push(std::cmp::Reverse(done));
        done
    }

    /// Total extra cycles added by queueing so far.
    pub fn queueing_cycles(&self) -> u64 {
        self.queueing_cycles
    }

    /// Number of misses that experienced queueing delay.
    pub fn queued_misses(&self) -> u64 {
        self.queued_misses
    }

    /// Total misses serviced.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Mean queueing delay per miss, in cycles.
    pub fn mean_queueing_delay(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.queueing_cycles as f64 / self.misses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_queues() {
        let mut m = MemoryContention::new(None);
        for i in 0..100 {
            assert_eq!(m.service(i, 50), i + 50);
        }
        assert_eq!(m.queued_misses(), 0);
        assert_eq!(m.queueing_cycles(), 0);
        assert_eq!(m.misses(), 100);
    }

    #[test]
    fn capacity_one_serializes() {
        let mut m = MemoryContention::new(Some(1));
        assert_eq!(m.service(0, 50), 50);
        assert_eq!(m.service(0, 50), 100);
        assert_eq!(m.service(0, 50), 150);
        assert_eq!(m.queued_misses(), 2);
        assert_eq!(m.queueing_cycles(), 50 + 100);
    }

    #[test]
    fn slots_free_as_time_passes() {
        let mut m = MemoryContention::new(Some(1));
        assert_eq!(m.service(0, 50), 50);
        // Arriving after the first completed: no queueing.
        assert_eq!(m.service(60, 50), 110);
        assert_eq!(m.queued_misses(), 0);
    }

    #[test]
    fn burst_spreads_over_capacity() {
        let mut m = MemoryContention::new(Some(2));
        let done: Vec<u64> = (0..6).map(|_| m.service(0, 50)).collect();
        assert_eq!(done, vec![50, 50, 100, 100, 150, 150]);
        assert!((m.mean_queueing_delay() - (50.0 * 2.0 + 100.0 * 2.0) / 6.0).abs() < 1e-9);
    }
}
