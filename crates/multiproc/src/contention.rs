//! Memory-bandwidth contention — the effect the paper deliberately
//! leaves out.
//!
//! §3.2: "Queuing and contention effects in the interconnection
//! network are not modeled", and §5 concedes "our results are somewhat
//! optimistic since we assume a high bandwidth memory system". This
//! module makes that assumption a knob: the memory system services at
//! most `capacity` misses concurrently; further misses queue FIFO and
//! their observed latency grows by the queueing delay. With
//! `capacity = None` (the default) the paper's infinite-bandwidth
//! assumption is reproduced exactly.
//!
//! Because queueing delay flows into the *trace* latencies, the
//! downstream processor models automatically experience the contention
//! — overlap techniques lose exactly the headroom the shared memory
//! system cannot provide, which is the sensitivity the paper's caveat
//! is about (regenerate with the `contention` binary).

use std::collections::BinaryHeap;

/// A bounded-concurrency memory service queue.
///
/// # Example
///
/// ```
/// use lookahead_multiproc::contention::MemoryContention;
///
/// // Two misses may be serviced at once.
/// let mut mem = MemoryContention::new(Some(2));
/// assert_eq!(mem.service(0, 50), 50); // slot 1
/// assert_eq!(mem.service(0, 50), 50); // slot 2
/// assert_eq!(mem.service(0, 50), 100); // queues behind the first
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryContention {
    /// Max concurrently serviced misses; `None` = unbounded (paper).
    capacity: Option<usize>,
    /// Completion times of in-flight misses (min-heap via Reverse).
    in_flight: BinaryHeap<std::cmp::Reverse<u64>>,
    /// Total extra cycles of queueing delay imposed.
    queueing_cycles: u64,
    /// Misses that had to queue.
    queued_misses: u64,
    /// All misses serviced.
    misses: u64,
}

impl MemoryContention {
    /// Creates a memory service queue with the given concurrency.
    ///
    /// `Some(0)` is rejected: a memory system that can service zero
    /// concurrent misses can never make progress, so the zero edge is
    /// a configuration bug, not a degenerate queue. It used to die
    /// deep inside [`service`](Self::service) with an opaque
    /// heap-invariant panic; now it fails here, at construction, with
    /// a message naming the fix ([`SimConfig::validate`] rejects the
    /// same value at the configuration layer).
    ///
    /// [`SimConfig::validate`]: crate::SimConfig::validate
    ///
    /// # Panics
    ///
    /// Panics on `Some(0)`; use `Some(1)` for a fully serialized
    /// memory system or `None` for the paper's unbounded one.
    pub fn new(capacity: Option<usize>) -> MemoryContention {
        assert!(
            capacity != Some(0),
            "MemoryContention capacity must be at least 1 \
             (Some(1) = fully serial, None = unbounded)"
        );
        MemoryContention {
            capacity,
            ..MemoryContention::default()
        }
    }

    /// Services a miss arriving at cycle `now` with intrinsic
    /// `latency`; returns its completion cycle including any queueing
    /// delay.
    pub fn service(&mut self, now: u64, latency: u32) -> u64 {
        self.misses += 1;
        // Drop completed transactions.
        while self
            .in_flight
            .peek()
            .is_some_and(|&std::cmp::Reverse(t)| t <= now)
        {
            self.in_flight.pop();
        }
        let start = match self.capacity {
            Some(cap) if self.in_flight.len() >= cap => {
                // Wait for the earliest in-flight miss to finish.
                let std::cmp::Reverse(free_at) = self
                    .in_flight
                    .pop()
                    .expect("len >= cap >= 1 implies non-empty");
                self.queued_misses += 1;
                self.queueing_cycles += free_at - now;
                #[cfg(feature = "obs")]
                lookahead_obs::with(|r| {
                    r.metrics.inc("multiproc.net.queued_misses", 1);
                    r.metrics
                        .inc("multiproc.net.contention_cycles", free_at - now);
                    r.event(
                        now,
                        lookahead_obs::EventKind::Contention { dur: free_at - now },
                    );
                });
                free_at
            }
            _ => now,
        };
        let done = start + latency as u64;
        self.in_flight.push(std::cmp::Reverse(done));
        done
    }

    /// Total extra cycles added by queueing so far.
    pub fn queueing_cycles(&self) -> u64 {
        self.queueing_cycles
    }

    /// Number of misses that experienced queueing delay.
    pub fn queued_misses(&self) -> u64 {
        self.queued_misses
    }

    /// Total misses serviced.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Mean queueing delay per miss, in cycles.
    pub fn mean_queueing_delay(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.queueing_cycles as f64 / self.misses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_queues() {
        let mut m = MemoryContention::new(None);
        for i in 0..100 {
            assert_eq!(m.service(i, 50), i + 50);
        }
        assert_eq!(m.queued_misses(), 0);
        assert_eq!(m.queueing_cycles(), 0);
        assert_eq!(m.misses(), 100);
    }

    #[test]
    fn capacity_one_serializes() {
        let mut m = MemoryContention::new(Some(1));
        assert_eq!(m.service(0, 50), 50);
        assert_eq!(m.service(0, 50), 100);
        assert_eq!(m.service(0, 50), 150);
        assert_eq!(m.queued_misses(), 2);
        assert_eq!(m.queueing_cycles(), 50 + 100);
    }

    #[test]
    fn slots_free_as_time_passes() {
        let mut m = MemoryContention::new(Some(1));
        assert_eq!(m.service(0, 50), 50);
        // Arriving after the first completed: no queueing.
        assert_eq!(m.service(60, 50), 110);
        assert_eq!(m.queued_misses(), 0);
    }

    #[test]
    fn burst_spreads_over_capacity() {
        let mut m = MemoryContention::new(Some(2));
        let done: Vec<u64> = (0..6).map(|_| m.service(0, 50)).collect();
        assert_eq!(done, vec![50, 50, 100, 100, 150, 150]);
        assert!((m.mean_queueing_delay() - (50.0 * 2.0 + 100.0 * 2.0) / 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected_at_construction() {
        let _ = MemoryContention::new(Some(0));
    }

    /// A tiny deterministic generator for the property tests (xorshift;
    /// no external dependencies, stable across platforms).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        /// Uniform-ish in `[0, bound)`.
        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound
        }
    }

    /// A random but sorted arrival schedule: (arrival cycle, latency).
    fn random_schedule(seed: u64, misses: usize, max_gap: u64) -> Vec<(u64, u32)> {
        let mut rng = Rng(seed | 1);
        let mut now = 0;
        (0..misses)
            .map(|_| {
                now += rng.below(max_gap);
                (now, 20 + rng.below(60) as u32)
            })
            .collect()
    }

    fn total_queueing(schedule: &[(u64, u32)], capacity: Option<usize>) -> u64 {
        let mut m = MemoryContention::new(capacity);
        for &(at, latency) in schedule {
            m.service(at, latency);
        }
        m.queueing_cycles()
    }

    #[test]
    fn queueing_delay_is_monotone_in_offered_load() {
        // Property: with capacity fixed, densifying the offered load
        // (same misses arriving earlier) never reduces total queueing
        // delay, and adding misses on top of a schedule never reduces
        // it either.
        for seed in [1u64, 7, 42, 1234, 99999] {
            let schedule = random_schedule(seed, 200, 40);
            for cap in [1usize, 2, 4, 8] {
                let baseline = total_queueing(&schedule, Some(cap));

                // (a) Compress every gap by half: strictly denser load.
                let denser: Vec<(u64, u32)> = schedule.iter().map(|&(at, l)| (at / 2, l)).collect();
                assert!(
                    total_queueing(&denser, Some(cap)) >= baseline,
                    "seed {seed} cap {cap}: denser load reduced queueing"
                );

                // (b) Extend the schedule: a prefix never queues more
                // than the whole (queueing_cycles is cumulative and
                // every service() only adds delay).
                let prefix = &schedule[..schedule.len() / 2];
                assert!(
                    total_queueing(prefix, Some(cap)) <= baseline,
                    "seed {seed} cap {cap}: prefix queued more than the full schedule"
                );
            }
        }
    }

    #[test]
    fn queueing_delay_is_monotone_in_capacity() {
        // Property: more service slots never increase total queueing
        // delay, and unbounded capacity queues nothing.
        for seed in [3u64, 17, 256, 7777] {
            let schedule = random_schedule(seed, 300, 25);
            let mut previous = u64::MAX;
            for cap in [1usize, 2, 3, 4, 8, 16, 64] {
                let q = total_queueing(&schedule, Some(cap));
                assert!(
                    q <= previous,
                    "seed {seed}: capacity {cap} queued more than a smaller capacity"
                );
                previous = q;
            }
            assert_eq!(total_queueing(&schedule, None), 0);
        }
    }
}
