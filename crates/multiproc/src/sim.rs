//! The multiprocessor trace-generation simulator, in two engines.
//!
//! Each processor is the paper's trace-generation processor: in-order,
//! blocking reads, writes placed in a 16-entry write buffer draining
//! under release consistency, with the coherent cache model classifying
//! each access and the fixed-latency memory assigning its cost.
//!
//! **The discrete-event engine** ([`Simulator::run`] /
//! [`Simulator::run_with_sink`]) keeps one pending event per processor
//! — the next cycle it can make progress: instruction issue, load
//! return, full-write-buffer drain, lock grant, event-set visibility,
//! barrier release — in an [`EventQueue`](crate::event::EventQueue)
//! ordered by `(cycle, processor id)`. The simulator pops the earliest
//! event, jumps `now` there in one step, and executes; cross-processor
//! wakeups (an unlock making a queued acquirer grantable, a set-event
//! reaching its waiters, the last barrier arrival) are scheduled at
//! their exact visibility cycle. Because every cross-processor
//! visibility time is strictly in the future and dispatch order equals
//! the reference engine's `(cycle, proc)` visit order, the two engines
//! mutate the shared cache, contention, and sync state in the same
//! order and produce byte-identical traces (pinned by the
//! `generation_equivalence` suite).
//!
//! **The reference engine** ([`Simulator::run_reference`] /
//! [`Simulator::run_reference_with_sink`]) is the original cycle
//! stepper: at each cycle every runnable processor executes at most
//! one instruction, in ascending processor order; when no processor
//! can run it fast-forwards to the next known event. It is the
//! specification the event engine is tested against.
//!
//! Stall cycles are attributed analytically at the point an
//! instruction's cost is known: a missing load adds `latency - 1` read
//! cycles, a blocked acquire adds its wait plus access latency to sync
//! time, and a full write buffer adds the cycles until its head drains
//! to write time. The per-processor [`Breakdown`]s therefore satisfy
//! `busy + sync + read + write == finish_time` exactly (tested).

use crate::config::SimConfig;
use crate::contention::MemoryContention;
use crate::event::EventQueue;
use crate::sync::{BarrierTable, EventTable, LockTable};
use lookahead_isa::interp::{Effect, FlatMemory, InterpError, Machine};
use lookahead_isa::program::DataImage;
use lookahead_isa::{Instruction, OpClass, Program, SyncKind};
use lookahead_memsys::{CoherenceStats, CoherentSystem, DrainPolicy, WriteBuffer};
#[cfg(feature = "obs")]
use lookahead_obs::{self as obs, Event, EventKind};
use lookahead_trace::{
    Breakdown, ChunkBuilder, CollectSink, MemAccess, SyncAccess, Trace, TraceEntry, TraceOp,
    TraceSink, DEFAULT_CHUNK_LEN,
};
use std::collections::HashMap;
use std::fmt;

/// Journals a cache hit/miss on processor `p`'s row at cycle `t`.
#[cfg(feature = "obs")]
fn cache_event(t: u64, p: usize, addr: u64, write: bool, miss: bool) {
    obs::with(|r| {
        let kind = if miss {
            EventKind::CacheMiss { addr, write }
        } else {
            EventKind::CacheHit { addr, write }
        };
        r.journal.push(Event {
            t,
            proc: p as u32,
            kind,
        });
    });
}

/// Journals an acquire that waited `wait` cycles then took `access`
/// cycles to perform, on processor `p`'s row.
#[cfg(feature = "obs")]
fn acquire_event(now: u64, p: usize, addr: u64, wait: u32, access: u32, counter: &'static str) {
    obs::with(|r| {
        r.metrics.inc(counter, 1);
        r.journal.push(Event {
            t: now.saturating_sub(wait as u64),
            proc: p as u32,
            kind: EventKind::AcquireWait {
                addr,
                dur: wait as u64 + access as u64,
            },
        });
    });
}

/// Errors from a multiprocessor simulation run.
#[derive(Debug)]
pub enum SimError {
    /// The configuration failed validation.
    Config(String),
    /// A processor hit an interpreter error (bad PC, unexpected block).
    Interp { proc: usize, error: InterpError },
    /// No processor can ever make progress again.
    Deadlock { cycle: u64, blocked: Vec<usize> },
    /// The run exceeded [`SimConfig::max_cycles`].
    CycleLimit { limit: u64 },
    /// The trace sink failed to accept a chunk (an I/O error when
    /// streaming trace generation straight to disk).
    Sink(std::io::Error),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::Interp { proc, error } => {
                write!(f, "processor {proc}: {error}")
            }
            SimError::Deadlock { cycle, blocked } => {
                write!(
                    f,
                    "deadlock at cycle {cycle}: processors {blocked:?} blocked forever"
                )
            }
            SimError::CycleLimit { limit } => write!(f, "exceeded cycle limit {limit}"),
            SimError::Sink(e) => write!(f, "trace sink failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Clamps a cycle delta into the `u32` wait field (saturating; waits
/// anywhere near 2^32 cycles mean the workload is pathological, but
/// the accounting must not wrap).
fn saturate(delta: u64) -> u32 {
    u32::try_from(delta).unwrap_or(u32::MAX)
}

/// Where a processor is in its execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Can execute an instruction this cycle.
    Ready,
    /// Resumes execution at the given cycle.
    StallUntil { at: u64 },
    /// Waiting in a lock queue.
    BlockedLock { addr: u64, since: u64 },
    /// Waiting for an event to be set.
    BlockedEvent { addr: u64, since: u64 },
    /// Waiting for a barrier generation to complete.
    BlockedBarrier {
        addr: u64,
        generation: u64,
        since: u64,
    },
    /// Executed `halt`.
    Halted,
}

#[derive(Debug)]
struct Proc {
    machine: Machine,
    wb: WriteBuffer,
    status: Status,
    /// Bounded per-processor chunk buffer; completed chunks drain to
    /// the run's [`TraceSink`] instead of growing an owned trace.
    chunks: ChunkBuilder,
    breakdown: Breakdown,
    finish_time: u64,
}

impl Proc {
    #[inline]
    fn record(&mut self, entry: TraceEntry) {
        self.chunks.push(entry);
    }
}

/// Result of a completed multiprocessor run.
#[derive(Debug)]
pub struct SimOutcome {
    /// One annotated trace per processor when the run collected them
    /// ([`Simulator::run`]); empty when the chunks went to an external
    /// sink ([`Simulator::run_with_sink`]).
    pub traces: Vec<Trace>,
    /// Per-processor dynamic instruction counts — available on both
    /// the collected and the streamed path.
    pub entry_counts: Vec<u64>,
    /// Per-processor execution-time breakdown of the generating run
    /// (in-order blocking-read processors under RC).
    pub breakdowns: Vec<Breakdown>,
    /// Cycle at which each processor halted.
    pub finish_times: Vec<u64>,
    /// Cycle at which the last processor halted.
    pub total_cycles: u64,
    /// Per-processor cache/coherence statistics.
    pub coherence: Vec<CoherenceStats>,
    /// The shared memory at the end of the run, for verifying workload
    /// results.
    pub final_memory: FlatMemory,
}

impl SimOutcome {
    /// The trace of one processor.
    pub fn trace(&self, proc: usize) -> &Trace {
        &self.traces[proc]
    }

    /// The index of the processor with the most executed instructions —
    /// a reasonable "representative" processor to re-time, mirroring
    /// the paper's choice of one process's trace.
    pub fn busiest_proc(&self) -> usize {
        (0..self.entry_counts.len())
            .max_by_key(|&p| self.entry_counts[p])
            .unwrap_or(0)
    }
}

/// The multiprocessor simulator. Construct with [`Simulator::new`],
/// consume with [`Simulator::run`].
#[derive(Debug)]
pub struct Simulator {
    program: Program,
    config: SimConfig,
    mem: FlatMemory,
    coherent: CoherentSystem,
    procs: Vec<Proc>,
    locks: LockTable,
    events: EventTable,
    barriers: BarrierTable,
    contention: MemoryContention,
    now: u64,
    /// True on the discrete-event path; enables the wakeup bookkeeping
    /// below, which the per-cycle reference engine does not need (it
    /// re-polls every blocked processor each cycle).
    event_mode: bool,
    /// Cross-processor wakeups produced by the current dispatch:
    /// `(cycle, proc)` pairs flushed into the event queue after each
    /// dispatch, clamped to `now + 1` (a woken processor is re-visited
    /// no earlier than the next cycle, exactly as in the reference
    /// engine).
    pending_wakeups: Vec<(u64, usize)>,
    /// Processors blocked in `WaitEvent` per event address. Registered
    /// on block, deregistered on completion; a `SetEvent` wakes every
    /// registered waiter at the set's visibility cycle (which a later
    /// set may still pull earlier — waiters therefore stay registered
    /// until they actually complete).
    event_waiters: HashMap<u64, Vec<usize>>,
    /// Processors waiting per `(barrier address, generation)`. The
    /// arrival that completes a generation wakes and removes the whole
    /// group at the release cycle.
    barrier_waiters: HashMap<(u64, u64), Vec<usize>>,
}

impl Simulator {
    /// Creates a simulator for `program` over the shared memory image.
    ///
    /// Every processor starts at PC 0 with its processor id in `A0`
    /// and the processor count in `A1`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the configuration is invalid.
    pub fn new(
        program: Program,
        image: DataImage,
        config: SimConfig,
    ) -> Result<Simulator, SimError> {
        config.validate().map_err(SimError::Config)?;
        let image_bytes = image.size_bytes();
        let mem_bytes = config.memory_bytes.unwrap_or(image_bytes).max(image_bytes);
        let mem = FlatMemory::from_image(image.into_words(), mem_bytes);
        // Each processor buffers its trace in a fixed-capacity chunk
        // derived from its program size (small kernels get small
        // buffers, loopy programs get full chunks) rather than one
        // whole-trace guess: memory per processor is bounded by the
        // chunk, and the builder debug-asserts the buffer never
        // reallocates mid-run.
        let chunk_capacity = (program.len() * 16).clamp(256, DEFAULT_CHUNK_LEN);
        let procs = (0..config.num_procs)
            .map(|p| {
                let mut machine = Machine::new();
                machine.set_ireg(lookahead_isa::IntReg::A0, p as i64);
                machine.set_ireg(lookahead_isa::IntReg::A1, config.num_procs as i64);
                Proc {
                    machine,
                    wb: WriteBuffer::new(config.write_buffer_depth, DrainPolicy::Overlapped),
                    status: Status::Ready,
                    chunks: ChunkBuilder::new(chunk_capacity),
                    breakdown: Breakdown::new(),
                    finish_time: 0,
                }
            })
            .collect();
        Ok(Simulator {
            coherent: CoherentSystem::new(config.num_procs, config.cache),
            program,
            config,
            mem,
            procs,
            locks: LockTable::new(),
            events: EventTable::new(),
            barriers: BarrierTable::new(),
            contention: MemoryContention::new(config.memory_bandwidth),
            now: 0,
            event_mode: false,
            pending_wakeups: Vec::new(),
            event_waiters: HashMap::new(),
            barrier_waiters: HashMap::new(),
        })
    }

    /// Runs the simulation to completion on the discrete-event engine,
    /// collecting every processor's trace into [`SimOutcome::traces`].
    ///
    /// # Errors
    ///
    /// * [`SimError::Deadlock`] if blocked processors can never wake;
    /// * [`SimError::CycleLimit`] if the configured bound is exceeded;
    /// * [`SimError::Interp`] on an interpreter-level fault (a workload
    ///   bug, e.g. falling off the end of the program).
    pub fn run(self) -> Result<SimOutcome, SimError> {
        let mut sink = CollectSink::new(self.config.num_procs);
        let mut out = self.run_with_sink(&mut sink)?;
        out.traces = sink.into_traces();
        Ok(out)
    }

    /// Runs the simulation on the cycle-stepped reference engine,
    /// collecting traces. Produces byte-identical results to
    /// [`Simulator::run`] (the `generation_equivalence` suite pins
    /// this); it exists as the specification oracle and for
    /// benchmarking the event engine against.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    pub fn run_reference(self) -> Result<SimOutcome, SimError> {
        let mut sink = CollectSink::new(self.config.num_procs);
        let mut out = self.run_reference_with_sink(&mut sink)?;
        out.traces = sink.into_traces();
        Ok(out)
    }

    /// Runs the simulation to completion on the discrete-event engine,
    /// streaming every processor's trace through `sink` as fixed-size
    /// chunks. Memory for traces is bounded by one chunk per
    /// processor; [`SimOutcome::traces`] is left empty (use
    /// [`SimOutcome::entry_counts`] for lengths).
    ///
    /// Chunks of one processor arrive at the sink in trace order;
    /// chunks of different processors interleave as execution does —
    /// in exactly the same order as under the reference engine.
    ///
    /// # Errors
    ///
    /// Everything [`Simulator::run`] returns, plus [`SimError::Sink`]
    /// when the sink rejects a chunk.
    pub fn run_with_sink(mut self, sink: &mut dyn TraceSink) -> Result<SimOutcome, SimError> {
        self.event_mode = true;
        let num_procs = self.procs.len();
        let mut queue = EventQueue::new(num_procs);
        for p in 0..num_procs {
            queue.schedule(p, 0);
        }
        while let Some((t, first)) = queue.pop() {
            debug_assert!(t >= self.now, "events dispatch in time order");
            self.now = t;
            if t > self.config.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: self.config.max_cycles,
                });
            }
            // Dispatch every processor scheduled at this cycle, in
            // ascending id order — the reference stepper's visit order.
            // `pop` found the earliest of them; the rest are probed
            // directly by slot, so a cycle costs one minimum scan
            // however many processors run in it. No new event can
            // appear *at* this cycle mid-sweep: a dispatched processor
            // reschedules strictly later, and wakeups are clamped to
            // `now + 1`.
            for p in first..num_procs {
                if p != first && queue.take_if_at(p, t).is_none() {
                    continue;
                }
                let next = self.dispatch(p)?;
                if let Some(chunk) = self.procs[p].chunks.take_ready() {
                    sink.accept(p, &chunk).map_err(SimError::Sink)?;
                }
                while let Some((wt, wp)) = self.pending_wakeups.pop() {
                    queue.schedule(wp, wt.max(self.now + 1));
                }
                if let Some(next) = next {
                    debug_assert!(next > self.now, "a processor re-runs strictly later");
                    queue.schedule(p, next);
                }
                // A blocked or halted processor stays unscheduled: a
                // future wakeup (if any) re-queues it.
            }
        }
        // Queue empty: everyone halted, or the rest can never wake.
        let blocked: Vec<usize> = (0..num_procs)
            .filter(|&p| self.procs[p].status != Status::Halted)
            .collect();
        if !blocked.is_empty() {
            // The reference engine detects deadlock one cycle after the
            // last processor made progress.
            return Err(SimError::Deadlock {
                cycle: self.now + 1,
                blocked,
            });
        }
        self.finish(sink)
    }

    /// Dispatches processor `p` at `self.now`: retires its write
    /// buffer, then executes / completes / re-polls according to its
    /// status. Returns the next cycle at which `p` itself can make
    /// progress, or `None` when it halted or must wait for a
    /// cross-processor wakeup.
    fn dispatch(&mut self, p: usize) -> Result<Option<u64>, SimError> {
        self.procs[p].wb.retire(self.now);
        match self.procs[p].status {
            Status::Halted => {}
            Status::Ready => self.execute_one(p)?,
            Status::StallUntil { at } => {
                if self.now >= at {
                    self.procs[p].status = Status::Ready;
                    self.execute_one(p)?;
                }
            }
            Status::BlockedLock { addr, since } => {
                if self.locks.try_grant(addr, p, self.now) {
                    let wait = saturate(self.now - since);
                    self.complete_lock_acquire(p, addr, wait)?;
                }
            }
            Status::BlockedEvent { addr, since } => {
                if self.events.is_set(addr, self.now) {
                    let wait = saturate(self.now - since);
                    self.complete_event_wait(p, addr, wait)?;
                }
            }
            Status::BlockedBarrier {
                addr,
                generation,
                since,
            } => {
                if self
                    .barriers
                    .release_time(addr, generation)
                    .is_some_and(|t| self.now >= t)
                {
                    let wait = saturate(self.now - since);
                    self.complete_barrier(p, addr, wait);
                }
            }
        }
        Ok(self.next_time(p))
    }

    /// The next cycle processor `p` can make progress on its own, from
    /// its (possibly just-updated) status. Blocked processors report a
    /// time only when the sync tables already know it; otherwise they
    /// wait for a wakeup. Wake times are clamped to `now + 1` — the
    /// reference engine re-visits a blocked processor no earlier than
    /// the next cycle.
    fn next_time(&self, p: usize) -> Option<u64> {
        let floor = self.now + 1;
        match self.procs[p].status {
            Status::Halted => None,
            Status::Ready => Some(floor),
            Status::StallUntil { at } => Some(at.max(floor)),
            Status::BlockedLock { addr, .. } => self.locks.wake_time(addr, p).map(|t| t.max(floor)),
            Status::BlockedEvent { addr, .. } => self.events.set_time(addr).map(|t| t.max(floor)),
            Status::BlockedBarrier {
                addr, generation, ..
            } => self
                .barriers
                .release_time(addr, generation)
                .map(|t| t.max(floor)),
        }
    }

    /// Runs the simulation on the cycle-stepped reference engine,
    /// streaming chunks through `sink` — the original implementation
    /// of [`Simulator::run_with_sink`], retained as the oracle.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run_with_sink`].
    pub fn run_reference_with_sink(
        mut self,
        sink: &mut dyn TraceSink,
    ) -> Result<SimOutcome, SimError> {
        loop {
            if self.procs.iter().all(|p| p.status == Status::Halted) {
                break;
            }
            if self.now > self.config.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: self.config.max_cycles,
                });
            }
            let mut progressed = false;
            let mut next: Option<u64> = None;
            let mut note = |t: u64| {
                next = Some(next.map_or(t, |n: u64| n.min(t)));
            };
            for p in 0..self.procs.len() {
                self.procs[p].wb.retire(self.now);
                match self.procs[p].status {
                    Status::Halted => {}
                    Status::Ready => {
                        self.execute_one(p)?;
                        progressed = true;
                    }
                    Status::StallUntil { at } => {
                        if self.now >= at {
                            self.procs[p].status = Status::Ready;
                            self.execute_one(p)?;
                            progressed = true;
                        } else {
                            note(at);
                        }
                    }
                    Status::BlockedLock { addr, since } => {
                        if self.locks.try_grant(addr, p, self.now) {
                            let wait = saturate(self.now - since);
                            self.complete_lock_acquire(p, addr, wait)?;
                            progressed = true;
                        } else if let Some(t) = self.locks.wake_time(addr, p) {
                            // `try_grant` failed, so the wake time must
                            // still be in the future.
                            note(t.max(self.now + 1));
                        }
                    }
                    Status::BlockedEvent { addr, since } => {
                        if self.events.is_set(addr, self.now) {
                            let wait = saturate(self.now - since);
                            self.complete_event_wait(p, addr, wait)?;
                            progressed = true;
                        } else if let Some(t) = self.events.set_time(addr) {
                            note(t.max(self.now + 1));
                        }
                    }
                    Status::BlockedBarrier {
                        addr,
                        generation,
                        since,
                    } => {
                        if let Some(t) = self.barriers.release_time(addr, generation) {
                            if self.now >= t {
                                let wait = saturate(self.now - since);
                                self.complete_barrier(p, addr, wait);
                                progressed = true;
                            } else {
                                note(t);
                            }
                        }
                    }
                }
                // A turn records at most one entry, so at most one
                // chunk completes per turn; drain it before the buffer
                // can fill again.
                if let Some(chunk) = self.procs[p].chunks.take_ready() {
                    sink.accept(p, &chunk).map_err(SimError::Sink)?;
                }
            }
            if progressed {
                self.now += 1;
            } else if let Some(t) = next {
                debug_assert!(t > self.now, "fast-forward must move time forward");
                self.now = t;
            } else {
                let blocked = (0..self.procs.len())
                    .filter(|&p| self.procs[p].status != Status::Halted)
                    .collect();
                return Err(SimError::Deadlock {
                    cycle: self.now,
                    blocked,
                });
            }
        }
        self.finish(sink)
    }

    /// Shared run epilogue: drains each processor's final partial
    /// chunk into `sink` (in ascending processor order) and assembles
    /// the outcome.
    fn finish(mut self, sink: &mut dyn TraceSink) -> Result<SimOutcome, SimError> {
        for (p, proc) in self.procs.iter_mut().enumerate() {
            if let Some(chunk) = proc.chunks.finish() {
                sink.accept(p, &chunk).map_err(SimError::Sink)?;
            }
        }
        Ok(SimOutcome {
            traces: Vec::new(),
            entry_counts: self
                .procs
                .iter()
                .map(|p| p.chunks.entries_pushed())
                .collect(),
            breakdowns: self.procs.iter().map(|p| p.breakdown).collect(),
            finish_times: self.procs.iter().map(|p| p.finish_time).collect(),
            total_cycles: self
                .procs
                .iter()
                .map(|p| p.finish_time)
                .max()
                .unwrap_or(self.now),
            coherence: (0..self.procs.len())
                .map(|p| *self.coherent.stats(p))
                .collect(),
            final_memory: self.mem,
        })
    }

    fn interp_err(p: usize) -> impl FnOnce(InterpError) -> SimError {
        move |error| SimError::Interp { proc: p, error }
    }

    /// Effective latency of an access observed now: the configured
    /// hit/miss latency, plus memory queueing delay for misses when a
    /// bandwidth limit is configured.
    fn access_latency(&mut self, miss: bool) -> u32 {
        if !miss {
            return self.config.mem.hit_latency;
        }
        let done = self
            .contention
            .service(self.now, self.config.mem.miss_penalty);
        saturate(done - self.now)
    }

    /// Executes one instruction on a Ready processor `p` at `self.now`.
    fn execute_one(&mut self, p: usize) -> Result<(), SimError> {
        let now = self.now;
        let pc = self.procs[p].machine.pc();
        let instr: Instruction = *self.program.fetch(pc).ok_or(SimError::Interp {
            proc: p,
            error: InterpError::PcOutOfRange {
                pc,
                len: self.program.len(),
            },
        })?;
        match instr.class() {
            OpClass::IntAlu | OpClass::FpAlu | OpClass::Branch | OpClass::Jump | OpClass::Other => {
                let effect = self.procs[p]
                    .machine
                    .step(&self.program, &mut self.mem)
                    .map_err(Self::interp_err(p))?;
                match effect {
                    Effect::Halt => {
                        self.procs[p].status = Status::Halted;
                        self.procs[p].finish_time = now;
                        return Ok(());
                    }
                    Effect::Branch { taken, target } => self.procs[p].record(TraceEntry {
                        pc: pc as u32,
                        op: TraceOp::Branch {
                            taken,
                            target: target as u32,
                        },
                    }),
                    Effect::Jump { target } => self.procs[p].record(TraceEntry {
                        pc: pc as u32,
                        op: TraceOp::Jump {
                            target: target as u32,
                        },
                    }),
                    _ => self.procs[p].record(TraceEntry::compute(pc as u32)),
                }
                self.procs[p].breakdown.busy += 1;
            }
            OpClass::Load => {
                let addr = self.procs[p]
                    .machine
                    .peek_addr(&self.program)
                    .expect("load has an address");
                let miss = self.coherent.read(p, addr).is_miss();
                let latency = self.access_latency(miss);
                #[cfg(feature = "obs")]
                cache_event(now, p, addr, false, miss);
                self.procs[p]
                    .machine
                    .step(&self.program, &mut self.mem)
                    .map_err(Self::interp_err(p))?;
                self.procs[p].record(TraceEntry {
                    pc: pc as u32,
                    op: TraceOp::Load(MemAccess {
                        addr,
                        miss,
                        latency,
                    }),
                });
                self.procs[p].breakdown.busy += 1;
                self.procs[p].breakdown.read += (latency - 1) as u64;
                // Blocking read: the next instruction starts when the
                // value returns.
                self.procs[p].status = Status::StallUntil {
                    at: now + latency as u64,
                };
            }
            OpClass::Store => {
                let addr = self.procs[p]
                    .machine
                    .peek_addr(&self.program)
                    .expect("store has an address");
                if self.procs[p].wb.is_full() {
                    // Stall until the head write drains, then retry.
                    let t = self.procs[p]
                        .wb
                        .head_completion()
                        .expect("full buffer has a head");
                    debug_assert!(t > now, "retired at cycle start");
                    self.procs[p].breakdown.write += t - now;
                    self.procs[p].status = Status::StallUntil { at: t };
                    return Ok(());
                }
                let miss = self.coherent.write(p, addr).is_miss();
                let latency = self.access_latency(miss);
                #[cfg(feature = "obs")]
                cache_event(now, p, addr, true, miss);
                self.procs[p]
                    .machine
                    .step(&self.program, &mut self.mem)
                    .map_err(Self::interp_err(p))?;
                self.procs[p]
                    .wb
                    .push(addr, latency, now)
                    .expect("checked not full");
                self.procs[p].record(TraceEntry {
                    pc: pc as u32,
                    op: TraceOp::Store(MemAccess {
                        addr,
                        miss,
                        latency,
                    }),
                });
                self.procs[p].breakdown.busy += 1;
            }
            OpClass::Sync(kind) => self.execute_sync(p, kind)?,
        }
        Ok(())
    }

    fn execute_sync(&mut self, p: usize, kind: SyncKind) -> Result<(), SimError> {
        let now = self.now;
        let addr = self.procs[p]
            .machine
            .peek_addr(&self.program)
            .expect("sync has an address");
        match kind {
            SyncKind::Lock => {
                if self.locks.try_acquire(addr, p, now) {
                    self.complete_lock_acquire(p, addr, 0)?;
                } else {
                    self.procs[p].status = Status::BlockedLock { addr, since: now };
                }
            }
            SyncKind::Unlock | SyncKind::SetEvent => {
                if self.procs[p].wb.is_full() {
                    let t = self.procs[p]
                        .wb
                        .head_completion()
                        .expect("full buffer has a head");
                    self.procs[p].breakdown.write += t - now;
                    self.procs[p].status = Status::StallUntil { at: t };
                    return Ok(());
                }
                let miss = self.coherent.write(p, addr).is_miss();
                let latency = self.access_latency(miss);
                #[cfg(feature = "obs")]
                cache_event(now, p, addr, true, miss);
                self.procs[p]
                    .machine
                    .step(&self.program, &mut self.mem)
                    .map_err(Self::interp_err(p))?;
                let visible = self.procs[p]
                    .wb
                    .push_release(addr, latency, now)
                    .expect("checked not full");
                match kind {
                    SyncKind::Unlock => {
                        self.locks.release(addr, p, visible);
                        if self.event_mode {
                            // The queue head (if any) becomes grantable
                            // when the release is visible.
                            if let Some(head) = self.locks.head_waiter(addr) {
                                if let Some(t) = self.locks.wake_time(addr, head) {
                                    self.pending_wakeups.push((t, head));
                                }
                            }
                        }
                    }
                    SyncKind::SetEvent => {
                        self.events.set(addr, visible);
                        if self.event_mode {
                            // Wake every registered waiter at the set's
                            // visibility cycle (`set` keeps the earliest
                            // of repeated sets). Waiters deregister on
                            // completion, not here — a later set may
                            // still pull the visibility time earlier.
                            let t = self.events.set_time(addr).expect("just set");
                            if let Some(waiters) = self.event_waiters.get(&addr) {
                                for &w in waiters {
                                    self.pending_wakeups.push((t, w));
                                }
                            }
                        }
                    }
                    _ => unreachable!(),
                }
                let done_pc = self.procs[p].machine.pc() as u32 - 1;
                self.procs[p].record(TraceEntry {
                    pc: done_pc,
                    op: TraceOp::Sync(SyncAccess {
                        kind,
                        addr,
                        wait: 0,
                        access: latency,
                    }),
                });
                self.procs[p].breakdown.busy += 1;
            }
            SyncKind::WaitEvent => {
                if self.events.is_set(addr, now) {
                    self.complete_event_wait(p, addr, 0)?;
                } else {
                    self.procs[p].status = Status::BlockedEvent { addr, since: now };
                    if self.event_mode {
                        self.event_waiters.entry(addr).or_default().push(p);
                    }
                }
            }
            SyncKind::Barrier => {
                let arrive = now.max(self.procs[p].wb.pending_drain_time());
                self.procs[p]
                    .machine
                    .step(&self.program, &mut self.mem)
                    .map_err(Self::interp_err(p))?;
                let generation = self.barriers.arrive(addr, arrive, self.config.num_procs);
                self.procs[p].status = Status::BlockedBarrier {
                    addr,
                    generation,
                    since: now,
                };
                if self.event_mode {
                    let group = self.barrier_waiters.entry((addr, generation)).or_default();
                    group.push(p);
                    // The arrival that completes the generation frees
                    // the whole group at the release cycle.
                    if let Some(t) = self.barriers.release_time(addr, generation) {
                        let group = self
                            .barrier_waiters
                            .remove(&(addr, generation))
                            .expect("just inserted");
                        for w in group {
                            self.pending_wakeups.push((t, w));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Finishes a lock acquire for `p` at `self.now` after `wait`
    /// blocked cycles (0 if the lock was free on arrival).
    ///
    /// # Errors
    ///
    /// Fails if the lock word was corrupted by an ordinary store (a
    /// workload bug: the interpreter then sees a held lock the lock
    /// table granted).
    fn complete_lock_acquire(&mut self, p: usize, addr: u64, wait: u32) -> Result<(), SimError> {
        let now = self.now;
        let pc = self.procs[p].machine.pc();
        let miss = self.coherent.write(p, addr).is_miss();
        let access = self.access_latency(miss);
        #[cfg(feature = "obs")]
        {
            cache_event(now, p, addr, true, miss);
            acquire_event(now, p, addr, wait, access, "multiproc.sync.lock_acquires");
        }
        self.procs[p]
            .machine
            .step(&self.program, &mut self.mem)
            .map_err(Self::interp_err(p))?;
        self.procs[p].record(TraceEntry {
            pc: pc as u32,
            op: TraceOp::Sync(SyncAccess {
                kind: SyncKind::Lock,
                addr,
                wait,
                access,
            }),
        });
        self.procs[p].breakdown.busy += 1;
        self.procs[p].breakdown.sync += wait as u64 + (access - 1) as u64;
        self.procs[p].status = Status::StallUntil {
            at: now + access as u64,
        };
        Ok(())
    }

    /// Finishes an event wait for `p` after `wait` blocked cycles.
    ///
    /// # Errors
    ///
    /// Fails if the event word was cleared by an ordinary store after
    /// the event table saw it set (a workload bug).
    fn complete_event_wait(&mut self, p: usize, addr: u64, wait: u32) -> Result<(), SimError> {
        if self.event_mode {
            if let Some(waiters) = self.event_waiters.get_mut(&addr) {
                waiters.retain(|&w| w != p);
            }
        }
        let now = self.now;
        let pc = self.procs[p].machine.pc();
        let miss = self.coherent.read(p, addr).is_miss();
        let access = self.access_latency(miss);
        #[cfg(feature = "obs")]
        {
            cache_event(now, p, addr, false, miss);
            acquire_event(now, p, addr, wait, access, "multiproc.sync.event_waits");
        }
        self.procs[p]
            .machine
            .step(&self.program, &mut self.mem)
            .map_err(Self::interp_err(p))?;
        self.procs[p].record(TraceEntry {
            pc: pc as u32,
            op: TraceOp::Sync(SyncAccess {
                kind: SyncKind::WaitEvent,
                addr,
                wait,
                access,
            }),
        });
        self.procs[p].breakdown.busy += 1;
        self.procs[p].breakdown.sync += wait as u64 + (access - 1) as u64;
        self.procs[p].status = Status::StallUntil {
            at: now + access as u64,
        };
        Ok(())
    }

    /// Finishes a barrier departure for `p` after `wait` blocked cycles.
    /// (The PC already advanced at arrival.)
    fn complete_barrier(&mut self, p: usize, addr: u64, wait: u32) {
        let now = self.now;
        let pc = self.procs[p].machine.pc().saturating_sub(1);
        let miss = self.coherent.read(p, addr).is_miss();
        let access = self.access_latency(miss);
        #[cfg(feature = "obs")]
        {
            cache_event(now, p, addr, false, miss);
            acquire_event(now, p, addr, wait, access, "multiproc.sync.barrier_waits");
        }
        self.procs[p].record(TraceEntry {
            pc: pc as u32,
            op: TraceOp::Sync(SyncAccess {
                kind: SyncKind::Barrier,
                addr,
                wait,
                access,
            }),
        });
        self.procs[p].breakdown.busy += 1;
        self.procs[p].breakdown.sync += wait as u64 + (access - 1) as u64;
        self.procs[p].status = Status::StallUntil {
            at: now + access as u64,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookahead_isa::{Assembler, BranchCond, IntReg};

    fn small_config(n: usize) -> SimConfig {
        SimConfig {
            num_procs: n,
            max_cycles: 10_000_000,
            ..SimConfig::default()
        }
    }

    fn run_program(build: impl FnOnce(&mut Assembler), image: DataImage, n: usize) -> SimOutcome {
        let mut a = Assembler::new();
        build(&mut a);
        a.halt();
        let program = a.assemble().unwrap();
        Simulator::new(program, image, small_config(n))
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn pure_compute_is_all_busy() {
        let out = run_program(
            |a| {
                a.li(IntReg::T0, 0);
                for _ in 0..10 {
                    a.addi(IntReg::T0, IntReg::T0, 1);
                }
            },
            DataImage::new(),
            1,
        );
        let b = out.breakdowns[0];
        assert_eq!(b.busy, 11);
        assert_eq!(b.sync + b.read + b.write, 0);
        assert_eq!(out.finish_times[0], 11);
        assert_eq!(out.traces[0].len(), 11);
    }

    #[test]
    fn read_miss_stalls_blocking_processor() {
        let mut image = DataImage::new();
        let slot = image.alloc_i64(99);
        let out = run_program(
            move |a| {
                a.li(IntReg::G0, slot as i64);
                a.load(IntReg::T0, IntReg::G0, 0);
                a.addi(IntReg::T1, IntReg::T0, 1);
            },
            image,
            1,
        );
        let b = out.breakdowns[0];
        assert_eq!(b.busy, 3);
        assert_eq!(b.read, 49, "one 50-cycle cold miss");
        // li at 0, load at 1 (resumes at 51), addi at 51, halt at 52.
        assert_eq!(out.finish_times[0], 52);
        assert_eq!(b.total(), 52);
    }

    #[test]
    fn second_load_to_same_line_hits() {
        let mut image = DataImage::new();
        let base = image.align_to(16);
        image.alloc_i64_slice(&[1, 2]); // two words, same 16-byte line
        let out = run_program(
            move |a| {
                a.li(IntReg::G0, base as i64);
                a.load(IntReg::T0, IntReg::G0, 0);
                a.load(IntReg::T1, IntReg::G0, 8);
            },
            image,
            1,
        );
        let reads: Vec<_> = out.traces[0]
            .iter()
            .filter_map(|e| e.mem_access())
            .collect();
        assert_eq!(reads.len(), 2);
        assert!(reads[0].miss);
        assert!(!reads[1].miss, "same line: hit");
        assert_eq!(out.breakdowns[0].read, 49);
    }

    #[test]
    fn stores_overlap_under_release_consistency() {
        // Two miss stores back to back: the processor does not stall
        // (write buffer absorbs them) so busy dominates.
        let mut image = DataImage::new();
        let base = image.align_to(16);
        image.alloc_words(8);
        let out = run_program(
            move |a| {
                a.li(IntReg::G0, base as i64);
                a.li(IntReg::T0, 5);
                a.store(IntReg::T0, IntReg::G0, 0);
                a.store(IntReg::T0, IntReg::G0, 16); // different line
                a.store(IntReg::T0, IntReg::G0, 32);
            },
            image,
            1,
        );
        let b = out.breakdowns[0];
        assert_eq!(b.busy, 5);
        assert_eq!(b.write, 0, "buffer never fills");
        assert_eq!(out.finish_times[0], 5);
        assert_eq!(out.final_memory.read_i64(base + 32), 5);
    }

    #[test]
    fn full_write_buffer_stalls_and_accounts_write_time() {
        let mut image = DataImage::new();
        let base = image.align_to(16);
        image.alloc_words(64);
        let mut a = Assembler::new();
        a.li(IntReg::G0, base as i64);
        a.li(IntReg::T0, 1);
        for i in 0..4 {
            a.store(IntReg::T0, IntReg::G0, i * 16); // all misses
        }
        a.halt();
        let program = a.assemble().unwrap();
        let config = SimConfig {
            num_procs: 1,
            write_buffer_depth: 2,
            max_cycles: 100_000,
            ..SimConfig::default()
        };
        let out = Simulator::new(program, image, config)
            .unwrap()
            .run()
            .unwrap();
        let b = out.breakdowns[0];
        assert!(b.write > 0, "third store must stall on full buffer");
        assert_eq!(b.total(), out.finish_times[0]);
    }

    #[test]
    fn spmd_procs_write_disjoint_slots() {
        let mut image = DataImage::new();
        let array = image.alloc_words(4);
        let out = run_program(
            move |a| {
                a.li(IntReg::G0, array as i64);
                a.index_word(IntReg::T0, IntReg::G0, IntReg::A0);
                a.muli(IntReg::T1, IntReg::A0, 10);
                a.store(IntReg::T1, IntReg::T0, 0);
            },
            image,
            4,
        );
        for p in 0..4 {
            assert_eq!(out.final_memory.read_i64(array + p * 8), p as i64 * 10);
        }
    }

    #[test]
    fn lock_contention_records_wait() {
        // Both processors increment a shared counter under a lock.
        let mut image = DataImage::new();
        let lock = image.alloc_words(1);
        image.align_to(16);
        let counter = image.alloc_words(1);
        let out = run_program(
            move |a| {
                a.li(IntReg::G0, lock as i64);
                a.li(IntReg::G1, counter as i64);
                a.lock(IntReg::G0, 0);
                a.load(IntReg::T0, IntReg::G1, 0);
                a.addi(IntReg::T0, IntReg::T0, 1);
                a.store(IntReg::T0, IntReg::G1, 0);
                a.unlock(IntReg::G0, 0);
            },
            image,
            2,
        );
        assert_eq!(out.final_memory.read_i64(counter), 2, "mutual exclusion");
        let waits: Vec<u32> = out
            .traces
            .iter()
            .flat_map(|t| t.iter())
            .filter_map(|e| e.sync_access())
            .filter(|s| s.kind == SyncKind::Lock)
            .map(|s| s.wait)
            .collect();
        assert_eq!(waits.len(), 2);
        assert!(
            waits.iter().any(|&w| w > 0),
            "one processor must have waited: {waits:?}"
        );
    }

    #[test]
    fn barrier_synchronizes_generations() {
        // Proc 0 does extra work before the barrier; both must leave
        // together, so proc 1 records barrier wait time.
        let mut image = DataImage::new();
        let bar = image.alloc_words(1);
        let out = run_program(
            move |a| {
                a.li(IntReg::G0, bar as i64);
                a.if_then(BranchCond::Eq, IntReg::A0, IntReg::ZERO, |a| {
                    a.li(IntReg::T0, 0);
                    a.for_range(IntReg::T1, 0, 200, |a| {
                        a.addi(IntReg::T0, IntReg::T0, 1);
                    });
                });
                a.barrier(IntReg::G0, 0);
                a.barrier(IntReg::G0, 0);
            },
            image,
            2,
        );
        let p1_waits: Vec<u32> = out.traces[1]
            .iter()
            .filter_map(|e| e.sync_access())
            .filter(|s| s.kind == SyncKind::Barrier)
            .map(|s| s.wait)
            .collect();
        assert_eq!(p1_waits.len(), 2);
        assert!(p1_waits[0] > 300, "proc 1 waits for proc 0's loop");
        // Finish times are nearly equal because barriers align them.
        let diff = out.finish_times[0].abs_diff(out.finish_times[1]);
        assert!(diff < 200, "finish times {:?}", out.finish_times);
    }

    #[test]
    fn event_producer_consumer() {
        let mut image = DataImage::new();
        let ev = image.alloc_words(1);
        image.align_to(16);
        let data = image.alloc_words(1);
        let out = run_program(
            move |a| {
                a.li(IntReg::G0, ev as i64);
                a.li(IntReg::G1, data as i64);
                a.if_then_else(
                    BranchCond::Eq,
                    IntReg::A0,
                    IntReg::ZERO,
                    |a| {
                        // Producer: compute, publish, set event.
                        a.li(IntReg::T0, 0);
                        a.for_range(IntReg::T1, 0, 100, |a| {
                            a.addi(IntReg::T0, IntReg::T0, 3);
                        });
                        a.store(IntReg::T0, IntReg::G1, 0);
                        a.set_event(IntReg::G0, 0);
                    },
                    |a| {
                        // Consumer: wait, read.
                        a.wait_event(IntReg::G0, 0);
                        a.load(IntReg::T2, IntReg::G1, 0);
                    },
                );
            },
            image,
            2,
        );
        assert_eq!(out.final_memory.read_i64(data), 300);
        let wait = out.traces[1]
            .iter()
            .filter_map(|e| e.sync_access())
            .find(|s| s.kind == SyncKind::WaitEvent)
            .expect("consumer waited");
        assert!(wait.wait > 100, "consumer waited for producer: {wait:?}");
        // Under RC the set-event is a release: the consumer's
        // subsequent read must see the published data (verified by the
        // final-memory check above) and the wait reflects the
        // producer's write-buffer drain.
    }

    #[test]
    fn deadlock_detected_on_double_lock() {
        let mut image = DataImage::new();
        let lock = image.alloc_words(1);
        let mut a = Assembler::new();
        a.li(IntReg::G0, lock as i64);
        a.lock(IntReg::G0, 0);
        a.lock(IntReg::G0, 0);
        a.halt();
        let program = a.assemble().unwrap();
        let err = Simulator::new(program, image, small_config(1))
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn cycle_limit_enforced() {
        let mut a = Assembler::new();
        let top = a.label();
        a.bind(top).unwrap();
        a.li(IntReg::T0, 1);
        a.jump(top);
        let program = a.assemble().unwrap();
        let config = SimConfig {
            num_procs: 1,
            max_cycles: 1000,
            ..SimConfig::default()
        };
        let err = Simulator::new(program, DataImage::new(), config)
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { limit: 1000 }));
    }

    #[test]
    fn breakdown_accounts_every_cycle() {
        // Mixed workload: loads, stores, branches, a lock.
        let mut image = DataImage::new();
        let lock = image.alloc_words(1);
        image.align_to(16);
        let data = image.alloc_words(32);
        let out = run_program(
            move |a| {
                a.li(IntReg::G0, lock as i64);
                a.li(IntReg::G1, data as i64);
                a.for_range(IntReg::S0, 0, 8, |a| {
                    a.index_word(IntReg::T0, IntReg::G1, IntReg::S0);
                    a.load(IntReg::T1, IntReg::T0, 0);
                    a.addi(IntReg::T1, IntReg::T1, 1);
                    a.store(IntReg::T1, IntReg::T0, 0);
                });
                a.lock(IntReg::G0, 0);
                a.unlock(IntReg::G0, 0);
            },
            image,
            2,
        );
        for p in 0..2 {
            assert_eq!(
                out.breakdowns[p].total(),
                out.finish_times[p],
                "proc {p}: breakdown must account every cycle"
            );
        }
    }

    #[test]
    fn event_engine_matches_reference_on_mixed_workload() {
        // Loads, stores, branches, a contended lock, an event pair and
        // barriers across 4 processors — both engines must agree on
        // every trace byte, breakdown, and finish time. (The heavy
        // randomized version lives in tests/generation_equivalence.rs.)
        let mut image = DataImage::new();
        let lock = image.alloc_words(1);
        let ev = image.alloc_words(1);
        let bar = image.alloc_words(1);
        image.align_to(16);
        let data = image.alloc_words(64);
        let build = move |a: &mut Assembler| {
            a.li(IntReg::G0, lock as i64);
            a.li(IntReg::G1, data as i64);
            a.li(IntReg::G2, ev as i64);
            a.li(IntReg::G3, bar as i64);
            a.for_range(IntReg::S0, 0, 6, |a| {
                a.index_word(IntReg::T0, IntReg::G1, IntReg::S0);
                a.load(IntReg::T1, IntReg::T0, 0);
                a.addi(IntReg::T1, IntReg::T1, 1);
                a.store(IntReg::T1, IntReg::T0, 0);
            });
            a.lock(IntReg::G0, 0);
            a.load(IntReg::T2, IntReg::G1, 0);
            a.addi(IntReg::T2, IntReg::T2, 1);
            a.store(IntReg::T2, IntReg::G1, 0);
            a.unlock(IntReg::G0, 0);
            a.if_then_else(
                BranchCond::Eq,
                IntReg::A0,
                IntReg::ZERO,
                |a| {
                    a.set_event(IntReg::G2, 0);
                },
                |a| {
                    a.wait_event(IntReg::G2, 0);
                },
            );
            a.barrier(IntReg::G3, 0);
            a.barrier(IntReg::G3, 0);
        };
        let assemble = |build: &dyn Fn(&mut Assembler)| {
            let mut a = Assembler::new();
            build(&mut a);
            a.halt();
            a.assemble().unwrap()
        };
        let program = assemble(&build);
        let config = small_config(4);
        let event = Simulator::new(program.clone(), image.clone(), config)
            .unwrap()
            .run()
            .unwrap();
        let reference = Simulator::new(program, image, config)
            .unwrap()
            .run_reference()
            .unwrap();
        assert_eq!(event.traces, reference.traces);
        assert_eq!(event.breakdowns, reference.breakdowns);
        assert_eq!(event.finish_times, reference.finish_times);
        assert_eq!(event.entry_counts, reference.entry_counts);
        assert_eq!(event.total_cycles, reference.total_cycles);
    }

    #[test]
    fn busiest_proc_selects_longest_trace() {
        let mut image = DataImage::new();
        let _ = image.alloc_words(1);
        let out = run_program(
            move |a| {
                // Proc 1 runs a longer loop.
                a.muli(IntReg::T2, IntReg::A0, 50);
                a.addi(IntReg::T2, IntReg::T2, 10);
                a.li(IntReg::T0, 0);
                a.for_to(IntReg::T1, 0, IntReg::T2, |a| {
                    a.addi(IntReg::T0, IntReg::T0, 1);
                });
            },
            image,
            2,
        );
        assert_eq!(out.busiest_proc(), 1);
    }
}
