//! Execution-driven shared-memory multiprocessor simulation — the
//! Tango Lite equivalent of the paper's methodology (§3.2).
//!
//! The simulator runs one SRISC program SPMD-style on `N` processors
//! (16 in the paper) over a shared flat memory, with:
//!
//! * simple **in-order, blocking-read** processors;
//! * a **16-entry write buffer** per processor draining under release
//!   consistency (writes overlap; releases wait for pending writes);
//! * per-processor **64 KB direct-mapped write-back caches** kept
//!   coherent by an invalidation protocol;
//! * fixed memory latency: 1-cycle hits, a constant miss penalty;
//! * lock / barrier / event synchronization in the style of the ANL
//!   macro package, with precise wait-time accounting.
//!
//! Its product is one annotated dynamic instruction
//! [`Trace`](lookahead_trace::Trace) per processor: every memory
//! access carries its effective address and observed latency, every
//! acquire its wait/access split, every branch its direction — exactly
//! the information the paper's processor timing models re-time.
//!
//! # Example
//!
//! ```
//! use lookahead_isa::{Assembler, IntReg};
//! use lookahead_isa::program::DataImage;
//! use lookahead_multiproc::{SimConfig, Simulator};
//!
//! // Each processor stores its id into slot id of a shared array.
//! let mut image = DataImage::new();
//! let array = image.alloc_words(4);
//! let mut b = Assembler::new();
//! b.li(IntReg::G0, array as i64);
//! b.index_word(IntReg::T0, IntReg::G0, IntReg::A0);
//! b.store(IntReg::A0, IntReg::T0, 0);
//! b.halt();
//! let program = b.assemble()?;
//!
//! let config = SimConfig { num_procs: 4, ..SimConfig::default() };
//! let outcome = Simulator::new(program, image, config)?.run()?;
//! assert_eq!(outcome.final_memory.read_i64(array + 3 * 8), 3);
//! assert_eq!(outcome.traces.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod config;
pub mod contention;
pub mod event;
pub mod sim;
pub mod sync;

pub use config::SimConfig;
pub use contention::MemoryContention;
pub use event::EventQueue;
pub use sim::{SimError, SimOutcome, Simulator};
