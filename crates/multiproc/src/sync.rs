//! Synchronization coordination tables: locks, events, barriers.
//!
//! The tables gate *timing*; the architectural side effects (setting a
//! lock word to 1, an event flag to 1) are performed by the SRISC
//! interpreter when the simulator decides the operation may proceed.
//!
//! A lock released at cycle `t_exec` by an unlock whose memory write
//! completes at `t_done >= t_exec` becomes grantable only at `t_done` —
//! under release consistency the unlock goes through the write buffer
//! and must wait for previous writes, and a competing acquirer cannot
//! observe the release before it is performed.

use std::collections::{HashMap, VecDeque};

/// State of one lock variable.
#[derive(Debug, Clone, Default)]
pub struct LockState {
    /// Processor currently holding the lock, if any.
    holder: Option<usize>,
    /// Cycle at which the most recent release becomes visible.
    free_at: u64,
    /// FIFO queue of blocked acquirers.
    queue: VecDeque<usize>,
}

/// All lock variables, keyed by shared-memory address.
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    locks: HashMap<u64, LockState>,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> LockTable {
        LockTable::default()
    }

    /// Attempts an immediate acquire by `proc` at cycle `now`.
    /// Returns `true` (and records the hold) if the lock is free, its
    /// last release is visible, and nobody is queued ahead; otherwise
    /// enqueues `proc` and returns `false`.
    pub fn try_acquire(&mut self, addr: u64, proc: usize, now: u64) -> bool {
        let lock = self.locks.entry(addr).or_default();
        if lock.holder.is_none() && now >= lock.free_at && lock.queue.is_empty() {
            lock.holder = Some(proc);
            true
        } else {
            lock.queue.push_back(proc);
            false
        }
    }

    /// Whether blocked `proc` can be granted the lock at cycle `now`
    /// (it must be at the head of the queue). If so, the grant is
    /// performed (the proc is dequeued and recorded as holder).
    pub fn try_grant(&mut self, addr: u64, proc: usize, now: u64) -> bool {
        let Some(lock) = self.locks.get_mut(&addr) else {
            return false;
        };
        if lock.holder.is_none() && now >= lock.free_at && lock.queue.front() == Some(&proc) {
            lock.queue.pop_front();
            lock.holder = Some(proc);
            true
        } else {
            false
        }
    }

    /// Releases the lock; the release becomes visible at `visible_at`
    /// (the completion time of the unlock's memory write).
    ///
    /// # Panics
    ///
    /// Panics if `proc` does not hold the lock — an unlock without a
    /// matching lock is a workload bug worth failing loudly on.
    pub fn release(&mut self, addr: u64, proc: usize, visible_at: u64) {
        let lock = self
            .locks
            .get_mut(&addr)
            .unwrap_or_else(|| panic!("unlock of unknown lock {addr:#x}"));
        assert_eq!(
            lock.holder,
            Some(proc),
            "processor {proc} unlocking lock {addr:#x} it does not hold"
        );
        lock.holder = None;
        lock.free_at = lock.free_at.max(visible_at);
    }

    /// If `proc` is the queue head of a free lock, the cycle at which
    /// the grant will be possible (for fast-forwarding); `None` if the
    /// wake time is unknown (lock still held or proc not at head).
    pub fn wake_time(&self, addr: u64, proc: usize) -> Option<u64> {
        let lock = self.locks.get(&addr)?;
        if lock.holder.is_none() && lock.queue.front() == Some(&proc) {
            Some(lock.free_at)
        } else {
            None
        }
    }

    /// Current holder of the lock at `addr`, if any.
    pub fn holder(&self, addr: u64) -> Option<usize> {
        self.locks.get(&addr).and_then(|l| l.holder)
    }

    /// The processor at the head of the wait queue, if any — the one
    /// that will be granted next once the lock is free and visible.
    pub fn head_waiter(&self, addr: u64) -> Option<usize> {
        self.locks.get(&addr).and_then(|l| l.queue.front().copied())
    }

    /// Number of processors queued on the lock at `addr`.
    pub fn queue_len(&self, addr: u64) -> usize {
        self.locks.get(&addr).map_or(0, |l| l.queue.len())
    }
}

/// State of one event variable.
#[derive(Debug, Clone, Copy, Default)]
struct EventState {
    /// Cycle at which the event's set becomes visible, if set.
    set_at: Option<u64>,
}

/// All event variables, keyed by address.
#[derive(Debug, Clone, Default)]
pub struct EventTable {
    events: HashMap<u64, EventState>,
}

impl EventTable {
    /// Creates an empty table.
    pub fn new() -> EventTable {
        EventTable::default()
    }

    /// Marks the event as set, visible at `visible_at`. Setting an
    /// already-set event keeps the earlier visibility time.
    pub fn set(&mut self, addr: u64, visible_at: u64) {
        let e = self.events.entry(addr).or_default();
        e.set_at = Some(e.set_at.map_or(visible_at, |t| t.min(visible_at)));
    }

    /// Whether a waiter can proceed at cycle `now`.
    pub fn is_set(&self, addr: u64, now: u64) -> bool {
        self.events
            .get(&addr)
            .and_then(|e| e.set_at)
            .is_some_and(|t| now >= t)
    }

    /// The visibility time of the set, if the event has been set.
    pub fn set_time(&self, addr: u64) -> Option<u64> {
        self.events.get(&addr).and_then(|e| e.set_at)
    }
}

/// State of one barrier site (reusable across generations).
#[derive(Debug, Clone, Default)]
struct BarrierState {
    /// Generation currently filling.
    generation: u64,
    arrived: usize,
    max_arrive: u64,
    /// generation -> release time, once complete.
    releases: HashMap<u64, u64>,
}

/// All barrier sites, keyed by address.
#[derive(Debug, Clone, Default)]
pub struct BarrierTable {
    barriers: HashMap<u64, BarrierState>,
}

impl BarrierTable {
    /// Creates an empty table.
    pub fn new() -> BarrierTable {
        BarrierTable::default()
    }

    /// Registers an arrival that becomes effective at `arrive_time`
    /// (after the arriving processor's writes have drained — the
    /// release half of the barrier). Returns the generation joined.
    /// When the `participants`-th processor arrives, the generation's
    /// release time is fixed at one cycle past the latest arrival.
    pub fn arrive(&mut self, addr: u64, arrive_time: u64, participants: usize) -> u64 {
        let b = self.barriers.entry(addr).or_default();
        b.arrived += 1;
        b.max_arrive = b.max_arrive.max(arrive_time);
        let generation = b.generation;
        if b.arrived == participants {
            b.releases.insert(generation, b.max_arrive + 1);
            b.generation += 1;
            b.arrived = 0;
            b.max_arrive = 0;
        }
        generation
    }

    /// The release time of `generation` at this barrier, if complete.
    pub fn release_time(&self, addr: u64, generation: u64) -> Option<u64> {
        self.barriers
            .get(&addr)
            .and_then(|b| b.releases.get(&generation))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_uncontended_roundtrip() {
        let mut t = LockTable::new();
        assert!(t.try_acquire(0x40, 0, 10));
        assert_eq!(t.holder(0x40), Some(0));
        t.release(0x40, 0, 60);
        assert_eq!(t.holder(0x40), None);
        // Visible only at 60.
        assert!(!t.try_acquire(0x40, 1, 50));
        assert_eq!(t.wake_time(0x40, 1), Some(60));
        assert!(t.try_grant(0x40, 1, 60));
        assert_eq!(t.holder(0x40), Some(1));
    }

    #[test]
    fn lock_queue_is_fifo() {
        let mut t = LockTable::new();
        assert!(t.try_acquire(0x40, 0, 0));
        assert!(!t.try_acquire(0x40, 1, 1));
        assert!(!t.try_acquire(0x40, 2, 2));
        assert_eq!(t.queue_len(0x40), 2);
        t.release(0x40, 0, 5);
        assert!(!t.try_grant(0x40, 2, 10), "proc 2 is not queue head");
        assert!(t.try_grant(0x40, 1, 10));
        t.release(0x40, 1, 20);
        assert!(t.try_grant(0x40, 2, 20));
    }

    #[test]
    fn queued_acquire_does_not_steal_even_if_free() {
        let mut t = LockTable::new();
        assert!(t.try_acquire(0x40, 0, 0));
        assert!(!t.try_acquire(0x40, 1, 1));
        t.release(0x40, 0, 2);
        // A latecomer must queue behind proc 1.
        assert!(!t.try_acquire(0x40, 2, 10));
        assert!(t.try_grant(0x40, 1, 10));
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn unlock_by_non_holder_panics() {
        let mut t = LockTable::new();
        t.try_acquire(0x40, 0, 0);
        t.release(0x40, 1, 0);
    }

    #[test]
    fn wake_time_unknown_while_held() {
        let mut t = LockTable::new();
        t.try_acquire(0x40, 0, 0);
        t.try_acquire(0x40, 1, 1);
        assert_eq!(t.wake_time(0x40, 1), None);
        t.release(0x40, 0, 30);
        assert_eq!(t.wake_time(0x40, 1), Some(30));
    }

    #[test]
    fn event_visibility() {
        let mut t = EventTable::new();
        assert!(!t.is_set(0x80, 100));
        t.set(0x80, 50);
        assert!(!t.is_set(0x80, 49));
        assert!(t.is_set(0x80, 50));
        // Re-set keeps earliest time.
        t.set(0x80, 70);
        assert_eq!(t.set_time(0x80), Some(50));
    }

    #[test]
    fn barrier_generations() {
        let mut t = BarrierTable::new();
        let g0a = t.arrive(0xc0, 10, 2);
        assert_eq!(t.release_time(0xc0, g0a), None, "only one arrived");
        let g0b = t.arrive(0xc0, 25, 2);
        assert_eq!(g0a, g0b);
        assert_eq!(t.release_time(0xc0, g0a), Some(26));
        // Next generation is independent.
        let g1 = t.arrive(0xc0, 100, 2);
        assert_eq!(g1, g0a + 1);
        assert_eq!(t.release_time(0xc0, g1), None);
        t.arrive(0xc0, 90, 2);
        assert_eq!(t.release_time(0xc0, g1), Some(101));
    }
}
