//! Multiprocessor simulation configuration.

use lookahead_memsys::{CacheConfig, MemoryParams};

/// Configuration of the multiprocessor trace-generation run.
///
/// Defaults reproduce the paper's setup: 16 processors, 64 KB
/// direct-mapped write-back caches with 16-byte lines, 16-entry write
/// buffers, 50-cycle miss penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of processors (16 in the paper).
    pub num_procs: usize,
    /// Per-processor data-cache geometry.
    pub cache: CacheConfig,
    /// Memory latency parameters.
    pub mem: MemoryParams,
    /// Write buffer depth in entries (16 in the paper).
    pub write_buffer_depth: usize,
    /// Shared memory size in bytes; `None` sizes it to the data image
    /// plus this much headroom is not needed because workloads allocate
    /// everything in the image up front.
    pub memory_bytes: Option<u64>,
    /// Hard upper bound on simulated cycles (safety net against
    /// livelock in buggy workloads).
    pub max_cycles: u64,
    /// Maximum misses the memory system services concurrently across
    /// all processors; `None` reproduces the paper's contention-free
    /// assumption (§3.2/§5). Queueing delay flows into the recorded
    /// trace latencies.
    pub memory_bandwidth: Option<usize>,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            num_procs: 16,
            cache: CacheConfig::PAPER,
            mem: MemoryParams::LATENCY_50,
            write_buffer_depth: 16,
            memory_bytes: None,
            max_cycles: 2_000_000_000,
            memory_bandwidth: None,
        }
    }
}

impl SimConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_procs == 0 {
            return Err("num_procs must be at least 1".to_string());
        }
        if self.write_buffer_depth == 0 {
            return Err("write_buffer_depth must be at least 1".to_string());
        }
        if self.memory_bandwidth == Some(0) {
            return Err("memory_bandwidth must be at least 1 (or None)".to_string());
        }
        self.cache.validate().map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SimConfig::default();
        assert_eq!(c.num_procs, 16);
        assert_eq!(c.cache.size_bytes, 64 * 1024);
        assert_eq!(c.cache.line_bytes, 16);
        assert_eq!(c.mem.miss_penalty, 50);
        assert_eq!(c.write_buffer_depth, 16);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        assert!(SimConfig {
            num_procs: 0,
            ..SimConfig::default()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            write_buffer_depth: 0,
            ..SimConfig::default()
        }
        .validate()
        .is_err());
    }
}
