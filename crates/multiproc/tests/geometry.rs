//! Sensitivity of the multiprocessor simulation to memory-system and
//! machine geometry: smaller caches can only miss more, the miss
//! penalty changes timing but not the executed instruction stream,
//! more processors split the work — now including 64-CPU
//! configurations, cheap to generate on the discrete-event engine —
//! and barriers align every participant regardless of processor
//! count.

use lookahead_isa::program::DataImage;
use lookahead_isa::{Assembler, IntReg, SyncKind};
use lookahead_memsys::{CacheConfig, MemoryParams};
use lookahead_multiproc::{SimConfig, SimOutcome, Simulator};
use lookahead_trace::{TraceOp, TraceStats};

/// Each processor sweeps its contiguous block of a shared array twice
/// (block partitioning avoids false sharing within a line).
fn streaming_program(words: i64, num_procs: i64) -> (lookahead_isa::Program, DataImage) {
    let mut image = DataImage::new();
    image.align_to(16);
    let base = image.alloc_words(words as usize);
    let share = words / num_procs;
    let mut a = Assembler::new();
    a.li(IntReg::G0, base as i64);
    // [G2, G3) = my block.
    a.muli(IntReg::G2, IntReg::A0, share);
    a.addi(IntReg::G3, IntReg::G2, share);
    a.for_range(IntReg::S0, 0, 2, |a| {
        a.for_step(IntReg::S1, IntReg::G2, IntReg::G3, 1, |a| {
            a.index_word(IntReg::T0, IntReg::G0, IntReg::S1);
            a.load(IntReg::T1, IntReg::T0, 0);
            a.addi(IntReg::T1, IntReg::T1, 1);
            a.store(IntReg::T1, IntReg::T0, 0);
        });
    });
    a.halt();
    (a.assemble().unwrap(), image)
}

fn run(cache_bytes: u64, miss_penalty: u32) -> SimOutcome {
    let (program, image) = streaming_program(512, 2);
    let config = SimConfig {
        num_procs: 2,
        cache: CacheConfig {
            size_bytes: cache_bytes,
            line_bytes: 16,
            ways: 1,
        },
        mem: MemoryParams::with_miss_penalty(miss_penalty),
        ..SimConfig::default()
    };
    Simulator::new(program, image, config)
        .unwrap()
        .run()
        .unwrap()
}

#[test]
fn smaller_caches_miss_more() {
    let misses = |out: &SimOutcome| -> u64 {
        out.traces
            .iter()
            .map(|t| {
                let s = TraceStats::collect(t, None);
                s.data.read_misses + s.data.write_misses
            })
            .sum()
    };
    let big = run(64 * 1024, 50);
    let small = run(1024, 50);
    let tiny = run(256, 50);
    assert!(
        misses(&small) > misses(&big),
        "1KB cache should miss more than 64KB: {} vs {}",
        misses(&small),
        misses(&big)
    );
    assert!(misses(&tiny) >= misses(&small));
    // The 64KB cache holds the 4KB array: second sweep all hits, so
    // misses are bounded by compulsory + coherence.
    let stats: Vec<_> = big
        .traces
        .iter()
        .map(|t| TraceStats::collect(t, None))
        .collect();
    let total_refs: u64 = stats.iter().map(|s| s.data.reads + s.data.writes).sum();
    assert!(
        misses(&big) * 2 < total_refs,
        "warm cache should mostly hit"
    );
}

#[test]
fn miss_penalty_changes_timing_not_the_stream() {
    let fast = run(1024, 10);
    let slow = run(1024, 100);
    // Identical architectural execution...
    assert_eq!(fast.final_memory, slow.final_memory);
    for (a, b) in fast.traces.iter().zip(&slow.traces) {
        assert_eq!(a.len(), b.len());
        for (ea, eb) in a.iter().zip(b.iter()) {
            assert_eq!(ea.pc, eb.pc);
            match (&ea.op, &eb.op) {
                (TraceOp::Load(x), TraceOp::Load(y)) | (TraceOp::Store(x), TraceOp::Store(y)) => {
                    assert_eq!(x.addr, y.addr);
                    assert_eq!(x.miss, y.miss);
                }
                _ => {}
            }
        }
    }
    // ...but slower wall clock.
    assert!(slow.total_cycles > fast.total_cycles);
}

#[test]
fn more_processors_split_the_work() {
    let cycles = |n: usize| {
        let (p, i) = streaming_program(512, n as i64);
        let config = SimConfig {
            num_procs: n,
            ..SimConfig::default()
        };
        Simulator::new(p, i, config)
            .unwrap()
            .run()
            .unwrap()
            .total_cycles
    };
    let one = cycles(1);
    let four = cycles(4);
    assert!(
        four * 2 < one,
        "4 processors should be at least 2x faster: {four} vs {one}"
    );
}

#[test]
fn sixty_four_processors_keep_scaling() {
    // A larger array so each of the 64 processors still owns a few
    // full lines (4096 words / 64 procs = 64 words = 32 lines each).
    let cycles = |n: usize| {
        let (p, i) = streaming_program(4096, n as i64);
        let config = SimConfig {
            num_procs: n,
            ..SimConfig::default()
        };
        let out = Simulator::new(p, i, config).unwrap().run().unwrap();
        assert_eq!(out.traces.len(), n);
        assert!(
            out.traces.iter().all(|t| !t.is_empty()),
            "every processor does its share"
        );
        out.total_cycles
    };
    let sixteen = cycles(16);
    let sixty_four = cycles(64);
    assert!(
        sixty_four * 2 < sixteen,
        "64 processors should be at least 2x faster than 16: {sixty_four} vs {sixteen}"
    );
}

/// Unequal work before a barrier: processor 0 runs a long loop, the
/// others arrive early and wait. Parameterized over the processor
/// count — the assertions derive everything from `n`, so the test
/// cannot silently bake in one machine size.
fn barrier_aligns(n: usize) {
    let mut image = DataImage::new();
    let bar = image.alloc_words(1);
    let mut a = Assembler::new();
    a.li(IntReg::G0, bar as i64);
    a.if_then(
        lookahead_isa::BranchCond::Eq,
        IntReg::A0,
        IntReg::ZERO,
        |a| {
            a.li(IntReg::T0, 0);
            a.for_range(IntReg::T1, 0, 300, |a| {
                a.addi(IntReg::T0, IntReg::T0, 1);
            });
        },
    );
    a.barrier(IntReg::G0, 0);
    a.halt();
    let program = a.assemble().unwrap();
    let config = SimConfig {
        num_procs: n,
        max_cycles: 50_000_000,
        ..SimConfig::default()
    };
    let out = Simulator::new(program, image, config)
        .unwrap()
        .run()
        .unwrap();

    let barrier_wait = |p: usize| -> u32 {
        out.traces[p]
            .iter()
            .filter_map(|e| e.sync_access())
            .find(|s| s.kind == SyncKind::Barrier)
            .unwrap_or_else(|| panic!("proc {p} of {n} passed the barrier"))
            .wait
    };
    // Every processor but 0 waited for proc 0's loop; proc 0 is the
    // last to arrive and barely waits.
    for p in 1..n {
        assert!(
            barrier_wait(p) > 300,
            "{n} procs: proc {p} should wait out proc 0's loop, waited {}",
            barrier_wait(p)
        );
    }
    assert!(
        barrier_wait(0) < 100,
        "{n} procs: proc 0 arrives last, waited {}",
        barrier_wait(0)
    );
    // The barrier aligns everyone: finish times span less than the
    // skew the loop would otherwise cause.
    let min = out.finish_times.iter().min().unwrap();
    let max = out.finish_times.iter().max().unwrap();
    assert!(
        max - min < 300,
        "{n} procs: finish times {min}..{max} should be aligned"
    );
}

#[test]
fn barrier_aligns_any_processor_count() {
    for n in [4, 16, 64] {
        barrier_aligns(n);
    }
}
