//! Cross-engine equivalence: the discrete-event engine
//! ([`Simulator::run`] / [`Simulator::run_with_sink`]) must produce
//! **byte-identical** results to the cycle-stepped reference engine
//! ([`Simulator::run_reference`] / `run_reference_with_sink`) — same
//! traces, same per-processor breakdowns and finish times, and the
//! same chunk boundaries arriving at the sink in the same order.
//!
//! Two families of inputs:
//!
//! * the five real applications at their small (and one default) sizes
//!   across processor counts, miss latencies, and memory-bandwidth
//!   limits;
//! * randomized synthetic SPMD programs mixing compute bursts, strided
//!   shared-array sweeps, lock-protected counters, producer/consumer
//!   event phases, and barriers, generated from an in-tree XorShift64
//!   so failures reproduce from the printed seed.

use lookahead_isa::program::DataImage;
use lookahead_isa::{AluOp, Assembler, BranchCond, IntReg, Program};
use lookahead_memsys::MemoryParams;
use lookahead_multiproc::{SimConfig, SimOutcome, Simulator};
use lookahead_trace::{TraceChunk, TraceEntry, TraceSink};
use lookahead_workloads::App;

/// A sink that records the exact arrival order and boundaries of every
/// chunk, plus the reassembled per-processor entry streams.
#[derive(Default)]
struct RecordingSink {
    /// `(proc, first_index, len)` per accepted chunk, in arrival order.
    boundaries: Vec<(usize, u64, usize)>,
    /// Reassembled entries per processor.
    entries: Vec<Vec<TraceEntry>>,
}

impl RecordingSink {
    fn new(num_procs: usize) -> RecordingSink {
        RecordingSink {
            boundaries: Vec::new(),
            entries: vec![Vec::new(); num_procs],
        }
    }
}

impl TraceSink for RecordingSink {
    fn accept(&mut self, proc: usize, chunk: &TraceChunk) -> std::io::Result<()> {
        assert_eq!(
            chunk.first_index,
            self.entries[proc].len() as u64,
            "chunks of one processor arrive in trace order"
        );
        self.boundaries.push((proc, chunk.first_index, chunk.len()));
        self.entries[proc].extend(chunk.iter());
        Ok(())
    }
}

/// Runs `program` under both engines and asserts byte identity of
/// traces, chunk boundaries, breakdowns, finish times, and (when the
/// run errors) the error rendering.
fn assert_engines_agree(program: &Program, image: &DataImage, config: &SimConfig, label: &str) {
    let mut ev_sink = RecordingSink::new(config.num_procs);
    let event = Simulator::new(program.clone(), image.clone(), *config)
        .unwrap()
        .run_with_sink(&mut ev_sink);
    let mut rf_sink = RecordingSink::new(config.num_procs);
    let reference = Simulator::new(program.clone(), image.clone(), *config)
        .unwrap()
        .run_reference_with_sink(&mut rf_sink);
    match (&event, &reference) {
        (Ok(ev), Ok(rf)) => {
            assert_outcomes_match(ev, rf, label);
            assert_eq!(
                ev_sink.boundaries, rf_sink.boundaries,
                "{label}: chunk arrival order / boundaries differ"
            );
            assert_eq!(
                ev_sink.entries, rf_sink.entries,
                "{label}: trace bytes differ"
            );
        }
        (Err(ev), Err(rf)) => {
            assert_eq!(ev.to_string(), rf.to_string(), "{label}: errors differ");
        }
        (ev, rf) => panic!(
            "{label}: engines disagree on success: event={ev:?} reference={rf:?}",
            ev = ev.as_ref().map(|_| "ok"),
            rf = rf.as_ref().map(|_| "ok"),
        ),
    }
}

fn assert_outcomes_match(ev: &SimOutcome, rf: &SimOutcome, label: &str) {
    assert_eq!(
        ev.entry_counts, rf.entry_counts,
        "{label}: entry counts differ"
    );
    assert_eq!(ev.breakdowns, rf.breakdowns, "{label}: breakdowns differ");
    assert_eq!(
        ev.finish_times, rf.finish_times,
        "{label}: finish times differ"
    );
    assert_eq!(
        ev.total_cycles, rf.total_cycles,
        "{label}: total cycles differ"
    );
}

fn config(num_procs: usize, miss_penalty: u32, bandwidth: Option<usize>) -> SimConfig {
    SimConfig {
        num_procs,
        mem: MemoryParams {
            miss_penalty,
            ..MemoryParams::LATENCY_50
        },
        memory_bandwidth: bandwidth,
        max_cycles: 200_000_000,
        ..SimConfig::default()
    }
}

// ---------------------------------------------------------------------
// Real applications: apps × sizes × CPU counts × latencies × bandwidth.
// ---------------------------------------------------------------------

#[test]
fn small_apps_match_across_cpu_counts() {
    for app in App::ALL {
        let w = app.small_workload();
        for &n in &[2usize, 4, 16] {
            let built = w.build(n);
            assert_engines_agree(
                &built.program,
                &built.image,
                &config(n, 50, None),
                &format!("{app} small, {n} procs"),
            );
        }
    }
}

#[test]
fn small_apps_match_under_high_latency_and_bandwidth_limit() {
    for app in App::ALL {
        let w = app.small_workload();
        let built = w.build(4);
        assert_engines_agree(
            &built.program,
            &built.image,
            &config(4, 100, None),
            &format!("{app} small, latency 100"),
        );
        assert_engines_agree(
            &built.program,
            &built.image,
            &config(4, 50, Some(2)),
            &format!("{app} small, bandwidth 2"),
        );
    }
}

#[test]
fn default_tier_app_matches_at_paper_geometry() {
    // One default-size application at the paper's 16 processors keeps
    // the suite honest at realistic scale without taking minutes.
    let built = App::Lu.default_workload().build(16);
    assert_engines_agree(
        &built.program,
        &built.image,
        &config(16, 50, None),
        "LU default, 16 procs",
    );
}

#[test]
fn small_app_matches_at_64_cpus() {
    let built = App::Ocean.small_workload().build(64);
    assert_engines_agree(
        &built.program,
        &built.image,
        &config(64, 50, None),
        "OCEAN small, 64 procs",
    );
}

// ---------------------------------------------------------------------
// Randomized synthetic sync mixes.
// ---------------------------------------------------------------------

/// In-tree deterministic generator (same xorshift64 idiom as PR 1).
struct XorShift64(u64);

impl XorShift64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A random SPMD program over shared locks/events/barriers and a
/// shared array. Every phase is one of:
///
/// * a compute burst (ALU chain);
/// * a strided sweep over the shared array (loads + stores → cache
///   misses, write-buffer pressure, coherence traffic);
/// * a lock-protected increment of a shared counter (contention,
///   waits);
/// * a producer/consumer event phase: processor 0 publishes then sets
///   a fresh event slot, everyone else waits on it;
/// * a barrier.
///
/// The program ends with a barrier so every generated phase is
/// exercised by all processors.
fn random_program(rng: &mut XorShift64) -> (Program, DataImage) {
    let mut image = DataImage::new();
    let lock_a = image.alloc_words(1);
    let lock_b = image.alloc_words(1);
    let bar = image.alloc_words(1);
    // One fresh event word per possible event phase (events are
    // one-shot; reuse would make later waits fall through instantly,
    // which is legal but less interesting).
    let n_event_slots = 8usize;
    let events = image.alloc_words(n_event_slots);
    image.align_to(16);
    let counter = image.alloc_words(1);
    image.align_to(16);
    let array_len = 64usize;
    let array = image.alloc_words(array_len);

    let mut a = Assembler::new();
    a.li(IntReg::G0, lock_a as i64);
    a.li(IntReg::G1, counter as i64);
    a.li(IntReg::G2, array as i64);
    a.li(IntReg::G3, bar as i64);

    let phases = 3 + rng.below(6);
    let mut used_events = 0usize;
    for _ in 0..phases {
        match rng.below(5) {
            0 => {
                // Compute burst.
                let len = 1 + rng.below(12) as i64;
                a.li(IntReg::T0, 0);
                a.for_range(IntReg::T1, 0, len, |a| {
                    a.addi(IntReg::T0, IntReg::T0, 1);
                });
            }
            1 => {
                // Strided sweep: each processor reads/writes slots
                // id, id+stride, ... over the shared array.
                let stride = 1 + rng.below(4) as i64;
                let iters = (array_len as i64) / stride.max(1) / 2;
                a.li(IntReg::T3, 0); // running index accumulator
                a.add(IntReg::T3, IntReg::A0, IntReg::ZERO);
                a.for_range(IntReg::S1, 0, iters.max(1), |a| {
                    // index = (T3 mod array_len), then T3 += stride
                    a.alu_imm(AluOp::Rem, IntReg::T4, IntReg::T3, array_len as i64);
                    a.index_word(IntReg::T5, IntReg::G2, IntReg::T4);
                    a.load(IntReg::T6, IntReg::T5, 0);
                    a.addi(IntReg::T6, IntReg::T6, 1);
                    a.store(IntReg::T6, IntReg::T5, 0);
                    a.addi(IntReg::T3, IntReg::T3, stride);
                });
            }
            2 => {
                // Lock-protected shared counter (alternate two locks).
                let lock = if rng.below(2) == 0 { lock_a } else { lock_b };
                a.li(IntReg::T7, lock as i64);
                a.lock(IntReg::T7, 0);
                a.load(IntReg::T0, IntReg::G1, 0);
                a.addi(IntReg::T0, IntReg::T0, 1);
                a.store(IntReg::T0, IntReg::G1, 0);
                a.unlock(IntReg::T7, 0);
            }
            3 if used_events < n_event_slots => {
                // Producer/consumer: proc 0 publishes and sets a fresh
                // event; everyone else waits on it.
                let ev = events + (used_events as u64) * 8;
                used_events += 1;
                a.li(IntReg::S2, ev as i64);
                a.if_then_else(
                    BranchCond::Eq,
                    IntReg::A0,
                    IntReg::ZERO,
                    |a| {
                        a.li(IntReg::T0, 7);
                        a.store(IntReg::T0, IntReg::G1, 0);
                        a.set_event(IntReg::S2, 0);
                    },
                    |a| {
                        a.wait_event(IntReg::S2, 0);
                        a.load(IntReg::T0, IntReg::G1, 0);
                    },
                );
            }
            _ => {
                a.barrier(IntReg::G3, 0);
            }
        }
    }
    a.barrier(IntReg::G3, 0);
    a.halt();
    (a.assemble().unwrap(), image)
}

#[test]
fn randomized_sync_mixes_match() {
    for seed in 1u64..=24 {
        let mut rng = XorShift64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let num_procs = [1usize, 2, 3, 4, 8, 16, 64][rng.below(7) as usize];
        let miss_penalty = [50u32, 100][rng.below(2) as usize];
        let bandwidth = [None, Some(2usize)][rng.below(2) as usize];
        let (program, image) = random_program(&mut rng);
        assert_engines_agree(
            &program,
            &image,
            &config(num_procs, miss_penalty, bandwidth),
            &format!("seed {seed}: {num_procs} procs, penalty {miss_penalty}, bw {bandwidth:?}"),
        );
    }
}

#[test]
fn deadlock_and_cycle_limit_render_identically() {
    // Double-acquire deadlock.
    let mut image = DataImage::new();
    let lock = image.alloc_words(1);
    let mut a = Assembler::new();
    a.li(IntReg::G0, lock as i64);
    a.lock(IntReg::G0, 0);
    a.lock(IntReg::G0, 0);
    a.halt();
    let program = a.assemble().unwrap();
    assert_engines_agree(&program, &image, &config(2, 50, None), "double lock");

    // Infinite loop under a tight cycle budget.
    let mut a = Assembler::new();
    let top = a.label();
    a.bind(top).unwrap();
    a.li(IntReg::T0, 1);
    a.jump(top);
    let program = a.assemble().unwrap();
    let mut cfg = config(2, 50, None);
    cfg.max_cycles = 500;
    assert_engines_agree(&program, &DataImage::new(), &cfg, "cycle limit");
}

#[test]
fn collected_run_matches_reference_traces_too() {
    // `run()` (CollectSink) and `run_reference()` agree on the full
    // `SimOutcome`, including materialized traces and final memory.
    let built = App::Mp3d.small_workload().build(4);
    let cfg = config(4, 50, None);
    let ev = Simulator::new(built.program.clone(), built.image.clone(), cfg)
        .unwrap()
        .run()
        .unwrap();
    let rf = Simulator::new(built.program, built.image, cfg)
        .unwrap()
        .run_reference()
        .unwrap();
    assert_eq!(ev.traces, rf.traces);
    assert_outcomes_match(&ev, &rf, "MP3D collected");
    (built.verify)(&ev.final_memory).expect("event engine result verifies");
    (built.verify)(&rf.final_memory).expect("reference engine result verifies");
}
