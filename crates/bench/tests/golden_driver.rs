//! Golden equivalence tests for the unified `lookahead` driver.
//!
//! The driver, the per-report wrapper binaries, the trace cache and
//! the parallel re-timing pool must all be *presentation-invariant*:
//! cold vs. warm cache, serial vs. parallel, driver vs. standalone
//! binary — the bytes on stdout are identical in every combination.
//! These tests run the real binaries (via `CARGO_BIN_EXE_*`) at the
//! small size tier on a reduced app set so they stay fast.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Environment a test run starts from: every harness knob cleared, so
/// the ambient shell can't leak configuration into the goldens.
const KNOBS: [&str; 7] = [
    "LOOKAHEAD_SMALL",
    "LOOKAHEAD_PAPER",
    "LOOKAHEAD_PROCS",
    "LOOKAHEAD_APPS",
    "LOOKAHEAD_CACHE",
    "LOOKAHEAD_JOBS",
    "LOOKAHEAD_OBS_OUT",
];

/// The fast configuration shared by every test: small tier, four
/// processors, two applications.
const FAST: [(&str, &str); 3] = [
    ("LOOKAHEAD_SMALL", "1"),
    ("LOOKAHEAD_PROCS", "4"),
    ("LOOKAHEAD_APPS", "LU,MP3D"),
];

fn run(bin: &str, args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(bin);
    cmd.args(args);
    for knob in KNOBS {
        cmd.env_remove(knob);
    }
    cmd.envs(FAST.iter().copied());
    cmd.envs(envs.iter().copied());
    cmd.output().expect("binary runs")
}

fn stdout_of(out: &Output) -> &str {
    assert!(
        out.status.success(),
        "exit {:?}, stderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    std::str::from_utf8(&out.stdout).expect("stdout is utf-8")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lktr-golden-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_cache_reproduces_cold_output_and_reports_hits() {
    let driver = env!("CARGO_BIN_EXE_lookahead");
    let cache = temp_dir("warm");
    let cache_arg = format!("--cache-dir={}", cache.display());

    let cold = run(driver, &["summary", &cache_arg], &[]);
    let warm = run(driver, &["summary", &cache_arg], &[]);

    assert_eq!(
        stdout_of(&cold),
        stdout_of(&warm),
        "a cache hit must not change a single output byte"
    );

    let cold_err = String::from_utf8_lossy(&cold.stderr);
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        cold_err.contains("trace cache: 0 hits, 2 misses"),
        "cold run should miss twice (one per app): {cold_err}"
    );
    assert!(
        warm_err.contains("trace cache: 2 hits, 0 misses"),
        "warm run must serve both apps from cache: {warm_err}"
    );
}

#[test]
fn parallel_retiming_is_byte_identical_to_serial() {
    let driver = env!("CARGO_BIN_EXE_lookahead");
    let cache = temp_dir("jobs");
    let cache_arg = format!("--cache-dir={}", cache.display());

    let serial = run(driver, &["figure3", "summary", &cache_arg, "--jobs=1"], &[]);
    let parallel = run(driver, &["figure3", "summary", &cache_arg, "--jobs=8"], &[]);

    assert_eq!(
        stdout_of(&serial),
        stdout_of(&parallel),
        "the worker pool must preserve submission order exactly"
    );
}

#[test]
fn driver_matches_the_standalone_binaries() {
    let driver = env!("CARGO_BIN_EXE_lookahead");
    let summary_bin = env!("CARGO_BIN_EXE_summary");
    let figure3_bin = env!("CARGO_BIN_EXE_figure3");
    let cache = temp_dir("equiv");
    let cache_env = cache.display().to_string();
    let cache_arg = format!("--cache-dir={}", cache.display());

    // The wrappers take their cache from the environment knob; the
    // driver from its flag. Sharing one directory also proves the
    // cache file written by one binary is readable by another.
    let combined = run(driver, &["summary", "figure3", &cache_arg], &[]);
    let summary = run(summary_bin, &[], &[("LOOKAHEAD_CACHE", cache_env.as_str())]);
    let figure3 = run(figure3_bin, &[], &[("LOOKAHEAD_CACHE", cache_env.as_str())]);

    let expected = format!("{}{}", stdout_of(&summary), stdout_of(&figure3));
    assert_eq!(
        stdout_of(&combined),
        expected,
        "driver output must be the exact concatenation of the wrappers'"
    );
}

#[test]
fn cache_can_be_disabled() {
    let driver = env!("CARGO_BIN_EXE_lookahead");
    let cache = temp_dir("disabled");
    let cache_env = cache.display().to_string();

    let out = run(
        driver,
        &["summary", "--no-cache"],
        &[("LOOKAHEAD_CACHE", cache_env.as_str())],
    );
    let _ = stdout_of(&out);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("trace cache:"),
        "--no-cache must win over LOOKAHEAD_CACHE: {stderr}"
    );
    assert!(!cache.exists(), "no cache directory may be created");
}

#[test]
fn unparsable_procs_knob_fails_fast() {
    let driver = env!("CARGO_BIN_EXE_lookahead");
    let out = run(driver, &["summary"], &[("LOOKAHEAD_PROCS", "abc")]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("LOOKAHEAD_PROCS"),
        "the error must name the knob: {stderr}"
    );
}

#[test]
fn unknown_app_in_apps_knob_fails_fast() {
    let driver = env!("CARGO_BIN_EXE_lookahead");
    let out = run(driver, &["summary"], &[("LOOKAHEAD_APPS", "LU,FFT")]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("LOOKAHEAD_APPS") && stderr.contains("FFT"),
        "the error must name the knob and the bad app: {stderr}"
    );
}

#[test]
fn unknown_report_name_fails_with_usage() {
    let driver = env!("CARGO_BIN_EXE_lookahead");
    let out = run(driver, &["figure99"], &[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("figure99") && stderr.contains("usage"));
}
