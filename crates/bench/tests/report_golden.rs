//! Byte-level golden pin of the small-tier figure3 + figure4 + summary
//! output — the guard the event-driven re-timing engine is held to:
//! any cycle-accounting drift (a skipped span charged to the wrong
//! class, an off-by-one in the jump target) changes these bytes.
//!
//! `golden_small_tier.txt` was captured from the cycle-by-cycle
//! engine before cycle skipping was introduced, exactly as the driver
//! prints it:
//!
//! ```text
//! LOOKAHEAD_SMALL=1 lookahead figure3 figure4 summary --no-cache
//! ```
//!
//! Regenerate with that command (stdout only) if a deliberate
//! modeling change shifts the numbers.

use lookahead_bench::{reports, Runner, SizeTier};
use lookahead_multiproc::SimConfig;

#[test]
fn small_tier_reports_match_golden_bytes() {
    let workers = 2;
    let runner = Runner::new(SimConfig::default(), SizeTier::Small, None, workers);
    let runs = runner.run_all();
    let actual = format!(
        "{}{}{}",
        reports::figure3_report(&runs, workers),
        reports::figure4_report(&runs, workers),
        reports::summary_report(&runs, workers),
    );
    let golden = include_str!("golden_small_tier.txt");
    assert_eq!(
        actual, golden,
        "small-tier report bytes drifted from the pre-skip baseline"
    );
}
