//! DAG-vs-flat equivalence gate: the merged critical-path sweep must
//! reproduce the flat report functions byte for byte, on a cold cache
//! and on a warm one (where every generation node collapses).
//!
//! This is the in-process twin of the CI `dag-smoke` job's
//! `cmp dag.out flat.out` check: if the DAG scheduler ever reorders a
//! mutation it shouldn't, shares a cell it mustn't, or renders a
//! report from the wrong result slot, these assertions catch it
//! before the driver golden does.

use lookahead_bench::{reports, Runner, SizeTier};
use lookahead_harness::cache::TraceCache;
use lookahead_multiproc::SimConfig;

fn flat_texts(runner: &Runner, workers: usize) -> Vec<(String, String)> {
    let runs = runner.run_all();
    vec![
        (
            "figure3".to_string(),
            reports::figure3_report(&runs, workers),
        ),
        (
            "figure4".to_string(),
            reports::figure4_report(&runs, workers),
        ),
        (
            "summary".to_string(),
            reports::summary_report(&runs, workers),
        ),
    ]
}

#[test]
fn dag_sweep_matches_flat_reports_cold() {
    let workers = 4;
    let flat = flat_texts(
        &Runner::new(SimConfig::default(), SizeTier::Small, None, workers),
        workers,
    );
    let dag_runner = Runner::new(SimConfig::default(), SizeTier::Small, None, workers);
    let sweep = reports::dag_sweep(&dag_runner, reports::DAG_REPORTS, workers);
    assert_eq!(sweep.runs.len(), dag_runner.apps().len());
    assert_eq!(
        sweep.stats.collapsed, 0,
        "cold sweep has nothing to collapse"
    );
    assert_eq!(flat, sweep.texts);
}

#[test]
fn dag_sweep_matches_flat_reports_warm_and_collapses_generation() {
    let workers = 4;
    let dir = std::env::temp_dir().join(format!("dag-equiv-{}", std::process::id()));
    let cache = || Some(TraceCache::new(dir.to_string_lossy().into_owned()));

    // Warm the cache, then sweep again: every generation node must be
    // collapsed (near-zero cost estimate) and the bytes unchanged.
    let warmup = Runner::new(SimConfig::default(), SizeTier::Small, cache(), workers);
    let cold = reports::dag_sweep(&warmup, reports::DAG_REPORTS, workers);
    let warm_runner = Runner::new(SimConfig::default(), SizeTier::Small, cache(), workers);
    let warm = reports::dag_sweep(&warm_runner, reports::DAG_REPORTS, workers);
    assert_eq!(
        warm.stats.collapsed,
        warm_runner.apps().len(),
        "every generation node should collapse on a warm cache"
    );
    assert!(warm.stats.critical_path < cold.stats.critical_path);
    assert_eq!(cold.texts, warm.texts);

    let flat = flat_texts(
        &Runner::new(SimConfig::default(), SizeTier::Small, None, workers),
        workers,
    );
    assert_eq!(flat, warm.texts);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dag_sweep_serial_matches_parallel() {
    let serial = reports::dag_sweep(
        &Runner::new(SimConfig::default(), SizeTier::Small, None, 1),
        reports::DAG_REPORTS,
        1,
    );
    let parallel = reports::dag_sweep(
        &Runner::new(SimConfig::default(), SizeTier::Small, None, 8),
        reports::DAG_REPORTS,
        8,
    );
    assert_eq!(serial.texts, parallel.texts);
    assert_eq!(serial.cells, parallel.cells);
}

#[test]
fn dag_sweep_subset_respects_request_order() {
    let runner = Runner::new(SimConfig::default(), SizeTier::Small, None, 2);
    let sweep = reports::dag_sweep(&runner, &["summary", "figure3"], 2);
    let names: Vec<&str> = sweep.texts.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, ["summary", "figure3"]);
}
