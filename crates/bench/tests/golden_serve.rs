//! Golden end-to-end tests for `lookahead serve` / `lookahead query`:
//! the real binary, a real socket, and the byte-identity contract
//! between the HTTP response body and the CLI query body.
//!
//! Runs at the small tier on a reduced app set (like the driver
//! goldens) so a cold query costs well under a second.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const KNOBS: [&str; 9] = [
    "LOOKAHEAD_SMALL",
    "LOOKAHEAD_PAPER",
    "LOOKAHEAD_PROCS",
    "LOOKAHEAD_APPS",
    "LOOKAHEAD_CACHE",
    "LOOKAHEAD_JOBS",
    "LOOKAHEAD_OBS_OUT",
    "LOOKAHEAD_SERVE_ADDR",
    "LOOKAHEAD_SERVE_THREADS",
];

const FAST: [(&str, &str); 3] = [
    ("LOOKAHEAD_SMALL", "1"),
    ("LOOKAHEAD_PROCS", "4"),
    ("LOOKAHEAD_APPS", "LU,MP3D"),
];

fn lookahead_cmd(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lookahead"));
    cmd.args(args);
    for knob in KNOBS {
        cmd.env_remove(knob);
    }
    cmd.envs(FAST.iter().copied());
    cmd
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lktr-serve-golden-{}-{tag}", std::process::id()))
}

/// A `lookahead serve` child on an OS-picked port, killed on drop.
struct ServeProc {
    child: Option<Child>,
    addr: String,
}

impl ServeProc {
    fn start(tag: &str) -> ServeProc {
        let addr_file = temp_path(tag);
        let _ = std::fs::remove_file(&addr_file);
        let child = lookahead_cmd(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--no-cache",
            "--threads",
            "2",
            "--jobs",
            "2",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");

        // The server writes the bound address once the listener is up.
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&addr_file) {
                if !s.is_empty() {
                    break s;
                }
            }
            assert!(
                Instant::now() < deadline,
                "server never wrote {addr_file:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        };
        let _ = std::fs::remove_file(&addr_file);
        ServeProc {
            child: Some(child),
            addr,
        }
    }

    fn get(&self, target: &str) -> (u16, String) {
        let mut conn = TcpStream::connect(&self.addr).expect("connect");
        write!(
            conn,
            "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut text = String::new();
        conn.read_to_string(&mut text).unwrap();
        let status = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    /// SIGINT, then assert the graceful drain exits 0.
    fn interrupt_and_wait(mut self) {
        let child = self.child.take().expect("child present");
        let pid = child.id().to_string();
        let status = Command::new("kill")
            .args(["-INT", &pid])
            .status()
            .expect("kill runs");
        assert!(status.success(), "kill -INT failed");
        let out = child.wait_with_output().expect("serve exits");
        assert!(
            out.status.success(),
            "serve must exit 0 after SIGINT, got {:?}; stderr:\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("drained"), "no drain line in: {stderr}");
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

const QUERY: &str = "/v1/experiments?app=lu&model=ds&window=64&consistency=rc";

#[test]
fn http_body_equals_cli_query_body_and_sigint_drains() {
    let server = ServeProc::start("golden");

    let (status, _) = server.get("/healthz");
    assert_eq!(status, 200);

    // Cold then warm: identical bytes.
    let (s1, cold) = server.get(QUERY);
    let (s2, warm) = server.get(QUERY);
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(cold, warm, "cold and warm bodies must be identical");

    // The CLI query path prints the same bytes (no trailing newline).
    let out = lookahead_cmd(&["query", QUERY, "--no-cache"])
        .output()
        .expect("query runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        cold,
        "HTTP body and `lookahead query` stdout must be identical bytes"
    );

    // The coalescing/caching accounting is visible in /metrics.json,
    // and /metrics serves the same snapshot as valid Prometheus text.
    let (status, metrics) = server.get("/metrics.json");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("\"serve.runs.generations\":1"),
        "one simulation for cold+warm: {metrics}"
    );
    let (status, prom) = server.get("/metrics");
    assert_eq!(status, 200);
    lookahead_obs::prom::check_exposition(&prom).expect("valid Prometheus exposition");
    assert!(
        prom.contains("serve_runs_generations_total 1"),
        "the same counter in Prometheus form: {prom}"
    );

    server.interrupt_and_wait();
}

#[test]
fn malformed_serve_knobs_exit_2() {
    for args in [
        ["serve", "--addr", "not-an-addr"].as_slice(),
        ["serve", "--threads", "0"].as_slice(),
        ["serve", "--jobs", "zero"].as_slice(),
    ] {
        let out = lookahead_cmd(args).output().expect("runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("error"), "{args:?}: {stderr}");
    }

    // The same fail-fast convention for the environment knobs.
    for (knob, value) in [
        ("LOOKAHEAD_SERVE_ADDR", "localhost:banana"),
        ("LOOKAHEAD_SERVE_THREADS", "-3"),
    ] {
        let out = lookahead_cmd(&["serve"])
            .env(knob, value)
            .output()
            .expect("runs");
        assert_eq!(out.status.code(), Some(2), "{knob}={value}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(knob), "error must name {knob}: {stderr}");
    }
}

#[test]
fn query_rejects_bad_targets_but_still_prints_the_error_body() {
    let out = lookahead_cmd(&["query", "/v1/experiments?app=doom", "--no-cache"])
        .output()
        .expect("query runs");
    assert!(!out.status.success());
    let body = String::from_utf8(out.stdout).unwrap();
    assert!(body.contains("unknown app"), "{body}");

    let out = lookahead_cmd(&["query"]).output().expect("query runs");
    assert_eq!(out.status.code(), Some(2), "missing target is usage error");
}
