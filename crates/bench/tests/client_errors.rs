//! Regression tests for the typed HTTP client against sockets that
//! behave like a server draining for shutdown.
//!
//! Before the typed client, a drained connection surfaced as either a
//! raw `Broken pipe (os error 32)` or a nonsense `status 0` report;
//! both are pinned here to the single [`ClientError::Disconnected`]
//! case with its "draining?" message.

use lookahead_bench::client::{get, ClientError};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};

/// Reads until the request's terminating blank line (so closing the
/// socket later cannot RST unread request bytes away along with our
/// response).
fn read_request(conn: &mut TcpStream) {
    let mut buf = Vec::new();
    let mut tmp = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        match conn.read(&mut tmp) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
        }
    }
}

/// Sends `response`, half-closes, and waits for the client to hang up
/// — a graceful FIN, never a RST, so the client reliably sees the
/// bytes.
fn respond_and_close(mut conn: TcpStream, response: &[u8]) {
    conn.write_all(response).unwrap();
    conn.shutdown(Shutdown::Write).unwrap();
    let mut drain = [0u8; 64];
    while matches!(conn.read(&mut drain), Ok(n) if n > 0) {}
}

/// A server that accepts and immediately drops every connection — the
/// observable behaviour of a listener whose worker pool has drained.
#[test]
fn accept_and_drop_reports_disconnected_not_a_panic() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        for _ in 0..2 {
            let conn = listener.accept().expect("accept").0;
            drop(conn);
        }
    });

    for attempt in 0..2 {
        match get(addr, "/v1/summary") {
            Err(ClientError::Disconnected) => {}
            other => panic!("attempt {attempt}: expected Disconnected, got {other:?}"),
        }
    }
    server.join().expect("server thread");

    let msg = ClientError::Disconnected.to_string();
    assert!(
        msg.contains("draining"),
        "the error should hint at the likely cause: {msg}"
    );
}

/// A server that reads the request and closes mid-response (after the
/// status line would have gone out, but without one) is the same
/// typed error, not a malformed-parse or a zero status.
#[test]
fn close_after_read_reports_disconnected() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let mut conn = listener.accept().expect("accept").0;
        // Consume the request, answer nothing.
        let mut buf = [0u8; 1024];
        let _ = conn.read(&mut buf);
        drop(conn);
    });

    match get(addr, "/healthz") {
        Err(ClientError::Disconnected) => {}
        other => panic!("expected Disconnected, got {other:?}"),
    }
    server.join().expect("server thread");
}

/// Garbage bytes that are not HTTP parse to `Malformed`, carrying the
/// offending line for the error report.
#[test]
fn non_http_bytes_report_malformed() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let mut conn = listener.accept().expect("accept").0;
        read_request(&mut conn);
        respond_and_close(conn, b"not http at all\n");
    });

    match get(addr, "/healthz") {
        Err(ClientError::Malformed(line)) => assert!(line.contains("not http"), "{line}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
    server.join().expect("server thread");
}

/// A healthy response still round-trips: status and body parse out.
#[test]
fn well_formed_response_parses() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let mut conn = listener.accept().expect("accept").0;
        read_request(&mut conn);
        respond_and_close(conn, b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok");
    });

    let (status, body) = get(addr, "/healthz").expect("healthy response");
    assert_eq!(status, 200);
    assert_eq!(body, "ok");
    server.join().expect("server thread");
}
