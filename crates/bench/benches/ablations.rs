//! Ablation benchmarks for the design decisions called out in
//! `DESIGN.md` §4: they measure the *simulated* consequences (cycle
//! counts) of each mechanism by toggling it, using a plain timing
//! harness as runner/reporter. Each benchmark body also asserts the
//! directional effect, so `cargo bench` doubles as a coarse sanity
//! check of the mechanisms.

use lookahead_core::btb::BtbConfig;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::model::ProcessorModel;
use lookahead_harness::pipeline::AppRun;
use lookahead_multiproc::SimConfig;
use lookahead_workloads::pthor::Pthor;
use lookahead_workloads::App;
use std::time::Instant;

const SAMPLES: u32 = 10;

fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..SAMPLES {
        std::hint::black_box(f());
    }
    println!("{name:40} {:>12.2?}/iter", start.elapsed() / SAMPLES);
}

fn config() -> SimConfig {
    SimConfig {
        num_procs: 8,
        ..SimConfig::default()
    }
}

/// MSHR capacity: unlimited vs 4 vs 1 outstanding misses.
fn ablate_mshrs() {
    let run = AppRun::generate(App::Ocean.small_workload().as_ref(), &config()).unwrap();
    let cycles = |limit: Option<usize>| {
        Ds::new(DsConfig {
            mshr_limit: limit,
            ..DsConfig::rc().window(64)
        })
        .run(&run.program, run.trace())
        .cycles()
    };
    assert!(
        cycles(Some(1)) >= cycles(Some(4)) && cycles(Some(4)) >= cycles(None),
        "fewer MSHRs can never help"
    );
    for (name, limit) in [("unbounded", None), ("four", Some(4)), ("one", Some(1))] {
        bench(&format!("ablation_mshrs/{name}"), || cycles(limit));
    }
}

/// Store buffer depth: the paper's 16 vs shallow buffers.
fn ablate_store_buffer() {
    let run = AppRun::generate(App::Ocean.small_workload().as_ref(), &config()).unwrap();
    let cycles = |depth: usize| {
        Ds::new(DsConfig {
            store_buffer_depth: depth,
            ..DsConfig::rc().window(64)
        })
        .run(&run.program, run.trace())
        .cycles()
    };
    assert!(
        cycles(1) >= cycles(16),
        "deeper store buffer can never hurt"
    );
    for depth in [1usize, 4, 16] {
        bench(&format!("ablation_store_buffer/depth_{depth}"), || {
            cycles(depth)
        });
    }
}

/// BTB organization on the branchy application: the paper's 2048x4
/// vs a tiny direct-mapped buffer vs perfect prediction.
fn ablate_btb() {
    let run = AppRun::generate(&Pthor::small(), &config()).unwrap();
    let with_btb = |btb: BtbConfig| {
        Ds::new(DsConfig {
            btb,
            ..DsConfig::rc().window(64)
        })
        .run(&run.program, run.trace())
    };
    let paper = with_btb(BtbConfig::PAPER);
    let tiny = with_btb(BtbConfig {
        entries: 16,
        ways: 1,
    });
    let perfect = Ds::new(DsConfig {
        perfect_branch_prediction: true,
        ..DsConfig::rc().window(64)
    })
    .run(&run.program, run.trace());
    assert!(tiny.stats.mispredictions >= paper.stats.mispredictions);
    assert!(perfect.cycles() <= paper.cycles());
    bench("ablation_btb/paper_2048x4", || with_btb(BtbConfig::PAPER));
    bench("ablation_btb/tiny_16x1", || {
        with_btb(BtbConfig {
            entries: 16,
            ways: 1,
        })
    });
}

fn main() {
    ablate_mshrs();
    ablate_store_buffer();
    ablate_btb();
}
