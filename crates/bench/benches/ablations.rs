//! Ablation benchmarks for the design decisions called out in
//! `DESIGN.md` §4: they measure the *simulated* consequences (cycle
//! counts) of each mechanism by toggling it, using Criterion only as a
//! convenient runner/reporter. Each benchmark body also asserts the
//! directional effect, so `cargo bench` doubles as a coarse sanity
//! check of the mechanisms.

use criterion::{criterion_group, criterion_main, Criterion};
use lookahead_core::btb::BtbConfig;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::model::ProcessorModel;
use lookahead_harness::pipeline::AppRun;
use lookahead_multiproc::SimConfig;
use lookahead_workloads::pthor::Pthor;
use lookahead_workloads::App;

fn config() -> SimConfig {
    SimConfig {
        num_procs: 8,
        ..SimConfig::default()
    }
}

/// MSHR capacity: unlimited vs 4 vs 1 outstanding misses.
fn ablate_mshrs(c: &mut Criterion) {
    let run = AppRun::generate(App::Ocean.small_workload().as_ref(), &config()).unwrap();
    let cycles = |limit: Option<usize>| {
        Ds::new(DsConfig {
            mshr_limit: limit,
            ..DsConfig::rc().window(64)
        })
        .run(&run.program, &run.trace)
        .cycles()
    };
    assert!(
        cycles(Some(1)) >= cycles(Some(4)) && cycles(Some(4)) >= cycles(None),
        "fewer MSHRs can never help"
    );
    let mut group = c.benchmark_group("ablation_mshrs");
    for (name, limit) in [("unbounded", None), ("four", Some(4)), ("one", Some(1))] {
        group.bench_function(name, |b| b.iter(|| cycles(limit)));
    }
    group.finish();
}

/// Store buffer depth: the paper's 16 vs shallow buffers.
fn ablate_store_buffer(c: &mut Criterion) {
    let run = AppRun::generate(App::Ocean.small_workload().as_ref(), &config()).unwrap();
    let cycles = |depth: usize| {
        Ds::new(DsConfig {
            store_buffer_depth: depth,
            ..DsConfig::rc().window(64)
        })
        .run(&run.program, &run.trace)
        .cycles()
    };
    assert!(cycles(1) >= cycles(16), "deeper store buffer can never hurt");
    let mut group = c.benchmark_group("ablation_store_buffer");
    for depth in [1usize, 4, 16] {
        group.bench_function(format!("depth_{depth}"), |b| b.iter(|| cycles(depth)));
    }
    group.finish();
}

/// BTB organization on the branchy application: the paper's 2048x4
/// vs a tiny direct-mapped buffer vs perfect prediction.
fn ablate_btb(c: &mut Criterion) {
    let run = AppRun::generate(&Pthor::small(), &config()).unwrap();
    let with_btb = |btb: BtbConfig| {
        Ds::new(DsConfig {
            btb,
            ..DsConfig::rc().window(64)
        })
        .run(&run.program, &run.trace)
    };
    let paper = with_btb(BtbConfig::PAPER);
    let tiny = with_btb(BtbConfig {
        entries: 16,
        ways: 1,
    });
    let perfect = Ds::new(DsConfig {
        perfect_branch_prediction: true,
        ..DsConfig::rc().window(64)
    })
    .run(&run.program, &run.trace);
    assert!(tiny.stats.mispredictions >= paper.stats.mispredictions);
    assert!(perfect.cycles() <= paper.cycles());
    let mut group = c.benchmark_group("ablation_btb");
    group.bench_function("paper_2048x4", |b| b.iter(|| with_btb(BtbConfig::PAPER)));
    group.bench_function("tiny_16x1", |b| {
        b.iter(|| {
            with_btb(BtbConfig {
                entries: 16,
                ways: 1,
            })
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablate_mshrs, ablate_store_buffer, ablate_btb
}
criterion_main!(benches);
