//! Benchmarks of the simulator components themselves: how fast the
//! multiprocessor simulator generates traces and how fast each
//! processor model re-times them. These guard against performance
//! regressions in the simulation loops (the figure binaries re-time
//! dozens of configurations, so model throughput matters).
//!
//! Uses a plain `std::time::Instant` harness (no external benchmark
//! crate) so the workspace builds offline: each case runs a warmup
//! pass, then a fixed number of timed iterations, and reports the
//! per-iteration mean plus throughput in simulated trace entries per
//! second.

use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::ProcessorModel;
use lookahead_core::ConsistencyModel;
use lookahead_harness::pipeline::AppRun;
use lookahead_multiproc::{SimConfig, Simulator};
use lookahead_workloads::lu::Lu;
use lookahead_workloads::ocean::Ocean;
use lookahead_workloads::Workload;
use std::time::Instant;

const SAMPLES: u32 = 10;

/// Times `f` over `SAMPLES` iterations (after one warmup) and prints
/// mean time per iteration and entries/sec for `elements` per call.
fn bench<T>(name: &str, elements: u64, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..SAMPLES {
        std::hint::black_box(f());
    }
    let mean = start.elapsed() / SAMPLES;
    let per_sec = if mean.as_nanos() > 0 {
        elements as f64 / mean.as_secs_f64()
    } else {
        f64::INFINITY
    };
    println!("{name:32} {mean:>12.2?}/iter  {per_sec:>14.0} elem/s");
}

fn config() -> SimConfig {
    SimConfig {
        num_procs: 8,
        ..SimConfig::default()
    }
}

/// Trace generation throughput: full multiprocessor simulation of a
/// small LU, measured in simulated instructions per second.
fn bench_multiproc() {
    let workload = Lu { n: 24 };
    // One calibration run to size the throughput denominator.
    let built = workload.build(8);
    let out = Simulator::new(built.program, built.image, config())
        .unwrap()
        .run()
        .unwrap();
    let total: usize = out.traces.iter().map(|t| t.len()).sum();
    bench("multiproc/lu24_8procs", total as u64, || {
        let built = workload.build(8);
        Simulator::new(built.program, built.image, config())
            .unwrap()
            .run()
            .unwrap()
    });
}

/// Processor-model re-timing throughput on one shared trace.
fn bench_models() {
    let run = AppRun::generate(
        &Ocean {
            n: 18,
            grids: 2,
            steps: 1,
        },
        &config(),
    )
    .unwrap();
    let n = run.trace_len() as u64;

    bench("models/base", n, || Base.run(&run.program, run.trace()));
    bench("models/ssbr_rc", n, || {
        InOrder::ssbr(ConsistencyModel::Rc).run(&run.program, run.trace())
    });
    bench("models/ss_rc", n, || {
        InOrder::ss(ConsistencyModel::Rc).run(&run.program, run.trace())
    });
    for w in [16, 64, 256] {
        let ds = Ds::new(DsConfig::rc().window(w));
        bench(&format!("models/ds_rc/{w}"), n, || {
            ds.run(&run.program, run.trace())
        });
    }
    let ds = Ds::new(DsConfig::with_model(ConsistencyModel::Sc).window(64));
    bench("models/ds_sc_64", n, || ds.run(&run.program, run.trace()));
}

fn main() {
    bench_multiproc();
    bench_models();
}
