//! Criterion benchmarks of the simulator components themselves:
//! how fast the multiprocessor simulator generates traces and how fast
//! each processor model re-times them. These guard against performance
//! regressions in the simulation loops (the figure binaries re-time
//! dozens of configurations, so model throughput matters).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::ProcessorModel;
use lookahead_core::ConsistencyModel;
use lookahead_harness::pipeline::AppRun;
use lookahead_multiproc::{SimConfig, Simulator};
use lookahead_workloads::lu::Lu;
use lookahead_workloads::ocean::Ocean;
use lookahead_workloads::Workload;

fn config() -> SimConfig {
    SimConfig {
        num_procs: 8,
        ..SimConfig::default()
    }
}

/// Trace generation throughput: full multiprocessor simulation of a
/// small LU, measured in simulated instructions per second.
fn bench_multiproc(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiproc");
    let workload = Lu { n: 24 };
    // One calibration run to size the throughput denominator.
    let built = workload.build(8);
    let out = Simulator::new(built.program, built.image, config())
        .unwrap()
        .run()
        .unwrap();
    let total: usize = out.traces.iter().map(|t| t.len()).sum();
    group.throughput(Throughput::Elements(total as u64));
    group.bench_function("lu24_8procs", |b| {
        b.iter(|| {
            let built = workload.build(8);
            Simulator::new(built.program, built.image, config())
                .unwrap()
                .run()
                .unwrap()
        })
    });
    group.finish();
}

/// Processor-model re-timing throughput on one shared trace.
fn bench_models(c: &mut Criterion) {
    let run = AppRun::generate(
        &Ocean {
            n: 18,
            grids: 2,
            steps: 1,
        },
        &config(),
    )
    .unwrap();
    let n = run.trace.len() as u64;

    let mut group = c.benchmark_group("models");
    group.throughput(Throughput::Elements(n));
    group.bench_function("base", |b| {
        b.iter(|| Base.run(&run.program, &run.trace))
    });
    group.bench_function("ssbr_rc", |b| {
        b.iter(|| InOrder::ssbr(ConsistencyModel::Rc).run(&run.program, &run.trace))
    });
    group.bench_function("ss_rc", |b| {
        b.iter(|| InOrder::ss(ConsistencyModel::Rc).run(&run.program, &run.trace))
    });
    for w in [16, 64, 256] {
        group.bench_with_input(BenchmarkId::new("ds_rc", w), &w, |b, &w| {
            let ds = Ds::new(DsConfig::rc().window(w));
            b.iter(|| ds.run(&run.program, &run.trace))
        });
    }
    group.bench_function("ds_sc_64", |b| {
        let ds = Ds::new(DsConfig::with_model(ConsistencyModel::Sc).window(64));
        b.iter(|| ds.run(&run.program, &run.trace))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_multiproc, bench_models
}
criterion_main!(benches);
