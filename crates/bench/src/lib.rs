//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index); the unified `lookahead`
//! driver regenerates any subset of them in one process. They all
//! share the same library path: a [`Runner`] owns the simulation
//! configuration, the workload size tier, the optional
//! content-addressed trace cache and the worker count, and the
//! [`reports`] module renders each table or figure to a string — so
//! the driver and the per-report binaries produce byte-identical
//! output by construction.
//!
//! Environment knobs (useful when iterating):
//!
//! * `LOOKAHEAD_SMALL=1` — use the unit-test workload sizes;
//! * `LOOKAHEAD_PAPER=1` — use the paper's published sizes;
//! * `LOOKAHEAD_PROCS=n` — simulate `n` processors instead of 16;
//! * `LOOKAHEAD_APPS=LU,MP3D` — restrict to a subset of applications;
//! * `LOOKAHEAD_CACHE=DIR` — cache generated traces under `DIR`
//!   (`off`/`0`/`none` disables; the driver defaults to
//!   `target/trace-cache`, the per-report binaries to no cache);
//! * `LOOKAHEAD_JOBS=n` — worker threads for generation and re-timing
//!   (`1` forces the serial path; output is identical either way);
//! * `--obs-out DIR` (or `LOOKAHEAD_OBS_OUT=DIR`) — write per-run
//!   observability artifacts (manifest, event journal, Chrome trace)
//!   under `DIR`. Event/counter capture needs the `obs` cargo feature;
//!   without it the artifacts are written but mostly empty.
//!
//! A malformed knob is a hard error (exit code 2), never a silent
//! fallback: a typo in `LOOKAHEAD_PROCS` must not quietly run the
//! wrong experiment.

pub mod client;
pub mod dagbench;
pub mod generation;
pub mod memprobe;
pub mod obsbench;
pub mod reports;
pub mod retiming;
pub mod serve_cli;
pub mod servebench;
pub mod sweepbench;

use lookahead_harness::cache::{load_or_generate, CacheOutcome, TraceCache};
use lookahead_harness::parallel;
use lookahead_harness::pipeline::AppRun;
use lookahead_multiproc::SimConfig;
use lookahead_workloads::{App, Workload};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Parses a `LOOKAHEAD_PROCS` value.
///
/// # Errors
///
/// Returns a descriptive message when the value is not a positive
/// integer.
pub fn parse_procs(v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "LOOKAHEAD_PROCS must be a positive integer (processor count), got {v:?}"
        )),
    }
}

/// Parses a `LOOKAHEAD_APPS` value into applications, preserving the
/// paper's order and dropping duplicates.
///
/// # Errors
///
/// Returns a descriptive message naming the first unknown application,
/// or complaining that the list selects nothing.
pub fn parse_apps(list: &str) -> Result<Vec<App>, String> {
    let valid = App::ALL.map(|a| a.name());
    let mut wanted = Vec::new();
    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match App::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
        {
            Some(app) => {
                if !wanted.contains(&app) {
                    wanted.push(app);
                }
            }
            None => {
                return Err(format!(
                    "LOOKAHEAD_APPS: unknown application {name:?}; valid names: {valid:?}"
                ))
            }
        }
    }
    if wanted.is_empty() {
        return Err(format!(
            "LOOKAHEAD_APPS={list:?} selects no applications; valid names: {valid:?}"
        ));
    }
    Ok(wanted)
}

/// Unwraps a knob-parse result, or prints the error and exits with
/// code 2 — the workspace's fail-fast convention for malformed
/// configuration (a typo must never silently run the wrong thing).
pub fn fail_fast<T>(result: Result<T, String>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

/// Parses the environment knobs into a simulation configuration.
/// Exits with code 2 on a malformed `LOOKAHEAD_PROCS`.
pub fn config_from_env() -> SimConfig {
    let mut config = SimConfig::default();
    if let Ok(p) = std::env::var("LOOKAHEAD_PROCS") {
        config.num_procs = fail_fast(parse_procs(&p));
    }
    config
}

/// The applications selected by `LOOKAHEAD_APPS` (all five by
/// default). Exits with code 2 on an unknown name.
pub fn selected_apps() -> Vec<App> {
    match std::env::var("LOOKAHEAD_APPS") {
        Ok(list) => fail_fast(parse_apps(&list)),
        Err(_) => App::ALL.to_vec(),
    }
}

// The size tier moved to the harness so the experiment service can
// share it; re-exported here so the bench API is unchanged.
pub use lookahead_harness::tier::SizeTier;

/// Trace-cache selection from `LOOKAHEAD_CACHE`: unset uses `default`
/// (the caller's policy), `off`/`0`/`none`/empty disables caching, and
/// anything else is a cache directory.
pub fn cache_from_env_or(default: Option<&str>) -> Option<TraceCache> {
    match std::env::var("LOOKAHEAD_CACHE") {
        Ok(v) => {
            let t = v.trim();
            let off = t.is_empty()
                || t == "0"
                || t.eq_ignore_ascii_case("off")
                || t.eq_ignore_ascii_case("none");
            if off {
                None
            } else {
                Some(TraceCache::new(t))
            }
        }
        Err(_) => default.map(TraceCache::new),
    }
}

/// Directory for observability artifacts: `--obs-out DIR` (or
/// `--obs-out=DIR`) on the command line, else `LOOKAHEAD_OBS_OUT`.
/// `None` disables artifact writing.
pub fn obs_out_dir() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--obs-out" {
            return args.next().map(PathBuf::from);
        }
        if let Some(v) = a.strip_prefix("--obs-out=") {
            return Some(PathBuf::from(v));
        }
    }
    std::env::var_os("LOOKAHEAD_OBS_OUT").map(PathBuf::from)
}

/// Flat key/value description of `config` for run manifests.
pub fn config_kv(config: &SimConfig) -> Vec<(&'static str, String)> {
    let tier = SizeTier::from_env();
    vec![
        ("num_procs", config.num_procs.to_string()),
        ("hit_latency", config.mem.hit_latency.to_string()),
        ("miss_penalty", config.mem.miss_penalty.to_string()),
        ("write_buffer_depth", config.write_buffer_depth.to_string()),
        ("small", (tier == SizeTier::Small).to_string()),
        ("paper", (tier == SizeTier::Paper).to_string()),
        ("large", (tier == SizeTier::Large).to_string()),
        ("obs_feature", cfg!(feature = "obs").to_string()),
    ]
}

/// Writes observability artifacts for a recorded run, logging instead
/// of failing: artifact output must never break a benchmark run.
pub fn write_obs_artifacts(
    dir: &std::path::Path,
    name: &str,
    config: &SimConfig,
    extra: &[(&str, String)],
    rec: &lookahead_obs::Recorder,
) {
    match lookahead_harness::obsout::write_run_artifacts(dir, name, &config_kv(config), extra, rec)
    {
        Ok(a) => eprintln!("  wrote observability artifacts to {}", a.dir.display()),
        Err(e) => eprintln!("  failed to write observability artifacts for {name}: {e}"),
    }
}

/// Executes trace generation for the experiment suite: one
/// configuration, one size tier, an optional content-addressed trace
/// cache and a worker pool, with cache hit/miss accounting.
///
/// Both the unified `lookahead` driver and the per-report binaries run
/// everything through a `Runner`, so their output is identical by
/// construction.
pub struct Runner {
    config: SimConfig,
    tier: SizeTier,
    cache: Option<TraceCache>,
    workers: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl Runner {
    /// A runner with explicit policy (the driver's constructor).
    pub fn new(
        config: SimConfig,
        tier: SizeTier,
        cache: Option<TraceCache>,
        workers: usize,
    ) -> Runner {
        Runner {
            config,
            tier,
            cache,
            workers,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// A runner configured entirely from the environment, with **no
    /// cache unless `LOOKAHEAD_CACHE` is set** — the per-report
    /// binaries behave exactly as before unless the knob is used.
    pub fn from_env() -> Runner {
        Runner::new(
            config_from_env(),
            SizeTier::from_env(),
            cache_from_env_or(None),
            parallel::default_workers(),
        )
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The workload size tier.
    pub fn tier(&self) -> SizeTier {
        self.tier
    }

    /// The worker count for generation and re-timing.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether a trace cache is in use.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// The applications this runner covers (`LOOKAHEAD_APPS`).
    pub fn apps(&self) -> Vec<App> {
        selected_apps()
    }

    /// Whether `app`'s trace at this tier and configuration is already
    /// in the disk cache — a cheap existence probe the DAG scheduler
    /// uses to collapse generation nodes to near-zero cost. A corrupt
    /// or stale file still takes the real load path (and regenerates);
    /// this only informs the cost estimate.
    pub fn trace_cached(&self, app: App) -> bool {
        let Some(cache) = &self.cache else {
            return false;
        };
        let workload = self.tier.workload(app);
        let key = lookahead_harness::cache_key(workload.name(), self.tier.name(), &self.config);
        cache.path_for(workload.name(), &key).exists()
    }

    /// Cache accounting so far: (hits, misses).
    pub fn cache_stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Prints the cache accounting to stderr (silent when no cache is
    /// configured).
    pub fn report_cache_stats(&self) {
        if let Some(c) = &self.cache {
            let (h, m) = self.cache_stats();
            eprintln!("trace cache: {h} hits, {m} misses ({})", c.dir().display());
        }
    }

    /// One application's run at this runner's tier and configuration.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to simulate or verify — that is a
    /// bug in the simulator stack worth failing loudly on.
    pub fn run_app(&self, app: App) -> AppRun {
        let workload = self.tier.workload(app);
        self.run_workload(workload.as_ref(), &self.config)
    }

    /// One workload's run under an explicit configuration (for the
    /// sweeps that vary the memory system). The configuration is part
    /// of the cache key, so variants never collide.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to simulate or verify.
    pub fn run_workload(&self, workload: &dyn Workload, config: &SimConfig) -> AppRun {
        let obs_dir = obs_out_dir();
        if obs_dir.is_some() {
            lookahead_obs::install(lookahead_obs::Recorder::new(0));
        }
        let started = Instant::now();
        let (run, outcome) =
            load_or_generate(self.cache.as_ref(), workload, self.tier.name(), config)
                .unwrap_or_else(|e| panic!("{}: {e}", workload.name()));
        match &outcome {
            CacheOutcome::Hit => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "  loaded {} trace from cache: {} instructions in {:.2}s",
                    run.app,
                    run.trace_len(),
                    started.elapsed().as_secs_f64()
                );
            }
            CacheOutcome::Generated(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "  generated {} trace: {} instructions ({} mp cycles) in {:.1}s",
                    run.app,
                    run.trace_len(),
                    run.mp_cycles,
                    started.elapsed().as_secs_f64()
                );
            }
        }
        if let Some(dir) = obs_dir {
            // Artifacts describe a simulation; a cache hit ran none.
            if let (Some(rec), CacheOutcome::Generated(_)) = (lookahead_obs::take(), &outcome) {
                write_obs_artifacts(
                    &dir,
                    &format!("generate-{}", run.app),
                    config,
                    &[("mp_cycles", run.mp_cycles.to_string())],
                    &rec,
                );
            }
        }
        run
    }

    /// All selected applications' runs, generated on the worker pool
    /// (each trace exactly once per process).
    pub fn run_all(&self) -> Vec<AppRun> {
        let jobs: Vec<_> = self
            .apps()
            .into_iter()
            .map(|app| move || self.run_app(app))
            .collect();
        parallel::run_ordered(jobs, self.workers)
    }
}

/// Generates the verified representative trace for every selected
/// application, in parallel, printing progress to stderr. Honors
/// `LOOKAHEAD_CACHE` when set.
///
/// # Panics
///
/// Panics if any workload fails to simulate or verify.
pub fn generate_all_runs(config: &SimConfig) -> Vec<AppRun> {
    Runner::new(
        *config,
        SizeTier::from_env(),
        cache_from_env_or(None),
        parallel::default_workers(),
    )
    .run_all()
}

/// Generates one application's run (for single-app binaries). Honors
/// `LOOKAHEAD_CACHE` when set.
///
/// # Panics
///
/// Panics if the workload fails to simulate or verify.
pub fn generate_run(app: App, config: &SimConfig) -> AppRun {
    Runner::new(
        *config,
        SizeTier::from_env(),
        cache_from_env_or(None),
        parallel::default_workers(),
    )
    .run_app(app)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_paper_config() {
        // Note: env-dependent knobs are exercised by the binaries; the
        // default path must match the paper.
        let c = SimConfig::default();
        assert_eq!(c.num_procs, 16);
        assert_eq!(c.mem.miss_penalty, 50);
    }

    #[test]
    fn selected_apps_defaults_to_all() {
        if std::env::var("LOOKAHEAD_APPS").is_err() {
            assert_eq!(selected_apps().len(), 5);
        }
    }

    #[test]
    fn parse_procs_accepts_positive_integers_only() {
        assert_eq!(parse_procs("16"), Ok(16));
        assert_eq!(parse_procs(" 4 "), Ok(4));
        assert!(parse_procs("0").is_err());
        assert!(parse_procs("").is_err());
        assert!(parse_procs("sixteen").is_err());
        assert!(parse_procs("-4").is_err());
        assert!(parse_procs("4.0").is_err());
        // The message names the knob so the fix is obvious.
        assert!(parse_procs("x").unwrap_err().contains("LOOKAHEAD_PROCS"));
    }

    #[test]
    fn parse_apps_matches_names_case_insensitively() {
        let apps = parse_apps("lu, MP3D").unwrap();
        assert_eq!(apps, vec![App::Lu, App::Mp3d]);
        // Duplicates collapse; order of first mention is kept.
        assert_eq!(parse_apps("LU,lu,LU").unwrap(), vec![App::Lu]);
    }

    #[test]
    fn parse_apps_rejects_unknown_and_empty() {
        let err = parse_apps("LU,FFT").unwrap_err();
        assert!(err.contains("FFT"), "{err}");
        assert!(err.contains("MP3D"), "should list valid names: {err}");
        assert!(parse_apps("").is_err());
        assert!(parse_apps(" , ,").is_err());
    }

    #[test]
    fn tier_names_are_cache_key_stable() {
        // Cache keys embed these strings; renaming one silently
        // invalidates every existing cache, so pin them (the enum now
        // lives in the harness; the re-export must keep these names).
        assert_eq!(SizeTier::Small.name(), "small");
        assert_eq!(SizeTier::Default.name(), "default");
        assert_eq!(SizeTier::Paper.name(), "paper");
        assert_eq!(SizeTier::Large.name(), "large");
    }
}
