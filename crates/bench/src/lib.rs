//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index). They share the trace
//! generation here: all five applications at their default sizes on
//! 16 processors with the paper's memory system.
//!
//! Environment knobs (useful when iterating):
//!
//! * `LOOKAHEAD_SMALL=1` — use the unit-test workload sizes;
//! * `LOOKAHEAD_PROCS=n` — simulate `n` processors instead of 16;
//! * `LOOKAHEAD_APPS=LU,MP3D` — restrict to a subset of applications;
//! * `--obs-out DIR` (or `LOOKAHEAD_OBS_OUT=DIR`) — write per-run
//!   observability artifacts (manifest, event journal, Chrome trace)
//!   under `DIR`. Event/counter capture needs the `obs` cargo feature;
//!   without it the artifacts are written but mostly empty.

use lookahead_harness::pipeline::AppRun;
use lookahead_multiproc::SimConfig;
use lookahead_workloads::App;
use std::path::PathBuf;
use std::time::Instant;

/// Parses the environment knobs into a simulation configuration.
pub fn config_from_env() -> SimConfig {
    let mut config = SimConfig::default();
    if let Ok(p) = std::env::var("LOOKAHEAD_PROCS") {
        if let Ok(n) = p.parse::<usize>() {
            config.num_procs = n.max(1);
        }
    }
    config
}

fn selected_apps() -> Vec<App> {
    match std::env::var("LOOKAHEAD_APPS") {
        Ok(list) => {
            let wanted: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_uppercase())
                .filter(|s| !s.is_empty())
                .collect();
            App::ALL
                .into_iter()
                .filter(|a| wanted.iter().any(|w| w == a.name()))
                .collect()
        }
        Err(_) => App::ALL.to_vec(),
    }
}

fn small() -> bool {
    std::env::var("LOOKAHEAD_SMALL").is_ok_and(|v| v != "0")
}

fn paper() -> bool {
    std::env::var("LOOKAHEAD_PAPER").is_ok_and(|v| v != "0")
}

fn sized_workload(app: App) -> Box<dyn lookahead_workloads::Workload + Send + Sync> {
    if small() {
        app.small_workload()
    } else if paper() {
        app.paper_workload()
    } else {
        app.default_workload()
    }
}

/// Directory for observability artifacts: `--obs-out DIR` (or
/// `--obs-out=DIR`) on the command line, else `LOOKAHEAD_OBS_OUT`.
/// `None` disables artifact writing.
pub fn obs_out_dir() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--obs-out" {
            return args.next().map(PathBuf::from);
        }
        if let Some(v) = a.strip_prefix("--obs-out=") {
            return Some(PathBuf::from(v));
        }
    }
    std::env::var_os("LOOKAHEAD_OBS_OUT").map(PathBuf::from)
}

/// Flat key/value description of `config` for run manifests.
pub fn config_kv(config: &SimConfig) -> Vec<(&'static str, String)> {
    vec![
        ("num_procs", config.num_procs.to_string()),
        ("hit_latency", config.mem.hit_latency.to_string()),
        ("miss_penalty", config.mem.miss_penalty.to_string()),
        ("write_buffer_depth", config.write_buffer_depth.to_string()),
        ("small", small().to_string()),
        ("paper", paper().to_string()),
        ("obs_feature", cfg!(feature = "obs").to_string()),
    ]
}

/// Writes observability artifacts for a recorded run, logging instead
/// of failing: artifact output must never break a benchmark run.
pub fn write_obs_artifacts(
    dir: &std::path::Path,
    name: &str,
    config: &SimConfig,
    extra: &[(&str, String)],
    rec: &lookahead_obs::Recorder,
) {
    match lookahead_harness::obsout::write_run_artifacts(dir, name, &config_kv(config), extra, rec)
    {
        Ok(a) => eprintln!("  wrote observability artifacts to {}", a.dir.display()),
        Err(e) => eprintln!("  failed to write observability artifacts for {name}: {e}"),
    }
}

/// Generates the verified representative trace for every selected
/// application, in parallel, printing progress to stderr.
///
/// # Panics
///
/// Panics if any workload fails to simulate or verify — that is a bug
/// in the simulator stack worth failing loudly on.
pub fn generate_all_runs(config: &SimConfig) -> Vec<AppRun> {
    let apps = selected_apps();
    assert!(
        !apps.is_empty(),
        "LOOKAHEAD_APPS={:?} matched no applications; valid names: {:?}",
        std::env::var("LOOKAHEAD_APPS").unwrap_or_default(),
        App::ALL.map(|a| a.name())
    );
    let obs_dir = obs_out_dir();
    let handles: Vec<_> = apps
        .into_iter()
        .map(|app| {
            let config = *config;
            let obs_dir = obs_dir.clone();
            std::thread::spawn(move || {
                // The recorder is thread-local, so each app's
                // generation records in isolation.
                if obs_dir.is_some() {
                    lookahead_obs::install(lookahead_obs::Recorder::new(0));
                }
                let started = Instant::now();
                let workload = sized_workload(app);
                let run = AppRun::generate(workload.as_ref(), &config)
                    .unwrap_or_else(|e| panic!("{app}: {e}"));
                eprintln!(
                    "  generated {} trace: {} instructions ({} mp cycles) in {:.1}s",
                    app,
                    run.trace.len(),
                    run.mp_cycles,
                    started.elapsed().as_secs_f64()
                );
                if let Some(dir) = obs_dir {
                    if let Some(rec) = lookahead_obs::take() {
                        write_obs_artifacts(
                            &dir,
                            &format!("generate-{app}"),
                            &config,
                            &[("mp_cycles", run.mp_cycles.to_string())],
                            &rec,
                        );
                    }
                }
                run
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("workload thread"))
        .collect()
}

/// Generates one application's run (for single-app binaries).
///
/// # Panics
///
/// Panics if the workload fails to simulate or verify.
pub fn generate_run(app: App, config: &SimConfig) -> AppRun {
    let obs_dir = obs_out_dir();
    if obs_dir.is_some() {
        lookahead_obs::install(lookahead_obs::Recorder::new(0));
    }
    let workload = sized_workload(app);
    let run = AppRun::generate(workload.as_ref(), config).unwrap_or_else(|e| panic!("{app}: {e}"));
    if let Some(dir) = obs_dir {
        if let Some(rec) = lookahead_obs::take() {
            write_obs_artifacts(
                &dir,
                &format!("generate-{app}"),
                config,
                &[("mp_cycles", run.mp_cycles.to_string())],
                &rec,
            );
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_paper_config() {
        // Note: env-dependent knobs are exercised by the binaries; the
        // default path must match the paper.
        let c = SimConfig::default();
        assert_eq!(c.num_procs, 16);
        assert_eq!(c.mem.miss_penalty, 50);
    }

    #[test]
    fn selected_apps_defaults_to_all() {
        if std::env::var("LOOKAHEAD_APPS").is_err() {
            assert_eq!(selected_apps().len(), 5);
        }
    }
}
