//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index). They share the trace
//! generation here: all five applications at their default sizes on
//! 16 processors with the paper's memory system.
//!
//! Environment knobs (useful when iterating):
//!
//! * `LOOKAHEAD_SMALL=1` — use the unit-test workload sizes;
//! * `LOOKAHEAD_PROCS=n` — simulate `n` processors instead of 16;
//! * `LOOKAHEAD_APPS=LU,MP3D` — restrict to a subset of applications.

use lookahead_harness::pipeline::AppRun;
use lookahead_multiproc::SimConfig;
use lookahead_workloads::App;
use std::time::Instant;

/// Parses the environment knobs into a simulation configuration.
pub fn config_from_env() -> SimConfig {
    let mut config = SimConfig::default();
    if let Ok(p) = std::env::var("LOOKAHEAD_PROCS") {
        if let Ok(n) = p.parse::<usize>() {
            config.num_procs = n.max(1);
        }
    }
    config
}

fn selected_apps() -> Vec<App> {
    match std::env::var("LOOKAHEAD_APPS") {
        Ok(list) => {
            let wanted: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_uppercase())
                .filter(|s| !s.is_empty())
                .collect();
            App::ALL
                .into_iter()
                .filter(|a| wanted.iter().any(|w| w == a.name()))
                .collect()
        }
        Err(_) => App::ALL.to_vec(),
    }
}

fn small() -> bool {
    std::env::var("LOOKAHEAD_SMALL").is_ok_and(|v| v != "0")
}

fn paper() -> bool {
    std::env::var("LOOKAHEAD_PAPER").is_ok_and(|v| v != "0")
}

fn sized_workload(app: App) -> Box<dyn lookahead_workloads::Workload + Send + Sync> {
    if small() {
        app.small_workload()
    } else if paper() {
        app.paper_workload()
    } else {
        app.default_workload()
    }
}

/// Generates the verified representative trace for every selected
/// application, in parallel, printing progress to stderr.
///
/// # Panics
///
/// Panics if any workload fails to simulate or verify — that is a bug
/// in the simulator stack worth failing loudly on.
pub fn generate_all_runs(config: &SimConfig) -> Vec<AppRun> {
    let apps = selected_apps();
    assert!(
        !apps.is_empty(),
        "LOOKAHEAD_APPS={:?} matched no applications; valid names: {:?}",
        std::env::var("LOOKAHEAD_APPS").unwrap_or_default(),
        App::ALL.map(|a| a.name())
    );
    let handles: Vec<_> = apps
        .into_iter()
        .map(|app| {
            let config = *config;
            std::thread::spawn(move || {
                let started = Instant::now();
                let workload = sized_workload(app);
                let run = AppRun::generate(workload.as_ref(), &config)
                    .unwrap_or_else(|e| panic!("{app}: {e}"));
                eprintln!(
                    "  generated {} trace: {} instructions ({} mp cycles) in {:.1}s",
                    app,
                    run.trace.len(),
                    run.mp_cycles,
                    started.elapsed().as_secs_f64()
                );
                run
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("workload thread"))
        .collect()
}

/// Generates one application's run (for single-app binaries).
///
/// # Panics
///
/// Panics if the workload fails to simulate or verify.
pub fn generate_run(app: App, config: &SimConfig) -> AppRun {
    let workload = sized_workload(app);
    AppRun::generate(workload.as_ref(), config).unwrap_or_else(|e| panic!("{app}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_paper_config() {
        // Note: env-dependent knobs are exercised by the binaries; the
        // default path must match the paper.
        let c = SimConfig::default();
        assert_eq!(c.num_procs, 16);
        assert_eq!(c.mem.miss_penalty, 50);
    }

    #[test]
    fn selected_apps_defaults_to_all() {
        if std::env::var("LOOKAHEAD_APPS").is_err() {
            assert_eq!(selected_apps().len(), 5);
        }
    }
}
