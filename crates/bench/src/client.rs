//! Minimal HTTP/1.1 client shared by `lookahead query`'s plumbing and
//! the `loadgen` binary, with typed errors for the failure modes a
//! client actually hits against a live service.
//!
//! The one that matters operationally: a server draining after SIGINT
//! accepts nothing new and closes in-flight sockets, which surfaces to
//! a naive client as `EPIPE`/`ECONNRESET` mid-write or an empty read —
//! historically a broken-pipe panic or a baffling `status 0` report.
//! [`ClientError::Disconnected`] names that case so callers can print
//! one clean line and move on.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Why a request failed before yielding a parsed response.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection could not be established (server down, port
    /// closed, network unreachable).
    Connect(io::Error),
    /// The server accepted the connection but closed it before
    /// sending a complete response — the signature of a server
    /// draining for shutdown.
    Disconnected,
    /// Any other I/O failure mid-request.
    Io(io::Error),
    /// Bytes arrived but did not parse as an HTTP response.
    Malformed(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "cannot connect: {e}"),
            ClientError::Disconnected => {
                write!(f, "server closed the connection mid-request (draining?)")
            }
            ClientError::Io(e) => write!(f, "request failed: {e}"),
            ClientError::Malformed(line) => write!(f, "malformed response: {line:?}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Connect(e) | ClientError::Io(e) => Some(e),
            ClientError::Disconnected | ClientError::Malformed(_) => None,
        }
    }
}

/// An I/O error that means "the peer hung up", not "something broke".
fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::UnexpectedEof
    )
}

fn map_io(e: io::Error) -> ClientError {
    if is_disconnect(&e) {
        ClientError::Disconnected
    } else {
        ClientError::Io(e)
    }
}

/// Issues one `GET` and returns `(status, body)`.
///
/// # Errors
///
/// [`ClientError::Disconnected`] when the server closes the socket
/// before a complete status line arrives (a draining server);
/// [`ClientError::Connect`]/[`Io`](ClientError::Io) for transport
/// failures; [`ClientError::Malformed`] for non-HTTP bytes.
pub fn get(addr: SocketAddr, target: &str) -> Result<(u16, String), ClientError> {
    let r = get_with_headers(addr, target)?;
    Ok((r.status, r.body))
}

/// A parsed response with its headers retained (loadgen reads the
/// server's `X-Request-Id` and `Server-Timing` back out).
#[derive(Debug)]
pub struct HttpReply {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl HttpReply {
    /// The first header with this name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// As [`get`], but keeps the response headers.
///
/// # Errors
///
/// As [`get`].
pub fn get_with_headers(addr: SocketAddr, target: &str) -> Result<HttpReply, ClientError> {
    let mut conn = TcpStream::connect(addr).map_err(ClientError::Connect)?;
    write!(
        conn,
        "GET {target} HTTP/1.1\r\nHost: lookahead\r\nConnection: close\r\n\r\n"
    )
    .map_err(map_io)?;
    let mut text = String::new();
    conn.read_to_string(&mut text).map_err(map_io)?;
    if text.is_empty() {
        // Accepted, then closed without a byte: the drain signature.
        return Err(ClientError::Disconnected);
    }
    let status_line = text.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Malformed(status_line.to_string()))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or((text.clone(), String::new()));
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(": "))
        .map(|(n, v)| (n.to_string(), v.to_string()))
        .collect();
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disconnect_kinds_map_to_disconnected() {
        for kind in [
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::UnexpectedEof,
        ] {
            assert!(matches!(
                map_io(io::Error::new(kind, "x")),
                ClientError::Disconnected
            ));
        }
        assert!(matches!(
            map_io(io::Error::new(io::ErrorKind::OutOfMemory, "x")),
            ClientError::Io(_)
        ));
    }

    #[test]
    fn disconnected_message_names_draining() {
        let msg = ClientError::Disconnected.to_string();
        assert!(msg.contains("draining"), "{msg}");
        assert!(msg.contains("closed the connection"), "{msg}");
    }
}
