//! `lookahead bench memory` — peak-RSS comparison of the streamed and
//! materialized re-timing paths.
//!
//! The figure-3 window sweep is re-timed twice from a primed trace
//! cache, each time in a fresh subprocess so `VmHWM` (the kernel's
//! process-lifetime resident-set high-water mark) measures exactly one
//! mode:
//!
//! * **materialized** — `LOOKAHEAD_FORCE_MATERIALIZE=1`: every cache
//!   hit decodes its whole trace set into memory first (the pre-v3
//!   behaviour).
//! * **streamed** — the default: re-timing pulls chunks straight from
//!   the archive; resident memory is bounded by the engine's live
//!   window, not the trace length.
//!
//! Both probes also report an FNV-1a digest of the report text they
//! produced, so the run doubles as an end-to-end check that the two
//! paths are byte-identical. Results go to `BENCH_memory.json`; the
//! CI perf-smoke job gates on `--min-ratio` (materialized ÷ streamed
//! peak RSS).

use crate::{config_from_env, reports, Runner, SizeTier};
use lookahead_harness::cache::TraceCache;
use lookahead_harness::pipeline::FORCE_MATERIALIZE_ENV;
use lookahead_trace::fnv1a;
use std::fmt::Write as _;
use std::process::{Command, ExitCode};
use std::time::Instant;

/// This process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`); `None` where procfs is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// One mode's measurement, as reported by its probe subprocess.
struct Probe {
    mode: &'static str,
    peak_rss_bytes: u64,
    output_fnv: u64,
    wall_seconds: f64,
}

const USAGE: &str = "usage: lookahead bench memory [OPTIONS]

Measures the peak resident set size of the figure-3 window sweep on
the streamed and the force-materialized re-timing paths (one fresh
subprocess each, from a primed trace cache) and writes the comparison
to a JSON file. Fails if the two paths' report text differs.

options:
  --out PATH       result file (default: BENCH_memory.json)
  --tier NAME      workload size tier: small, default, paper or large
                   (default: from the environment)
  --cache-dir DIR  cache traces under DIR (default: target/trace-cache)
  --min-ratio R    fail unless materialized/streamed peak RSS >= R
                   (default: no gate)
  -h, --help       show this help

environment: LOOKAHEAD_SMALL=1, LOOKAHEAD_PROCS=n, LOOKAHEAD_APPS=...";

struct Options {
    out_path: String,
    tier: SizeTier,
    cache_dir: String,
    min_ratio: Option<f64>,
    probe: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        out_path: "BENCH_memory.json".to_string(),
        tier: SizeTier::from_env(),
        cache_dir: "target/trace-cache".to_string(),
        min_ratio: None,
        probe: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "-h" | "--help" => return Ok(None),
            "--probe" => opts.probe = true,
            "--out" => opts.out_path = value("--out")?,
            "--cache-dir" => opts.cache_dir = value("--cache-dir")?,
            "--tier" => {
                let v = value("--tier")?;
                opts.tier = SizeTier::from_name(&v).ok_or_else(|| {
                    format!("unknown tier {v:?}; valid: small, default, paper, large")
                })?;
            }
            "--min-ratio" => {
                let v = value("--min-ratio")?;
                opts.min_ratio = Some(
                    v.parse()
                        .map_err(|_| format!("--min-ratio needs a number, got {v:?}"))?,
                );
            }
            other => {
                if let Some(v) = other.strip_prefix("--out=") {
                    opts.out_path = v.to_string();
                } else if let Some(v) = other.strip_prefix("--cache-dir=") {
                    opts.cache_dir = v.to_string();
                } else if let Some(v) = other.strip_prefix("--tier=") {
                    opts.tier = SizeTier::from_name(v).ok_or_else(|| {
                        format!("unknown tier {v:?}; valid: small, default, paper, large")
                    })?;
                } else if let Some(v) = other.strip_prefix("--min-ratio=") {
                    opts.min_ratio = Some(
                        v.parse()
                            .map_err(|_| format!("--min-ratio needs a number, got {v:?}"))?,
                    );
                } else {
                    return Err(format!("unknown option {other:?}"));
                }
            }
        }
    }
    Ok(Some(opts))
}

/// The probe body: load every app from the cache, run the figure-3
/// sweep single-threaded, and print one JSON line with the peak RSS
/// and a digest of the report text.
fn probe_main(opts: &Options) -> ExitCode {
    let runner = Runner::new(
        config_from_env(),
        opts.tier,
        Some(TraceCache::new(opts.cache_dir.clone())),
        1,
    );
    let runs = runner.run_all();
    let report = reports::figure3_report(&runs, 1);
    let digest = fnv1a(report.as_bytes());
    match peak_rss_bytes() {
        Some(rss) => {
            println!("{{\"peak_rss_bytes\": {rss}, \"output_fnv\": \"{digest:016x}\"}}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("error: VmHWM unavailable (/proc/self/status); cannot measure peak RSS");
            ExitCode::FAILURE
        }
    }
}

/// Runs one probe subprocess and parses its JSON line.
fn run_probe(opts: &Options, mode: &'static str, materialize: bool) -> Result<Probe, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let started = Instant::now();
    let mut cmd = Command::new(exe);
    cmd.args([
        "bench",
        "memory",
        "--probe",
        "--tier",
        opts.tier.name(),
        "--cache-dir",
        &opts.cache_dir,
    ]);
    if materialize {
        cmd.env(FORCE_MATERIALIZE_ENV, "1");
    } else {
        cmd.env_remove(FORCE_MATERIALIZE_ENV);
    }
    let output = cmd
        .output()
        .map_err(|e| format!("{mode} probe failed to spawn: {e}"))?;
    let wall_seconds = started.elapsed().as_secs_f64();
    if !output.status.success() {
        return Err(format!(
            "{mode} probe exited with {}: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr).trim()
        ));
    }
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with('{'))
        .ok_or_else(|| format!("{mode} probe printed no result line: {stdout:?}"))?;
    let field = |key: &str| -> Result<&str, String> {
        let pat = format!("\"{key}\": ");
        let at = line
            .find(&pat)
            .ok_or_else(|| format!("{mode} probe result missing {key}: {line}"))?;
        let rest = &line[at + pat.len()..];
        Ok(rest
            .trim_start_matches('"')
            .split(['"', ',', '}'])
            .next()
            .unwrap_or(""))
    };
    let peak_rss_bytes = field("peak_rss_bytes")?
        .parse()
        .map_err(|e| format!("{mode} probe: bad peak_rss_bytes: {e}"))?;
    let output_fnv = u64::from_str_radix(field("output_fnv")?, 16)
        .map_err(|e| format!("{mode} probe: bad output_fnv: {e}"))?;
    Ok(Probe {
        mode,
        peak_rss_bytes,
        output_fnv,
        wall_seconds,
    })
}

fn render_json(opts: &Options, runner: &Runner, probes: &[Probe], ratio: f64) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"memory\",");
    let _ = writeln!(out, "  \"workload\": \"figure3_sweep\",");
    let _ = writeln!(out, "  \"tier\": \"{}\",", opts.tier.name());
    let apps: Vec<String> = runner
        .apps()
        .iter()
        .map(|a| format!("\"{}\"", a.name()))
        .collect();
    let _ = writeln!(out, "  \"apps\": [{}],", apps.join(", "));
    out.push_str("  \"modes\": [\n");
    for (i, p) in probes.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"mode\": \"{}\", \"peak_rss_bytes\": {}, \"peak_rss_mib\": {:.1}, \
             \"output_fnv\": \"{:016x}\", \"wall_seconds\": {:.2}}}",
            p.mode,
            p.peak_rss_bytes,
            p.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            p.output_fnv,
            p.wall_seconds,
        );
        out.push_str(if i + 1 < probes.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"outputs_identical\": {},",
        probes
            .windows(2)
            .all(|w| w[0].output_fnv == w[1].output_fnv)
    );
    let _ = writeln!(
        out,
        "  \"rss_ratio_materialized_over_streamed\": {ratio:.2}"
    );
    out.push_str("}\n");
    out
}

/// Entry point for `lookahead bench memory`.
pub fn memory_main(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.probe {
        return probe_main(&opts);
    }

    // Prime the cache so both probes measure cache-hit re-timing, not
    // trace generation (which is already streamed and identical in
    // both modes).
    let runner = Runner::new(
        config_from_env(),
        opts.tier,
        Some(TraceCache::new(opts.cache_dir.clone())),
        lookahead_harness::parallel::default_workers(),
    );
    eprintln!(
        "bench memory: priming {} cache under {}",
        opts.tier.name(),
        opts.cache_dir
    );
    drop(runner.run_all());

    let probes = match ["materialized", "streamed"]
        .into_iter()
        .map(|mode| run_probe(&opts, mode, mode == "materialized"))
        .collect::<Result<Vec<Probe>, String>>()
    {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let ratio = probes[0].peak_rss_bytes as f64 / probes[1].peak_rss_bytes.max(1) as f64;
    for p in &probes {
        println!(
            "{:<13} peak RSS {:>8.1} MiB  ({:.2}s)",
            p.mode,
            p.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            p.wall_seconds,
        );
    }
    println!("materialized / streamed peak RSS: {ratio:.2}x");

    let json = render_json(&opts, &runner, &probes, ratio);
    if let Err(e) = std::fs::write(&opts.out_path, &json) {
        eprintln!("error: failed to write {}: {e}", opts.out_path);
        return ExitCode::FAILURE;
    }
    eprintln!("bench memory: wrote {}", opts.out_path);

    if probes[0].output_fnv != probes[1].output_fnv {
        eprintln!(
            "error: streamed and materialized sweeps produced different report text \
             ({:016x} vs {:016x})",
            probes[0].output_fnv, probes[1].output_fnv
        );
        return ExitCode::FAILURE;
    }
    if let Some(min) = opts.min_ratio {
        if ratio < min {
            eprintln!(
                "error: peak-RSS ratio {ratio:.2} below the required minimum {min:.2} \
                 (streaming regressed)"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_available_and_plausible_on_linux() {
        let rss = peak_rss_bytes().expect("VmHWM should exist on Linux");
        // A running test binary surely holds more than 1 MiB and less
        // than 1 TiB resident.
        assert!(rss > 1 << 20, "implausibly small peak RSS: {rss}");
        assert!(rss < 1 << 40, "implausibly large peak RSS: {rss}");
    }

    #[test]
    fn probe_flag_and_tier_parse() {
        let args: Vec<String> = ["--probe", "--tier", "small", "--cache-dir=/tmp/c"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_args(&args).unwrap().unwrap();
        assert!(opts.probe);
        assert_eq!(opts.tier, SizeTier::Small);
        assert_eq!(opts.cache_dir, "/tmp/c");
        assert!(parse_args(&["--tier".to_string(), "huge".to_string()]).is_err());
        assert!(parse_args(&["--min-ratio=x".to_string()]).is_err());
    }
}
