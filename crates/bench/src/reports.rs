//! Every table and figure of the paper, rendered to a `String`.
//!
//! The per-report binaries in `src/bin/` and the unified `lookahead`
//! driver both print these strings verbatim, so their stdout is
//! byte-identical by construction — the golden equivalence tests pin
//! that. Reports that re-time the shared application runs take
//! `&[AppRun]` (the traces are generated once per process); reports
//! that need their own memory-system variants take a [`Runner`] and go
//! through its cache.

use crate::Runner;
use lookahead_core::base::Base;
use lookahead_core::consistency::MemOpKind;
use lookahead_core::contexts::Contexts;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::{ExecutionResult, ProcessorModel};
use lookahead_core::prefetch::{PrefetchConfig, StridePrefetcher};
use lookahead_core::ConsistencyModel;
use lookahead_harness::dag::{self, DagStats, Scheduler, TaskDag};
use lookahead_harness::experiments::{
    columns_from_results, figure3_cells, figure3_with, figure4_cells, figure4_with, hidden_row,
    miss_delay, multi_issue_sched, rc_sweep_columns, read_latency_hidden_matrix, retime_gang,
    summary_cells, table1, table2, table3, CellSpec, ModelSpec, RetimeMode, PAPER_WINDOWS,
};
use lookahead_harness::format::{count_with_rate, render_figure, render_table};
use lookahead_harness::parallel::run_ordered;
use lookahead_harness::pipeline::AppRun;
use lookahead_isa::Program;
use lookahead_memsys::{CacheConfig, MemoryParams};
use lookahead_multiproc::{SimConfig, Simulator};
use lookahead_schedule::optimize_program;
use lookahead_trace::{Trace, TraceStats};
use lookahead_workloads::App;
use std::fmt::Write;
use std::sync::OnceLock;

/// **Figure 1**: the ordering restrictions each consistency model
/// places on accesses from the same processor.
pub fn figure1_report() -> String {
    let mut out = String::new();
    writeln!(out, "Figure 1 — ordering restrictions on memory accesses\n").unwrap();
    for model in ConsistencyModel::ALL {
        writeln!(out, "{}", model.rule_table()).unwrap();
    }

    // The figure's example: which of the numbered accesses
    //   1:W  2:R  3:acquire  4:R  5:W  6:release  7:R
    // may be overlapped (no must-wait edge) under each model?
    let seq = [
        (1, MemOpKind::Write),
        (2, MemOpKind::Read),
        (3, MemOpKind::Acquire),
        (4, MemOpKind::Read),
        (5, MemOpKind::Write),
        (6, MemOpKind::Release),
        (7, MemOpKind::Read),
    ];
    writeln!(
        out,
        "overlappable pairs in  1:W 2:R 3:acq 4:R 5:W 6:rel 7:R"
    )
    .unwrap();
    for model in ConsistencyModel::ALL {
        let mut free = Vec::new();
        for i in 0..seq.len() {
            for j in i + 1..seq.len() {
                if !model.must_wait_for(seq[i].1, seq[j].1) {
                    free.push(format!("{}-{}", seq[i].0, seq[j].0));
                }
            }
        }
        writeln!(
            out,
            "  {:<3} {}",
            model.abbrev(),
            if free.is_empty() {
                "none (fully serial)".to_string()
            } else {
                free.join(" ")
            }
        )
        .unwrap();
    }
    out
}

/// One application's Figure 3 block — the single render path shared
/// by the flat report and the DAG sweep, so both are byte-identical
/// by construction.
fn figure3_app_text(run: &AppRun, cols: &[lookahead_harness::Figure3Column]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{}",
        render_figure(
            &format!(
                "Figure 3 — {} (trace: {} instructions, processor {})",
                run.app,
                run.trace_len(),
                run.proc
            ),
            cols
        )
    )
    .unwrap();
    out
}

/// One application's Figure 4 block (see [`figure3_app_text`]).
fn figure4_app_text(run: &AppRun, cols: &[lookahead_harness::Figure3Column]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{}",
        render_figure(
            &format!(
                "Figure 4 — {} (bp = perfect branch prediction; \
                 bp+nd = also ignoring data dependences)",
                run.app
            ),
            cols
        )
    )
    .unwrap();
    out
}

/// The rendered §7 summary for an already-computed hidden-latency
/// matrix (rows in `app_names` order, columns in `windows` order).
fn summary_text(app_names: &[&str], windows: &[usize], matrix: &[Vec<f64>]) -> String {
    let mut rows = vec![{
        let mut h = vec!["Program".to_string()];
        h.extend(windows.iter().map(|w| format!("W={w}")));
        h
    }];
    for (app, row) in app_names.iter().zip(matrix) {
        let mut r = vec![(*app).to_string()];
        r.extend(row.iter().map(|h| format!("{:.0}%", h * 100.0)));
        rows.push(r);
    }
    let mut avg = vec!["AVERAGE".to_string()];
    avg.extend((0..windows.len()).map(|j| {
        let mean = matrix.iter().map(|row| row[j]).sum::<f64>() / app_names.len().max(1) as f64;
        format!("{:.0}%", mean * 100.0)
    }));
    rows.push(avg);

    let mut out = String::new();
    writeln!(
        out,
        "Percentage of read latency hidden (DS under RC vs BASE)"
    )
    .unwrap();
    writeln!(out, "{}", render_table(&rows)).unwrap();
    writeln!(
        out,
        "Paper (§7, 50-cycle latency): 33% at W=16, 63% at W=32, 81% at W=64."
    )
    .unwrap();
    out
}

/// **Figure 3**: BASE and {SSBR, SS, DS} under SC/PC/RC with the
/// window sweep, one stacked figure per application.
pub fn figure3_report(runs: &[AppRun], workers: usize) -> String {
    runs.iter()
        .map(|run| figure3_app_text(run, &figure3_with(run, &PAPER_WINDOWS, workers)))
        .collect()
}

/// **Figure 4**: the branch-prediction / data-dependence ablations on
/// the RC window sweep.
pub fn figure4_report(runs: &[AppRun], workers: usize) -> String {
    runs.iter()
        .map(|run| figure4_app_text(run, &figure4_with(run, &PAPER_WINDOWS, workers)))
        .collect()
}

/// The §7 headline numbers: percentage of read latency hidden per
/// application and window, plus the cross-application average.
pub fn summary_report(runs: &[AppRun], workers: usize) -> String {
    let windows = [16, 32, 64, 128, 256];
    let matrix = read_latency_hidden_matrix(runs, &windows, workers);
    let names: Vec<&str> = runs.iter().map(|r| r.app.as_str()).collect();
    summary_text(&names, &windows, &matrix)
}

/// **Table 1**: statistics on data references.
pub fn table1_report(runs: &[AppRun], num_procs: usize) -> String {
    let mut rows = vec![vec![
        "Program".to_string(),
        "Busy Cycles".to_string(),
        "reads (/k)".to_string(),
        "writes (/k)".to_string(),
        "read misses (/k)".to_string(),
        "write misses (/k)".to_string(),
    ]];
    for run in runs {
        let t = table1(run);
        rows.push(vec![
            run.app.clone(),
            t.busy_cycles.to_string(),
            count_with_rate(t.reads, t.busy_cycles),
            count_with_rate(t.writes, t.busy_cycles),
            count_with_rate(t.read_misses, t.busy_cycles),
            count_with_rate(t.write_misses, t.busy_cycles),
        ]);
    }
    let mut out = String::new();
    writeln!(out, "Table 1 — Statistics on data references").unwrap();
    writeln!(out, "(single representative processor of {num_procs})").unwrap();
    writeln!(out, "{}", render_table(&rows)).unwrap();
    out
}

/// **Table 2**: statistics on synchronization, with the acquire
/// wait/access split of §4.1.2.
pub fn table2_report(runs: &[AppRun], num_procs: usize) -> String {
    let mut rows = vec![vec![
        "Program".to_string(),
        "locks".to_string(),
        "unlocks".to_string(),
        "wait event".to_string(),
        "set event".to_string(),
        "barriers".to_string(),
        "hidable acquire %".to_string(),
    ]];
    for run in runs {
        let t = table2(run);
        rows.push(vec![
            run.app.clone(),
            t.locks.to_string(),
            t.unlocks.to_string(),
            t.wait_events.to_string(),
            t.set_events.to_string(),
            t.barriers.to_string(),
            format!("{:.1}", t.hidable_acquire_fraction() * 100.0),
        ]);
    }
    let mut out = String::new();
    writeln!(out, "Table 2 — Statistics on synchronization").unwrap();
    writeln!(out, "(single representative processor of {num_procs})").unwrap();
    writeln!(out, "{}", render_table(&rows)).unwrap();
    writeln!(
        out,
        "The last column is the fraction of acquire overhead that is memory\n\
         access latency (hidable); the paper reports ~30% for PTHOR and\n\
         ~0% elsewhere (§4.1.2)."
    )
    .unwrap();
    out
}

/// **Table 3**: statistics on branch behaviour with the paper's BTB.
pub fn table3_report(runs: &[AppRun]) -> String {
    let mut rows = vec![vec![
        "Program".to_string(),
        "% of instructions".to_string(),
        "avg distance".to_string(),
        "% predicted".to_string(),
        "mispredict distance".to_string(),
    ]];
    for run in runs {
        let t = table3(run);
        rows.push(vec![
            run.app.clone(),
            format!("{:.1}%", t.branch_percent()),
            format!("{:.1}", t.avg_branch_distance()),
            format!("{:.1}%", t.predicted_percent().unwrap_or(100.0)),
            format!(
                "{:.1}",
                t.avg_mispredict_distance().unwrap_or(f64::INFINITY)
            ),
        ]);
    }
    let mut out = String::new();
    writeln!(
        out,
        "Table 3 — Statistics on branch behaviour (2048-entry 4-way BTB)"
    )
    .unwrap();
    writeln!(out, "{}", render_table(&rows)).unwrap();
    out
}

/// The §4.1.3 read-miss issue-delay diagnostic at DS-64/RC.
pub fn miss_delay_report(runs: &[AppRun]) -> String {
    let mut rows = vec![vec![
        "Program".to_string(),
        "read misses".to_string(),
        "mean delay".to_string(),
        "> 10 cycles".to_string(),
        "> 40 cycles".to_string(),
        "> 50 cycles".to_string(),
    ]];
    for run in runs {
        let d = miss_delay(run, 64);
        rows.push(vec![
            run.app.clone(),
            d.misses.to_string(),
            format!("{:.1}", d.mean),
            format!("{:.1}%", d.over_10 * 100.0),
            format!("{:.1}%", d.over_40 * 100.0),
            format!("{:.1}%", d.over_50 * 100.0),
        ]);
    }
    let mut out = String::new();
    writeln!(
        out,
        "Read-miss issue delay, decode to memory issue (DS-64, RC, perfect\n\
         branch prediction) — the paper's §4.1.3 dependence-chain diagnostic"
    )
    .unwrap();
    writeln!(out, "{}", render_table(&rows)).unwrap();
    out
}

/// The §4.2 multiple-issue study: 4-wide RC window sweep plus the
/// RC-over-SC speedup at window 128, single- and 4-wide.
pub fn multi_issue_report(runs: &[AppRun], workers: usize) -> String {
    multi_issue_report_sched(runs, workers, Scheduler::Flat)
}

/// [`multi_issue_report`] with an explicit cell scheduler (the gain
/// probes at the end of each block are four tiny cells and stay on
/// the flat pool either way).
pub fn multi_issue_report_sched(runs: &[AppRun], workers: usize, scheduler: Scheduler) -> String {
    let mut out = String::new();
    for run in runs {
        let cols = multi_issue_sched(run, &PAPER_WINDOWS, workers, scheduler);
        writeln!(
            out,
            "{}",
            render_figure(&format!("{} — 4-wide issue under RC", run.app), &cols)
        )
        .unwrap();
        // The paper also observes the RC:SC gain is larger 4-wide.
        let gain = |width: usize, model: ConsistencyModel| {
            move || {
                run.retime(&Ds::new(DsConfig {
                    issue_width: width,
                    ..DsConfig::with_model(model).window(128)
                }))
                .breakdown
                .total() as f64
            }
        };
        use ConsistencyModel::{Rc, Sc};
        let jobs: Vec<Box<dyn FnOnce() -> f64 + Send + '_>> = vec![
            Box::new(gain(1, Sc)),
            Box::new(gain(1, Rc)),
            Box::new(gain(4, Sc)),
            Box::new(gain(4, Rc)),
        ];
        let t = run_ordered(jobs, workers);
        writeln!(
            out,
            "  RC speedup over SC at window 128: {:.2}x single-issue, {:.2}x 4-wide\n",
            t[0] / t[1],
            t[2] / t[3]
        )
        .unwrap();
    }
    out
}

/// The §6 SC/PC boosting study: non-binding prefetch and speculative
/// loads on the strict models, with RC as the ceiling.
pub fn sc_boost_report(runs: &[AppRun], workers: usize) -> String {
    let mut rows = vec![vec![
        "Program".to_string(),
        "SC".to_string(),
        "SC+pf".to_string(),
        "SC+spec".to_string(),
        "SC+both".to_string(),
        "PC".to_string(),
        "PC+both".to_string(),
        "RC".to_string(),
    ]];
    use ConsistencyModel::{Pc, Rc, Sc};
    let variants = [
        (Sc, false, false),
        (Sc, true, false),
        (Sc, false, true),
        (Sc, true, true),
        (Pc, false, false),
        (Pc, true, true),
        (Rc, false, false),
    ];
    for run in runs {
        let mut jobs: Vec<Box<dyn FnOnce() -> ExecutionResult + Send + '_>> =
            vec![Box::new(|| run.retime(&Base))];
        for (model, pf, spec) in variants {
            jobs.push(Box::new(move || {
                run.retime(&Ds::new(DsConfig {
                    nonbinding_prefetch: pf,
                    speculative_loads: spec,
                    ..DsConfig::with_model(model).window(64)
                }))
            }));
        }
        let results = run_ordered(jobs, workers);
        let base = results[0].breakdown;
        let mut row = vec![run.app.clone()];
        row.extend(
            results[1..]
                .iter()
                .map(|r| format!("{:.1}", r.breakdown.normalized_to(&base))),
        );
        rows.push(row);
    }
    let mut out = String::new();
    writeln!(
        out,
        "SC/PC boosting techniques of [Gharachorloo et al., ICPP'91] on the\n\
         DS-64 processor (execution time normalized to BASE = 100)"
    )
    .unwrap();
    writeln!(out, "{}", render_table(&rows)).unwrap();
    writeln!(
        out,
        "pf = non-binding prefetch for consistency-delayed loads;\n\
         spec = speculative load execution (best case: no rollbacks in\n\
         trace-driven re-timing). RC is the relaxed-model reference."
    )
    .unwrap();
    out
}

/// The §6 stride-prefetching conjecture: RPT coverage and its effect
/// on the blocking in-order processor.
pub fn prefetch_report(runs: &[AppRun]) -> String {
    let mut rows = vec![vec![
        "Program".to_string(),
        "misses covered".to_string(),
        "SSBR".to_string(),
        "SSBR+rpt".to_string(),
        "DS-64".to_string(),
    ]];
    for run in runs {
        let (covered_trace, stats) =
            StridePrefetcher::new(PrefetchConfig::default()).cover(run.trace());
        let base = run.retime(&Base);
        let norm =
            |r: &ExecutionResult| format!("{:.1}", r.breakdown.normalized_to(&base.breakdown));
        let ssbr = InOrder::ssbr(ConsistencyModel::Rc);
        let plain = run.retime(&ssbr);
        let with_pf = ssbr.run(&run.program, &covered_trace);
        let ds = run.retime(&Ds::new(DsConfig::rc().window(64)));
        rows.push(vec![
            run.app.clone(),
            format!("{:.0}%", stats.coverage() * 100.0),
            norm(&plain),
            norm(&with_pf),
            norm(&ds),
        ]);
    }
    let mut out = String::new();
    writeln!(
        out,
        "Baer–Chen stride prefetching (512-entry RPT) vs dynamic scheduling\n\
         (execution time normalized to BASE = 100; the paper's §6 predicts\n\
         prefetching helps LU/OCEAN but not MP3D/PTHOR/LOCUS)"
    )
    .unwrap();
    writeln!(out, "{}", render_table(&rows)).unwrap();
    out
}

/// The §5 multiple-hardware-contexts comparison.
pub fn contexts_report(runs: &[AppRun]) -> String {
    let mut rows = vec![vec![
        "Program".to_string(),
        "MC x1".to_string(),
        "MC x2".to_string(),
        "MC x4".to_string(),
        "DS-16".to_string(),
        "DS-64".to_string(),
    ]];
    for run in runs {
        let base = run.retime(&Base);
        // Multiple contexts: interleave k traces (starting from the
        // representative) and report per-context cost relative to the
        // representative's BASE time.
        let mc = |k: usize| {
            let picked: Vec<_> = (0..k)
                .map(|i| run.trace_for((run.proc + i) % run.num_procs()))
                .collect();
            let refs: Vec<&Trace> = picked.iter().map(|t| &**t).collect();
            let r = Contexts::default().run_traces(&refs);
            // Per-context cycles normalized to one BASE run.
            format!(
                "{:.1}",
                r.breakdown.total() as f64 / k as f64 * 100.0 / base.breakdown.total() as f64
            )
        };
        let ds = |w: usize| {
            let r = run.retime(&Ds::new(DsConfig::rc().window(w)));
            format!("{:.1}", r.breakdown.normalized_to(&base.breakdown))
        };
        rows.push(vec![run.app.clone(), mc(1), mc(2), mc(4), ds(16), ds(64)]);
    }
    let mut out = String::new();
    writeln!(
        out,
        "Multiple hardware contexts (blocked multithreading, 10-cycle switch)\n\
         vs dynamic scheduling; per-context execution time normalized to\n\
         BASE = 100 (lower is better)"
    )
    .unwrap();
    writeln!(out, "{}", render_table(&rows)).unwrap();
    out
}

/// The §4.2 100-cycle-latency study: the trace carries latencies, so
/// each penalty is a separate (cached) generation.
pub fn latency100_report(runner: &Runner) -> String {
    let mut out = String::new();
    for app in runner.apps() {
        let workload = runner.tier().workload(app);
        for penalty in [50u32, 100] {
            let config = SimConfig {
                mem: MemoryParams::with_miss_penalty(penalty),
                ..*runner.config()
            };
            let run = runner.run_workload(workload.as_ref(), &config);
            let cols = rc_sweep_columns(&run, &PAPER_WINDOWS, runner.workers());
            writeln!(
                out,
                "{}",
                render_figure(
                    &format!(
                        "{} — {}-cycle miss penalty (RC, DS sweep)",
                        run.app, penalty
                    ),
                    &cols
                )
            )
            .unwrap();
        }
    }
    out
}

/// The cache-associativity sensitivity check of §3.3's
/// communication-miss claim.
pub fn assoc_report(runner: &Runner) -> String {
    let mut rows = vec![vec![
        "Program".to_string(),
        "cache".to_string(),
        "ways".to_string(),
        "read misses".to_string(),
        "write misses".to_string(),
    ]];
    for app in [App::Lu, App::Mp3d] {
        let workload = runner.tier().workload(app);
        for (size, ways) in [(64 * 1024, 1), (64 * 1024, 4), (4 * 1024, 1), (4 * 1024, 4)] {
            let config = SimConfig {
                cache: CacheConfig {
                    size_bytes: size,
                    line_bytes: 16,
                    ways,
                },
                ..*runner.config()
            };
            let run = runner.run_workload(workload.as_ref(), &config);
            let stats = TraceStats::collect(run.trace(), None);
            rows.push(vec![
                run.app.clone(),
                format!("{}KB", size / 1024),
                ways.to_string(),
                stats.data.read_misses.to_string(),
                stats.data.write_misses.to_string(),
            ]);
        }
    }
    let mut out = String::new();
    writeln!(
        out,
        "Associativity sweep (representative processor's misses). At the\n\
         paper's 64KB, higher associativity changes little — misses are\n\
         communication, as §3.3 claims; at 4KB, conflicts appear and 4-way\n\
         removes a chunk of them."
    )
    .unwrap();
    writeln!(out, "{}", render_table(&rows)).unwrap();
    out
}

/// The §5 memory-bandwidth / contention caveat.
pub fn contention_report(runner: &Runner) -> String {
    let mut rows = vec![vec![
        "Program".to_string(),
        "bandwidth".to_string(),
        "BASE cycles".to_string(),
        "DS-64/RC".to_string(),
        "read hidden".to_string(),
    ]];
    for app in [App::Ocean, App::Mp3d] {
        let workload = runner.tier().workload(app);
        for bandwidth in [None, Some(8), Some(4), Some(2)] {
            let config = SimConfig {
                memory_bandwidth: bandwidth,
                ..*runner.config()
            };
            let run = runner.run_workload(workload.as_ref(), &config);
            let base = run.retime(&Base);
            let ds = run.retime(&Ds::new(DsConfig::rc().window(64)));
            let hidden = ds
                .breakdown
                .read_latency_hidden_vs(&base.breakdown)
                .unwrap_or(1.0);
            rows.push(vec![
                run.app.clone(),
                bandwidth.map_or("inf".to_string(), |b| b.to_string()),
                base.cycles().to_string(),
                format!("{:.1}", ds.breakdown.normalized_to(&base.breakdown)),
                format!("{:.0}%", hidden * 100.0),
            ]);
        }
    }
    let mut out = String::new();
    writeln!(
        out,
        "Memory-bandwidth sensitivity (concurrent misses serviced across 16\n\
         processors; 'inf' = the paper's contention-free assumption)"
    )
    .unwrap();
    writeln!(out, "{}", render_table(&rows)).unwrap();
    writeln!(
        out,
        "As bandwidth drops, queueing inflates observed miss latencies:\n\
         BASE slows down and the 64-entry window covers a smaller share of\n\
         the (now longer) stalls — the direction of the paper's caveat."
    )
    .unwrap();
    out
}

/// The §7 compiler-rescheduling conjecture. Scheduled programs differ
/// from their workload's canonical program, so these runs bypass the
/// trace cache.
pub fn sched_report(runner: &Runner) -> String {
    fn trace_of(program: Program, app: App, runner: &Runner) -> (Program, Trace) {
        let config = runner.config();
        let built = runner.tier().workload(app).build(config.num_procs);
        let out = Simulator::new(program.clone(), built.image, *config)
            .unwrap()
            .run()
            .unwrap_or_else(|e| panic!("{app}: {e}"));
        (built.verify)(&out.final_memory).unwrap_or_else(|e| panic!("{app}: {e}"));
        let p = out.busiest_proc();
        (program, out.traces[p].clone())
    }

    let mut rows = vec![vec![
        "Program".to_string(),
        "hoist/unroll".to_string(),
        "SS".to_string(),
        "SS+sched".to_string(),
        "DS-16".to_string(),
        "DS-16+sched".to_string(),
        "DS-64".to_string(),
    ]];
    for app in runner.apps() {
        let workload = runner.tier().workload(app);
        let original = workload.build(runner.config().num_procs).program;
        let (scheduled, stats, ustats) = optimize_program(&original, 4);
        let (orig_p, orig_t) = trace_of(original, app, runner);
        let (sched_p, sched_t) = trace_of(scheduled, app, runner);
        let base = Base.run(&orig_p, &orig_t);
        let norm = |p: &Program, t: &Trace, m: &dyn ProcessorModel| {
            format!(
                "{:.1}",
                m.run(p, t).breakdown.normalized_to(&base.breakdown)
            )
        };
        let ss = InOrder::ss(ConsistencyModel::Rc);
        let ds16 = Ds::new(DsConfig::rc().window(16));
        let ds64 = Ds::new(DsConfig::rc().window(64));
        rows.push(vec![
            app.name().to_string(),
            format!("{}/{}", stats.loads_hoisted, ustats.loops_unrolled),
            norm(&orig_p, &orig_t, &ss),
            norm(&sched_p, &sched_t, &ss),
            norm(&orig_p, &orig_t, &ds16),
            norm(&sched_p, &sched_t, &ds16),
            norm(&orig_p, &orig_t, &ds64),
        ]);
        eprintln!(
            "  {} done ({} loads hoisted, {} loops unrolled, {} defs renamed)",
            app.name(),
            stats.loads_hoisted,
            ustats.loops_unrolled,
            stats.defs_renamed
        );
    }
    let mut out = String::new();
    writeln!(
        out,
        "Compiler load scheduling (RC-legal, basic-block) — the paper's §7\n\
         conjecture (execution time normalized to the unscheduled BASE = 100)"
    )
    .unwrap();
    writeln!(out, "{}", render_table(&rows)).unwrap();
    writeln!(
        out,
        "Pipeline: unroll x4 -> local register renaming -> per-block list\n\
         scheduling (loads first). All transformed programs re-verify\n\
         against the workload references before being timed."
    )
    .unwrap();
    out
}

/// The reports [`dag_sweep`] merges into one scheduled task graph.
pub const DAG_REPORTS: &[&str] = &["figure3", "figure4", "summary"];

/// Result of a merged DAG sweep: the generated runs (reusable by any
/// further report in the same process), the rendered report texts in
/// request order, and the scheduler's execution stats.
pub struct DagSweep {
    /// One generated (or cache-loaded) run per selected application.
    pub runs: Vec<AppRun>,
    /// `(report name, rendered text)` in the requested order,
    /// byte-identical to the flat report functions.
    pub texts: Vec<(String, String)>,
    /// What the DAG executor observed.
    pub stats: DagStats,
    /// Re-timing cells executed (generation nodes excluded).
    pub cells: usize,
}

/// Cost estimate for a cold generation node, calibrated from the
/// `BENCH_generation` artifact: generating a trace costs one to two
/// orders of magnitude more than the most expensive re-timing cell,
/// so generation nodes carry the critical path and are started first.
const COST_GENERATE: u64 = 600;

enum NodeKind {
    Gen(usize),
    Cell {
        app: usize,
        slot: usize,
        model: ModelSpec,
    },
    /// One gang node per application: a single streamed traversal
    /// feeds every unique cell of the merged reports; results land in
    /// slots `base..base + union.len()`.
    Gang {
        app: usize,
        base: usize,
    },
}

/// Runs the requested subset of [`DAG_REPORTS`] as **one** task graph:
/// per application a generation node (collapsed to near-zero cost when
/// the trace cache already holds it) feeding one shared BASE cell and
/// every report cell of that application. Ready nodes execute in
/// upward-rank order, so app A's expensive DS cells overlap app B's
/// still-running generation instead of waiting behind the old
/// generate-everything barrier — and there is no per-report barrier at
/// all.
///
/// The BASE reference cell is identical across the merged reports
/// (the same deterministic simulation), so it runs once per app and
/// its result is shared — the cache/memo collapse of the DAG model.
///
/// # Panics
///
/// Panics if `wanted` contains a report outside [`DAG_REPORTS`], or if
/// a workload fails to simulate or verify.
pub fn dag_sweep(runner: &Runner, wanted: &[&str], workers: usize) -> DagSweep {
    dag_sweep_mode(runner, wanted, workers, RetimeMode::default_mode())
}

/// [`dag_sweep`] with an explicit [`RetimeMode`]. Under
/// [`RetimeMode::Gang`] with a trace cache (so runs are
/// archive-backed and can stream), each application contributes one
/// *gang node* computing the union of every merged report's unique
/// cells off a single streamed traversal, instead of one node per
/// cell; without a cache the per-cell shape is kept. Rendered texts
/// are byte-identical in either mode.
pub fn dag_sweep_mode(
    runner: &Runner,
    wanted: &[&str],
    workers: usize,
    mode: RetimeMode,
) -> DagSweep {
    let apps = runner.apps();
    let windows = &PAPER_WINDOWS;
    let report_specs: Vec<(&str, Vec<CellSpec>)> = wanted
        .iter()
        .map(|&name| {
            let specs = match name {
                "figure3" => figure3_cells(windows),
                "figure4" => figure4_cells(windows),
                "summary" => summary_cells(windows),
                other => panic!("{other} is not a DAG-merged report"),
            };
            (name, specs)
        })
        .collect();

    // The union of the merged reports' cells, deduplicated by model
    // (the summary rows repeat figure 3's RC cells): the gang node per
    // application computes each unique cell exactly once.
    let mut union: Vec<CellSpec> = Vec::new();
    let mut report_to_union: Vec<Vec<usize>> = Vec::new();
    for (_, specs) in &report_specs {
        let mut map = Vec::with_capacity(specs.len());
        for spec in specs {
            let u = match union.iter().position(|c| c.model == spec.model) {
                Some(u) => u,
                None => {
                    union.push(spec.clone());
                    union.len() - 1
                }
            };
            map.push(u);
        }
        report_to_union.push(map);
    }
    let gang = mode == RetimeMode::Gang && runner.cache_enabled();

    let mut task_dag = TaskDag::new();
    let mut kinds: Vec<NodeKind> = Vec::new();
    let mut slots = 0usize;
    // [app][report] -> result slot per spec index (0 = shared BASE).
    let mut report_slots: Vec<Vec<Vec<usize>>> = Vec::new();
    for (ai, &app) in apps.iter().enumerate() {
        let gen = if runner.trace_cached(app) {
            task_dag.add_collapsed(&[])
        } else {
            task_dag.add_task_kind(COST_GENERATE, &[], "generate")
        };
        kinds.push(NodeKind::Gen(ai));
        if gang {
            let base = slots;
            let cost = union.iter().map(|c| c.model.cost()).sum();
            task_dag.add_task_kind(cost, &[gen], "gang");
            kinds.push(NodeKind::Gang { app: ai, base });
            slots += union.len();
            report_slots.push(
                report_to_union
                    .iter()
                    .map(|map| map.iter().map(|&u| base + u).collect())
                    .collect(),
            );
            continue;
        }
        let base_slot = slots;
        task_dag.add_task_kind(ModelSpec::Base.cost(), &[gen], &ModelSpec::Base.kind());
        kinds.push(NodeKind::Cell {
            app: ai,
            slot: base_slot,
            model: ModelSpec::Base,
        });
        slots += 1;
        let mut per_report = Vec::new();
        for (_, specs) in &report_specs {
            let mut cell_slots = vec![base_slot];
            for spec in &specs[1..] {
                task_dag.add_task_kind(spec.model.cost(), &[gen], &spec.model.kind());
                kinds.push(NodeKind::Cell {
                    app: ai,
                    slot: slots,
                    model: spec.model,
                });
                cell_slots.push(slots);
                slots += 1;
            }
            per_report.push(cell_slots);
        }
        report_slots.push(per_report);
    }

    let gen_slots: Vec<OnceLock<AppRun>> = apps.iter().map(|_| OnceLock::new()).collect();
    let cell_results: Vec<OnceLock<ExecutionResult>> =
        (0..slots).map(|_| OnceLock::new()).collect();
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = kinds
        .iter()
        .map(|kind| -> Box<dyn FnOnce() + Send + '_> {
            match *kind {
                NodeKind::Gen(ai) => {
                    let app = apps[ai];
                    let gen_slots = &gen_slots;
                    Box::new(move || {
                        assert!(
                            gen_slots[ai].set(runner.run_app(app)).is_ok(),
                            "generation node ran twice"
                        );
                    })
                }
                NodeKind::Cell { app, slot, model } => {
                    let (gen_slots, cell_results) = (&gen_slots, &cell_results);
                    Box::new(move || {
                        let run = gen_slots[app]
                            .get()
                            .expect("scheduler ran a cell before its generation node");
                        assert!(cell_results[slot].set(model.retime(run)).is_ok());
                    })
                }
                NodeKind::Gang { app, base } => {
                    let (gen_slots, cell_results, union) = (&gen_slots, &cell_results, &union);
                    Box::new(move || {
                        let run = gen_slots[app]
                            .get()
                            .expect("scheduler ran a gang before its generation node");
                        let results = retime_gang(run, union)
                            .unwrap_or_else(|| union.iter().map(|c| c.model.retime(run)).collect());
                        for (u, r) in results.into_iter().enumerate() {
                            assert!(cell_results[base + u].set(r).is_ok());
                        }
                    })
                }
            }
        })
        .collect();
    let (_, stats) = dag::run_dag_with_stats(&task_dag, jobs, workers);

    let runs: Vec<AppRun> = gen_slots
        .into_iter()
        .map(|s| s.into_inner().expect("every generation node completed"))
        .collect();
    let results = |ai: usize, ri: usize| -> Vec<ExecutionResult> {
        report_slots[ai][ri]
            .iter()
            .map(|&s| cell_results[s].get().expect("every cell completed").clone())
            .collect()
    };
    let texts = report_specs
        .iter()
        .enumerate()
        .map(|(ri, (name, specs))| {
            let text: String = match *name {
                "summary" => {
                    let matrix: Vec<Vec<f64>> = (0..runs.len())
                        .map(|ai| hidden_row(&results(ai, ri)))
                        .collect();
                    let names: Vec<&str> = runs.iter().map(|r| r.app.as_str()).collect();
                    summary_text(&names, windows, &matrix)
                }
                "figure3" => runs
                    .iter()
                    .enumerate()
                    .map(|(ai, run)| {
                        figure3_app_text(run, &columns_from_results(specs, &results(ai, ri)))
                    })
                    .collect(),
                _ => runs
                    .iter()
                    .enumerate()
                    .map(|(ai, run)| {
                        figure4_app_text(run, &columns_from_results(specs, &results(ai, ri)))
                    })
                    .collect(),
            };
            ((*name).to_string(), text)
        })
        .collect();
    DagSweep {
        runs,
        texts,
        stats,
        cells: slots,
    }
}
