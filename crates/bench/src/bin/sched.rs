//! Evaluates the paper's closing conjecture (§7): "compiler
//! rescheduling may allow dynamic processors with small windows or
//! statically scheduled processors with non-blocking reads to
//! effectively hide read latency with simpler hardware."
//!
//! Each application is compiled twice — as written, and through the
//! RC-legal basic-block load scheduler of `lookahead-schedule` — both
//! versions are run through the multiprocessor simulator (the
//! scheduled program's results still self-verify), and the SS and
//! small-window DS processors are compared on the two traces.
//!
//! Run with `cargo run --release -p lookahead-bench --bin sched`.

use lookahead_bench::{reports, Runner};

fn main() {
    let runner = Runner::from_env();
    print!("{}", reports::sched_report(&runner));
}
