//! Evaluates the paper's closing conjecture (§7): "compiler
//! rescheduling may allow dynamic processors with small windows or
//! statically scheduled processors with non-blocking reads to
//! effectively hide read latency with simpler hardware."
//!
//! Each application is compiled twice — as written, and through the
//! RC-legal basic-block load scheduler of `lookahead-schedule` — both
//! versions are run through the multiprocessor simulator (the
//! scheduled program's results still self-verify), and the SS and
//! small-window DS processors are compared on the two traces.
//!
//! Run with `cargo run --release -p lookahead-bench --bin sched`.

use lookahead_bench::config_from_env;
use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::ProcessorModel;
use lookahead_core::ConsistencyModel;
use lookahead_harness::format::render_table;
use lookahead_isa::Program;
use lookahead_multiproc::{SimConfig, Simulator};
use lookahead_schedule::optimize_program;
use lookahead_trace::Trace;
use lookahead_workloads::App;

fn trace_of(program: Program, app: App, config: &SimConfig) -> (Program, Trace) {
    let built = if std::env::var("LOOKAHEAD_SMALL").is_ok() {
        app.small_workload().build(config.num_procs)
    } else {
        app.default_workload().build(config.num_procs)
    };
    let out = Simulator::new(program.clone(), built.image, *config)
        .unwrap()
        .run()
        .unwrap_or_else(|e| panic!("{app}: {e}"));
    (built.verify)(&out.final_memory).unwrap_or_else(|e| panic!("{app}: {e}"));
    let p = out.busiest_proc();
    (program, out.traces[p].clone())
}

fn main() {
    let config = config_from_env();
    let mut rows = vec![vec![
        "Program".to_string(),
        "hoist/unroll".to_string(),
        "SS".to_string(),
        "SS+sched".to_string(),
        "DS-16".to_string(),
        "DS-16+sched".to_string(),
        "DS-64".to_string(),
    ]];
    for app in App::ALL {
        let workload = if std::env::var("LOOKAHEAD_SMALL").is_ok() {
            app.small_workload()
        } else {
            app.default_workload()
        };
        let original = workload.build(config.num_procs).program;
        let (scheduled, stats, ustats) = optimize_program(&original, 4);
        let (orig_p, orig_t) = trace_of(original, app, &config);
        let (sched_p, sched_t) = trace_of(scheduled, app, &config);
        let base = Base.run(&orig_p, &orig_t);
        let norm = |p: &Program, t: &Trace, m: &dyn ProcessorModel| {
            format!(
                "{:.1}",
                m.run(p, t).breakdown.normalized_to(&base.breakdown)
            )
        };
        let ss = InOrder::ss(ConsistencyModel::Rc);
        let ds16 = Ds::new(DsConfig::rc().window(16));
        let ds64 = Ds::new(DsConfig::rc().window(64));
        rows.push(vec![
            app.name().to_string(),
            format!("{}/{}", stats.loads_hoisted, ustats.loops_unrolled),
            norm(&orig_p, &orig_t, &ss),
            norm(&sched_p, &sched_t, &ss),
            norm(&orig_p, &orig_t, &ds16),
            norm(&sched_p, &sched_t, &ds16),
            norm(&orig_p, &orig_t, &ds64),
        ]);
        eprintln!(
            "  {} done ({} loads hoisted, {} loops unrolled, {} defs renamed)",
            app.name(),
            stats.loads_hoisted,
            ustats.loops_unrolled,
            stats.defs_renamed
        );
    }
    println!(
        "Compiler load scheduling (RC-legal, basic-block) — the paper's §7\n\
         conjecture (execution time normalized to the unscheduled BASE = 100)"
    );
    println!("{}", render_table(&rows));
    println!(
        "Pipeline: unroll x4 -> local register renaming -> per-block list\n\
         scheduling (loads first). All transformed programs re-verify\n\
         against the workload references before being timed."
    );
}
