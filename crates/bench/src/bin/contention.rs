//! Quantifies the paper's §5 caveat: "our results are somewhat
//! optimistic since we assume a high bandwidth memory system. In
//! addition, we do not model the effect of contention."
//!
//! The simulator's `memory_bandwidth` knob bounds how many misses the
//! memory system services concurrently across all 16 processors;
//! queueing delay flows into the trace latencies, so every processor
//! model downstream feels it. We sweep bandwidth for one memory-bound
//! application and report how much of dynamic scheduling's gain
//! survives.
//!
//! Run with `cargo run --release -p lookahead-bench --bin contention`.

use lookahead_bench::{reports, Runner};

fn main() {
    let runner = Runner::from_env();
    print!("{}", reports::contention_report(&runner));
    runner.report_cache_stats();
}
