//! Quantifies the paper's §5 caveat: "our results are somewhat
//! optimistic since we assume a high bandwidth memory system. In
//! addition, we do not model the effect of contention."
//!
//! The simulator's `memory_bandwidth` knob bounds how many misses the
//! memory system services concurrently across all 16 processors;
//! queueing delay flows into the trace latencies, so every processor
//! model downstream feels it. We sweep bandwidth for one memory-bound
//! application and report how much of dynamic scheduling's gain
//! survives.
//!
//! Run with `cargo run --release -p lookahead-bench --bin contention`.

use lookahead_bench::config_from_env;
use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::model::ProcessorModel;
use lookahead_harness::format::render_table;
use lookahead_harness::pipeline::AppRun;
use lookahead_multiproc::SimConfig;
use lookahead_workloads::App;

fn main() {
    let base_config = config_from_env();
    let mut rows = vec![vec![
        "Program".to_string(),
        "bandwidth".to_string(),
        "BASE cycles".to_string(),
        "DS-64/RC".to_string(),
        "read hidden".to_string(),
    ]];
    for app in [App::Ocean, App::Mp3d] {
        for bandwidth in [None, Some(8), Some(4), Some(2)] {
            let workload = if std::env::var("LOOKAHEAD_SMALL").is_ok() {
                app.small_workload()
            } else {
                app.default_workload()
            };
            let config = SimConfig {
                memory_bandwidth: bandwidth,
                ..base_config
            };
            let run = AppRun::generate(workload.as_ref(), &config)
                .unwrap_or_else(|e| panic!("{app}: {e}"));
            let base = Base.run(&run.program, &run.trace);
            let ds = Ds::new(DsConfig::rc().window(64)).run(&run.program, &run.trace);
            let hidden = ds
                .breakdown
                .read_latency_hidden_vs(&base.breakdown)
                .unwrap_or(1.0);
            rows.push(vec![
                run.app.clone(),
                bandwidth.map_or("inf".to_string(), |b| b.to_string()),
                base.cycles().to_string(),
                format!("{:.1}", ds.breakdown.normalized_to(&base.breakdown)),
                format!("{:.0}%", hidden * 100.0),
            ]);
        }
    }
    println!(
        "Memory-bandwidth sensitivity (concurrent misses serviced across 16\n\
         processors; 'inf' = the paper's contention-free assumption)"
    );
    println!("{}", render_table(&rows));
    println!(
        "As bandwidth drops, queueing inflates observed miss latencies:\n\
         BASE slows down and the 64-entry window covers a smaller share of\n\
         the (now longer) stalls — the direction of the paper's caveat."
    );
}
