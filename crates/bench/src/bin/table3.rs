//! Regenerates **Table 3**: statistics on branch behaviour, scoring
//! every conditional branch with the paper's 2048-entry 4-way BTB.
//!
//! Run with `cargo run --release -p lookahead-bench --bin table3`.

use lookahead_bench::{config_from_env, generate_all_runs};
use lookahead_harness::experiments::table3;
use lookahead_harness::format::render_table;

fn main() {
    let config = config_from_env();
    let runs = generate_all_runs(&config);
    let mut rows = vec![vec![
        "Program".to_string(),
        "% of instructions".to_string(),
        "avg distance".to_string(),
        "% predicted".to_string(),
        "mispredict distance".to_string(),
    ]];
    for run in &runs {
        let t = table3(run);
        rows.push(vec![
            run.app.clone(),
            format!("{:.1}%", t.branch_percent()),
            format!("{:.1}", t.avg_branch_distance()),
            format!("{:.1}%", t.predicted_percent().unwrap_or(100.0)),
            format!(
                "{:.1}",
                t.avg_mispredict_distance().unwrap_or(f64::INFINITY)
            ),
        ]);
    }
    println!("Table 3 — Statistics on branch behaviour (2048-entry 4-way BTB)");
    println!("{}", render_table(&rows));
}
