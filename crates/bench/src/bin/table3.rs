//! Regenerates **Table 3**: statistics on branch behaviour, scoring
//! every conditional branch with the paper's 2048-entry 4-way BTB.
//!
//! Run with `cargo run --release -p lookahead-bench --bin table3`.

use lookahead_bench::{reports, Runner};

fn main() {
    let runner = Runner::from_env();
    let runs = runner.run_all();
    print!("{}", reports::table3_report(&runs));
    runner.report_cache_stats();
}
