//! Regenerates **Figure 4**: the effect of perfect branch prediction,
//! and of perfect prediction plus ignored data dependences, on the RC
//! dynamic-scheduling window sweep.
//!
//! Run with `cargo run --release -p lookahead-bench --bin figure4`.

use lookahead_bench::{config_from_env, generate_all_runs};
use lookahead_harness::experiments::{figure4, PAPER_WINDOWS};
use lookahead_harness::format::render_figure;

fn main() {
    let config = config_from_env();
    eprintln!(
        "Figure 4: RC, {} processors, {}-cycle miss penalty",
        config.num_procs, config.mem.miss_penalty
    );
    let runs = generate_all_runs(&config);
    for run in &runs {
        let cols = figure4(run, &PAPER_WINDOWS);
        println!(
            "{}",
            render_figure(
                &format!(
                    "Figure 4 — {} (bp = perfect branch prediction; \
                     bp+nd = also ignoring data dependences)",
                    run.app
                ),
                &cols
            )
        );
    }
}
