//! Regenerates **Figure 4**: the effect of perfect branch prediction,
//! and of perfect prediction plus ignored data dependences, on the RC
//! dynamic-scheduling window sweep.
//!
//! Run with `cargo run --release -p lookahead-bench --bin figure4`.

use lookahead_bench::{reports, Runner};

fn main() {
    let runner = Runner::from_env();
    eprintln!(
        "Figure 4: RC, {} processors, {}-cycle miss penalty",
        runner.config().num_procs,
        runner.config().mem.miss_penalty
    );
    let runs = runner.run_all();
    print!("{}", reports::figure4_report(&runs, runner.workers()));
    runner.report_cache_stats();
}
