//! Regenerates the §4.2 / \[9\] **100-cycle latency** study: the RC
//! window sweep with the miss penalty doubled. The paper's finding:
//! the same trends as at 50 cycles, but performance levels off at
//! window 128 instead of 64 (the window must exceed the latency), and
//! the relative gain from hiding latency is larger.
//!
//! Run with `cargo run --release -p lookahead-bench --bin latency100`.

use lookahead_bench::{reports, Runner};

fn main() {
    let runner = Runner::from_env();
    print!("{}", reports::latency100_report(&runner));
    runner.report_cache_stats();
}
