//! Regenerates the §4.2 / \[9\] **100-cycle latency** study: the RC
//! window sweep with the miss penalty doubled. The paper's finding:
//! the same trends as at 50 cycles, but performance levels off at
//! window 128 instead of 64 (the window must exceed the latency), and
//! the relative gain from hiding latency is larger.
//!
//! Run with `cargo run --release -p lookahead-bench --bin latency100`.

use lookahead_bench::config_from_env;
use lookahead_harness::experiments::{latency_sweep, PAPER_WINDOWS};
use lookahead_harness::format::render_figure;
use lookahead_workloads::App;

fn main() {
    let config = config_from_env();
    for app in App::ALL {
        let workload = app.default_workload();
        for penalty in [50u32, 100] {
            let (run, cols) = latency_sweep(workload.as_ref(), &config, penalty, &PAPER_WINDOWS)
                .unwrap_or_else(|e| panic!("{app}: {e}"));
            println!(
                "{}",
                render_figure(
                    &format!(
                        "{} — {}-cycle miss penalty (RC, DS sweep)",
                        run.app, penalty
                    ),
                    &cols
                )
            );
        }
    }
}
