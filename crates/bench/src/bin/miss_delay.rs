//! Regenerates the §4.1.3 **read-miss issue-delay** diagnostic: how
//! long read misses sit in the window (from decode to memory issue)
//! under RC with perfect branch prediction at window 64.
//!
//! The paper's observations: LU and OCEAN misses are rarely delayed
//! more than 10 cycles (independent misses); ~15% of MP3D's and >20%
//! of LOCUS's misses are delayed over 40 cycles; ~50% of PTHOR's over
//! 50 cycles (dependence chains).
//!
//! Run with `cargo run --release -p lookahead-bench --bin miss_delay`.

use lookahead_bench::{reports, Runner};

fn main() {
    let runner = Runner::from_env();
    let runs = runner.run_all();
    print!("{}", reports::miss_delay_report(&runs));
    runner.report_cache_stats();
}
