//! Regenerates the §4.1.3 **read-miss issue-delay** diagnostic: how
//! long read misses sit in the window (from decode to memory issue)
//! under RC with perfect branch prediction at window 64.
//!
//! The paper's observations: LU and OCEAN misses are rarely delayed
//! more than 10 cycles (independent misses); ~15% of MP3D's and >20%
//! of LOCUS's misses are delayed over 40 cycles; ~50% of PTHOR's over
//! 50 cycles (dependence chains).
//!
//! Run with `cargo run --release -p lookahead-bench --bin miss_delay`.

use lookahead_bench::{config_from_env, generate_all_runs};
use lookahead_harness::experiments::miss_delay;
use lookahead_harness::format::render_table;

fn main() {
    let config = config_from_env();
    let runs = generate_all_runs(&config);
    let mut rows = vec![vec![
        "Program".to_string(),
        "read misses".to_string(),
        "mean delay".to_string(),
        "> 10 cycles".to_string(),
        "> 40 cycles".to_string(),
        "> 50 cycles".to_string(),
    ]];
    for run in &runs {
        let d = miss_delay(run, 64);
        rows.push(vec![
            run.app.clone(),
            d.misses.to_string(),
            format!("{:.1}", d.mean),
            format!("{:.1}%", d.over_10 * 100.0),
            format!("{:.1}%", d.over_40 * 100.0),
            format!("{:.1}%", d.over_50 * 100.0),
        ]);
    }
    println!(
        "Read-miss issue delay, decode to memory issue (DS-64, RC, perfect\n\
         branch prediction) — the paper's §4.1.3 dependence-chain diagnostic"
    );
    println!("{}", render_table(&rows));
}
