//! Trace utility: generate, inspect, save and reload workload traces.
//!
//! ```text
//! trace_tool stats  <APP>              print Tables 1-3 statistics
//! trace_tool dump   <APP> <N>          print the first N trace lines
//! trace_tool save   <APP> <FILE>       write the binary trace
//! trace_tool retime <FILE> <APP>       reload a trace and re-time it
//! ```
//!
//! Run with `cargo run --release -p lookahead-bench --bin trace_tool -- stats LU`.

use lookahead_bench::{config_from_env, generate_run};
use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::model::ProcessorModel;
use lookahead_core::{Btb, BtbConfig};
use lookahead_trace::storage::{read_trace, write_trace};
use lookahead_trace::TraceStats;
use lookahead_workloads::App;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn parse_app(name: &str) -> App {
    App::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("unknown application {name}; one of MP3D, LU, PTHOR, LOCUS, OCEAN");
            std::process::exit(2);
        })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = config_from_env();
    match args.as_slice() {
        [cmd, app] if cmd == "stats" => {
            let run = generate_run(parse_app(app), &config);
            let mut btb = Btb::new(BtbConfig::PAPER);
            let stats = TraceStats::collect(&run.trace, Some(&mut btb));
            println!("{}: {} instructions (processor {})", run.app, run.trace.len(), run.proc);
            println!("  data:   {}", stats.data);
            println!("  sync:   {}", stats.sync);
            println!("  branch: {}", stats.branch);
        }
        [cmd, app, n] if cmd == "dump" => {
            let run = generate_run(parse_app(app), &config);
            let n: usize = n.parse()?;
            print!("{}", run.trace.listing(&run.program, n));
        }
        [cmd, app, file] if cmd == "save" => {
            let run = generate_run(parse_app(app), &config);
            let mut w = BufWriter::new(File::create(file)?);
            write_trace(&mut w, &run.trace)?;
            println!(
                "wrote {} entries to {file} ({} bytes)",
                run.trace.len(),
                std::fs::metadata(file)?.len()
            );
        }
        [cmd, file, app] if cmd == "retime" => {
            // The program is regenerated from the workload; the trace
            // comes from the file.
            let run = generate_run(parse_app(app), &config);
            let trace = read_trace(BufReader::new(File::open(file)?))?;
            let base = Base.run(&run.program, &trace);
            let ds = Ds::new(DsConfig::rc().window(64)).run(&run.program, &trace);
            println!("BASE:     {}", base.breakdown);
            println!("DS-64/RC: {}", ds.breakdown);
            println!(
                "normalized: {:.1}",
                ds.breakdown.normalized_to(&base.breakdown)
            );
        }
        _ => {
            eprintln!(
                "usage: trace_tool stats <APP> | dump <APP> <N> | save <APP> <FILE> | retime <FILE> <APP>"
            );
            std::process::exit(2);
        }
    }
    Ok(())
}
