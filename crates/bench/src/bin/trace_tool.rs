//! Trace utility: generate, inspect, save, reload, and profile
//! workload traces.
//!
//! ```text
//! trace_tool stats   <APP>        print Tables 1-3 statistics
//! trace_tool dump    <APP> <N>    print the first N trace lines
//! trace_tool save    <APP> <FILE> write the binary trace
//! trace_tool retime  <FILE> <APP> reload a trace and re-time it
//! trace_tool profile <APP> [N]    re-time under DS-64/RC with the
//!                                 instrumentation layer and print the
//!                                 top-N stall sites (default 10)
//! ```
//!
//! `profile` requires the `obs` cargo feature; with `--obs-out DIR`
//! (or `LOOKAHEAD_OBS_OUT=DIR`) it also writes per-run artifacts
//! (manifest.json, journal.jsonl, Perfetto-loadable trace.json).
//!
//! Run with `cargo run --release -p lookahead-bench --bin trace_tool -- stats LU`.

use lookahead_bench::{config_from_env, generate_run, obs_out_dir, write_obs_artifacts};
use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::model::ProcessorModel;
use lookahead_core::{Btb, BtbConfig};
use lookahead_obs::{StallCause, StallClass};
use lookahead_trace::storage::{read_trace, write_trace};
use lookahead_trace::TraceStats;
use lookahead_workloads::App;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

const USAGE: &str = "usage: trace_tool <COMMAND>

commands:
  stats   <APP>         print instruction-mix statistics for APP's trace
  dump    <APP> <N>     print the first N lines of APP's trace
  save    <APP> <FILE>  generate APP's trace and write it to FILE
  retime  <FILE> <APP>  reload a saved trace and re-time it under
                        BASE and DS-64/RC
  profile <APP> [N]     re-time APP under DS-64/RC with the obs
                        instrumentation layer; print the stall-cause
                        matrix, its reconciliation against the
                        execution-time breakdown, and the top-N stall
                        sites (default 10)
  spans <FILE> [--chrome OUT]
                        analyze a span JSONL file written by
                        `lookahead serve --span-log`: per-stage latency
                        table (count, total, mean, p95, max); with
                        --chrome, also write a Chrome/Perfetto
                        trace_event JSON to OUT
  promcheck <FILE>      validate FILE as Prometheus text exposition
                        (the format `/metrics` serves)

APP is one of MP3D, LU, PTHOR, LOCUS, OCEAN (case-insensitive).

options (all commands):
  --obs-out DIR   write per-run observability artifacts under DIR
                  (also via the LOOKAHEAD_OBS_OUT environment variable)
  -h, --help      show this help

environment: LOOKAHEAD_SMALL=1, LOOKAHEAD_PROCS=n, LOOKAHEAD_PAPER=1
`profile` (and artifact capture) need a build with `--features obs`.";

fn parse_app(name: &str) -> Result<App, String> {
    App::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!("unknown application {name:?}; one of MP3D, LU, PTHOR, LOCUS, OCEAN")
        })
}

/// Strips `--obs-out DIR` / `--obs-out=DIR` (consumed separately by
/// [`obs_out_dir`]) so the command match sees only positional args.
fn positional_args() -> Vec<String> {
    let mut out = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        if a == "--obs-out" {
            let _ = raw.next();
        } else if !a.starts_with("--obs-out=") {
            out.push(a);
        }
    }
    out
}

fn main() -> ExitCode {
    let args = positional_args();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(UsageError::BadInvocation(msg)) => {
            eprintln!("trace_tool: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(UsageError::Failed(msg)) => {
            eprintln!("trace_tool: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Distinguishes "you called it wrong" (exit 2) from "the operation
/// failed" (exit 1).
enum UsageError {
    BadInvocation(String),
    Failed(String),
}

fn run(args: &[String]) -> Result<(), UsageError> {
    let bad = |m: String| UsageError::BadInvocation(m);
    let failed = |m: String| UsageError::Failed(m);
    let config = config_from_env();
    match args {
        [cmd, app] if cmd == "stats" => {
            let run = generate_run(parse_app(app).map_err(bad)?, &config);
            let mut btb = Btb::new(BtbConfig::PAPER);
            let stats = TraceStats::collect(run.trace(), Some(&mut btb));
            println!(
                "{}: {} instructions (processor {})",
                run.app,
                run.trace_len(),
                run.proc
            );
            println!("  data:   {}", stats.data);
            println!("  sync:   {}", stats.sync);
            println!("  branch: {}", stats.branch);
            Ok(())
        }
        [cmd, app, n] if cmd == "dump" => {
            let n: usize = n
                .parse()
                .map_err(|_| bad(format!("dump: N must be a non-negative integer, got {n:?}")))?;
            let run = generate_run(parse_app(app).map_err(bad)?, &config);
            print!("{}", run.trace().listing(&run.program, n));
            Ok(())
        }
        [cmd, app, file] if cmd == "save" => {
            let run = generate_run(parse_app(app).map_err(bad)?, &config);
            let mut w = BufWriter::new(
                File::create(file).map_err(|e| failed(format!("cannot create {file}: {e}")))?,
            );
            write_trace(&mut w, run.trace()).map_err(|e| failed(format!("writing {file}: {e}")))?;
            drop(w);
            println!(
                "wrote {} entries to {file} ({} bytes)",
                run.trace_len(),
                std::fs::metadata(file).map(|m| m.len()).unwrap_or(0)
            );
            Ok(())
        }
        [cmd, file, app] if cmd == "retime" => {
            let app = parse_app(app).map_err(bad)?;
            // Validate the trace file before paying for generation.
            let f = File::open(file).map_err(|e| failed(format!("cannot open {file}: {e}")))?;
            let trace = read_trace(BufReader::new(f)).map_err(|e| {
                failed(format!(
                    "{file} is not a valid trace file (write one with `trace_tool save`): {e}"
                ))
            })?;
            // The program is regenerated from the workload; the trace
            // comes from the file.
            let run = generate_run(app, &config);
            let base = Base.run(&run.program, &trace);
            let ds = Ds::new(DsConfig::rc().window(64)).run(&run.program, &trace);
            println!("BASE:     {}", base.breakdown);
            println!("DS-64/RC: {}", ds.breakdown);
            println!(
                "normalized: {:.1}",
                ds.breakdown.normalized_to(&base.breakdown)
            );
            Ok(())
        }
        [cmd, rest @ ..] if cmd == "profile" => {
            let (app, top_n) = match rest {
                [app] => (app, 10usize),
                [app, n] => (
                    app,
                    n.parse().map_err(|_| {
                        bad(format!("profile: N must be a positive integer, got {n:?}"))
                    })?,
                ),
                _ => return Err(bad("profile takes <APP> [N]".into())),
            };
            profile(parse_app(app).map_err(bad)?, &config, top_n).map_err(failed)
        }
        [cmd, rest @ ..] if cmd == "spans" => {
            let (file, chrome) = match rest {
                [file] => (file, None),
                [file, flag, out] if flag == "--chrome" => (file, Some(out.as_str())),
                _ => return Err(bad("spans takes <FILE> [--chrome OUT]".into())),
            };
            spans_report(file, chrome).map_err(failed)
        }
        [cmd, file] if cmd == "promcheck" => {
            let text = std::fs::read_to_string(file)
                .map_err(|e| failed(format!("cannot read {file}: {e}")))?;
            let summary = lookahead_obs::prom::check_exposition(&text)
                .map_err(|e| failed(format!("{file}: invalid Prometheus exposition: {e}")))?;
            println!(
                "{file}: valid Prometheus text exposition ({} families, {} samples)",
                summary.families, summary.samples
            );
            Ok(())
        }
        [] => Err(bad("no command given".into())),
        [cmd, ..] => Err(bad(format!("unknown or malformed command {cmd:?}"))),
    }
}

/// One span parsed back out of a `--span-log` JSONL line.
struct LoggedSpan {
    request_id: String,
    name: String,
    start_us: u64,
    dur_us: u64,
}

fn read_spans(file: &str) -> Result<Vec<LoggedSpan>, String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let mut spans = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = lookahead_obs::json::parse_flat_object(line)
            .map_err(|e| format!("{file}:{}: not a span line: {e}", i + 1))?;
        let str_field = |k: &str| -> Result<String, String> {
            obj.get(k)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("{file}:{}: missing string field {k:?}", i + 1))
        };
        let u64_field = |k: &str| -> Result<u64, String> {
            obj.get(k)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("{file}:{}: missing numeric field {k:?}", i + 1))
        };
        spans.push(LoggedSpan {
            request_id: str_field("request_id")?,
            name: str_field("name")?,
            start_us: u64_field("start_us")?,
            dur_us: u64_field("dur_us")?,
        });
    }
    Ok(spans)
}

/// `trace_tool spans`: per-stage latency table over a span JSONL file,
/// plus an optional Chrome `trace_event` export (load it in
/// `chrome://tracing` or Perfetto; each request renders as one track).
fn spans_report(file: &str, chrome: Option<&str>) -> Result<(), String> {
    let spans = read_spans(file)?;
    if spans.is_empty() {
        return Err(format!("{file}: no spans"));
    }
    let mut requests: Vec<&str> = spans.iter().map(|s| s.request_id.as_str()).collect();
    requests.sort_unstable();
    requests.dedup();
    println!(
        "{file}: {} spans across {} requests",
        spans.len(),
        requests.len()
    );

    // Stage table: durations grouped by span name, worst-total first.
    let mut stages: std::collections::BTreeMap<&str, Vec<u64>> = std::collections::BTreeMap::new();
    for s in &spans {
        stages.entry(&s.name).or_default().push(s.dur_us);
    }
    let mut rows: Vec<(&str, Vec<u64>)> = stages.into_iter().collect();
    for (_, durs) in &mut rows {
        durs.sort_unstable();
    }
    rows.sort_by_key(|(_, durs)| std::cmp::Reverse(durs.iter().sum::<u64>()));
    println!(
        "{:<14} {:>7} {:>14} {:>12} {:>12} {:>12}",
        "stage", "count", "total_us", "mean_us", "p95_us", "max_us"
    );
    for (name, durs) in &rows {
        let total: u64 = durs.iter().sum();
        let p95 = durs[((durs.len() - 1) as f64 * 0.95).round() as usize];
        println!(
            "{name:<14} {:>7} {total:>14} {:>12} {p95:>12} {:>12}",
            durs.len(),
            total / durs.len() as u64,
            durs.last().unwrap(),
        );
    }

    if let Some(out) = chrome {
        let body = lookahead_obs::json::JsonObject::render(|o| {
            o.array("traceEvents", |a| {
                for s in &spans {
                    let tid = requests
                        .binary_search(&s.request_id.as_str())
                        .expect("deduped from spans") as u64;
                    a.object(|e| {
                        e.str("name", &s.name)
                            .str("cat", "span")
                            .str("ph", "X")
                            .u64("ts", s.start_us)
                            .u64("dur", s.dur_us)
                            .u64("pid", 1)
                            .u64("tid", tid);
                        e.object("args", |args| {
                            args.str("request_id", &s.request_id);
                        });
                    });
                }
            });
        });
        std::fs::write(out, body).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote Chrome trace_event JSON to {out}");
    }
    Ok(())
}

/// Re-times `app` under DS-64/RC with a recorder installed, checks the
/// attribution/breakdown reconciliation, and prints the profile.
fn profile(app: App, config: &lookahead_multiproc::SimConfig, top_n: usize) -> Result<(), String> {
    if !cfg!(feature = "obs") {
        return Err(
            "profile needs the instrumentation hooks; rebuild with \
             `cargo run --release -p lookahead-bench --features obs --bin trace_tool -- profile ...`"
                .into(),
        );
    }
    // Generation captures its own recorder inside generate_run when
    // --obs-out is set; the profile recorder covers only the re-timing.
    let run = generate_run(app, config);
    lookahead_obs::install(lookahead_obs::Recorder::new(run.proc as u32));
    let model = Ds::new(DsConfig::rc().window(64));
    let result = model.run(&run.program, run.trace());
    let rec = lookahead_obs::take().expect("installed above");
    let attr = &rec.attribution;
    let b = &result.breakdown;

    println!(
        "{} under {}: {} cycles ({} instructions)",
        run.app,
        model.name(),
        result.cycles(),
        result.stats.instructions
    );
    println!("\nstall matrix (cycles by class x cause):");
    for (class, cause, n) in attr.cells() {
        println!("  {:>5} / {:<15} {:>12}", class.name(), cause.name(), n);
    }
    println!(
        "  {:>5}   {:<15} {:>12}",
        "busy", "(retired)", attr.busy_cycles
    );

    // Exact reconciliation against the run's breakdown: read/write/sync
    // classes match their components; fetch stalls are folded into
    // busy, as the models charge them.
    let checks = [
        ("read", attr.class_cycles(StallClass::Read), b.read),
        ("write", attr.class_cycles(StallClass::Write), b.write),
        ("sync", attr.class_cycles(StallClass::Sync), b.sync),
        (
            "busy",
            attr.busy_cycles + attr.class_cycles(StallClass::Fetch),
            b.busy,
        ),
        ("total", attr.total_cycles(), result.cycles()),
    ];
    println!("\nreconciliation vs execution-time breakdown:");
    let mut ok = true;
    for (name, got, want) in checks {
        let mark = if got == want { "ok" } else { "MISMATCH" };
        ok &= got == want;
        println!("  {name:>5}: attribution {got:>12}  breakdown {want:>12}  {mark}");
    }

    println!("\ntop {top_n} stall sites:");
    let total_stall = attr.stall_cycles().max(1);
    for site in attr.top_sites(top_n) {
        println!(
            "  pc {:>6}  {:<15} {:>12} cycles ({:>5.1}%)",
            site.pc,
            site.cause.name(),
            site.cycles,
            100.0 * site.cycles as f64 / total_stall as f64
        );
    }
    let fetch_limited = attr.cell(StallClass::Fetch, StallCause::FetchLimit);
    if fetch_limited > 0 {
        println!("  (+ {fetch_limited} fetch-limited cycles charged to busy)");
    }

    if let Some(dir) = obs_out_dir() {
        write_obs_artifacts(
            &dir,
            &format!("{}-{}", run.app, model.name()),
            config,
            &[(
                "breakdown",
                format!(
                    "{{\"busy\":{},\"read\":{},\"write\":{},\"sync\":{},\"cycles\":{}}}",
                    b.busy,
                    b.read,
                    b.write,
                    b.sync,
                    result.cycles()
                ),
            )],
            &rec,
        );
    }

    if ok {
        Ok(())
    } else {
        Err("stall attribution does not reconcile with the breakdown (simulator bug)".into())
    }
}
