//! Unified experiment driver: regenerate any subset of the paper's
//! tables and figures in one process, generating (or cache-loading)
//! each application trace exactly once.
//!
//! ```text
//! cargo run --release -p lookahead-bench --bin lookahead -- summary figure3
//! cargo run --release -p lookahead-bench --bin lookahead -- all
//! cargo run --release -p lookahead-bench --bin lookahead -- serve
//! cargo run --release -p lookahead-bench --bin lookahead -- query /v1/summary
//! ```
//!
//! `serve` and `query` expose the same suite as a service (see
//! `lookahead_bench::serve_cli`); everything below concerns the report
//! driver.
//!
//! Each report's stdout is byte-identical to the standalone binary of
//! the same name (`cargo run --bin summary`, ...); the driver adds
//! shared trace generation, the content-addressed trace cache and the
//! parallel re-timing pool on top. Progress, timings and cache
//! accounting go to stderr; report text goes to stdout.
//!
//! Options:
//!
//! ```text
//! --cache-dir DIR   cache traces under DIR (default: target/trace-cache,
//!                   or the LOOKAHEAD_CACHE environment variable)
//! --no-cache        disable the trace cache
//! --jobs N          worker threads (default: LOOKAHEAD_JOBS or all cores)
//! --obs-out DIR     write observability artifacts under DIR
//! -h, --help        show this help
//! ```
//!
//! Environment: `LOOKAHEAD_SMALL=1`, `LOOKAHEAD_PAPER=1`,
//! `LOOKAHEAD_PROCS=n`, `LOOKAHEAD_APPS=LU,MP3D`,
//! `LOOKAHEAD_CACHE=DIR|off`, `LOOKAHEAD_JOBS=n`.

use lookahead_bench::{cache_from_env_or, config_from_env, reports, Runner, SizeTier};
use lookahead_harness::cache::TraceCache;
use lookahead_harness::dag::Scheduler;
use lookahead_harness::experiments::{RetimeMode, RETIME_ENV};
use lookahead_harness::parallel;
use lookahead_harness::pipeline::AppRun;
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

/// Reports that re-time the shared application runs.
const SHARED: &[&str] = &[
    "figure3",
    "figure4",
    "summary",
    "table1",
    "table2",
    "table3",
    "miss_delay",
    "multi_issue",
    "sc_boost",
    "prefetch",
    "contexts",
];

/// Reports that generate their own memory-system variants (still
/// through the runner's cache) or need no runs at all.
const STANDALONE: &[&str] = &["figure1", "latency100", "assoc", "contention", "sched"];

const DEFAULT_CACHE_DIR: &str = "target/trace-cache";

const USAGE: &str = "usage: lookahead [OPTIONS] REPORT [REPORT ...]
       lookahead serve [OPTIONS]    serve the suite over HTTP
       lookahead query TARGET       answer one service query, print body
       lookahead bench [OPTIONS]    benchmark the re-timing engines
       lookahead bench generation   time cold trace generation, both engines
       lookahead bench memory       compare streamed vs materialized peak RSS
       lookahead bench obs          measure request-tracing overhead
       lookahead bench dag          compare DAG vs flat sweep scheduling
       lookahead bench sweep        compare gang vs per-cell re-timing
       lookahead bench serve        compare reactor vs legacy transports

Regenerates the requested tables and figures, generating or
cache-loading each application trace exactly once per process.
(`lookahead serve --help` / `lookahead query --help` for the service.)

reports:
  figure1 figure3 figure4 summary table1 table2 table3 miss_delay
  multi_issue sc_boost prefetch contexts latency100 assoc contention
  sched, or `all` for every one of them

options:
  --cache-dir DIR  cache traces under DIR (default: target/trace-cache,
                   or the LOOKAHEAD_CACHE environment variable)
  --no-cache       disable the trace cache
  --jobs N         worker threads (default: LOOKAHEAD_JOBS or all cores;
                   the flag wins over the environment variable)
  --scheduler S    sweep scheduler: dag (critical-path rank, generation
                   overlapped with re-timing; the default) or flat (the
                   plain worker pool). Output is byte-identical either
                   way; the flag wins over LOOKAHEAD_SCHEDULER.
  --retime M       sweep re-timing path: gang (one streamed traversal
                   per application feeds every unique cell; the
                   default, degrading to per-cell on runs that cannot
                   stream) or per-cell (one traversal per cell). Output
                   is byte-identical either way; the flag wins over
                   LOOKAHEAD_RETIME.
  --tier NAME      workload size tier: small, default, paper or large
                   (default: from the environment, see below)
  --obs-out DIR    write per-run observability artifacts under DIR
  -h, --help       show this help

environment: LOOKAHEAD_SMALL=1, LOOKAHEAD_PAPER=1, LOOKAHEAD_LARGE=1,
LOOKAHEAD_PROCS=n, LOOKAHEAD_APPS=LU,MP3D, LOOKAHEAD_CACHE=DIR|off,
LOOKAHEAD_JOBS=n, LOOKAHEAD_SCHEDULER=dag|flat,
LOOKAHEAD_RETIME=gang|per-cell";

struct Options {
    reports: Vec<String>,
    cache_dir: Option<String>,
    no_cache: bool,
    jobs: Option<usize>,
    tier: Option<SizeTier>,
    scheduler: Option<Scheduler>,
    retime: Option<RetimeMode>,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        reports: Vec::new(),
        cache_dir: None,
        no_cache: false,
        jobs: None,
        tier: None,
        scheduler: None,
        retime: None,
    };
    let known: Vec<&str> = SHARED.iter().chain(STANDALONE).copied().collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let value = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "-h" | "--help" => return Ok(None),
            "--no-cache" => opts.no_cache = true,
            "--cache-dir" => opts.cache_dir = Some(value(&mut it, "--cache-dir")?),
            "--jobs" => {
                opts.jobs = Some(parallel::parse_jobs(&value(&mut it, "--jobs")?)?);
            }
            "--tier" => {
                opts.tier = Some(parse_tier(&value(&mut it, "--tier")?)?);
            }
            "--scheduler" => {
                opts.scheduler = Some(parse_scheduler(&value(&mut it, "--scheduler")?)?);
            }
            "--retime" => {
                opts.retime = Some(parse_retime(&value(&mut it, "--retime")?)?);
            }
            "--obs-out" => {
                // Consumed here, parsed by obs_out_dir() from argv.
                value(&mut it, "--obs-out")?;
            }
            _ => {
                if let Some(v) = a.strip_prefix("--cache-dir=") {
                    opts.cache_dir = Some(v.to_string());
                } else if let Some(v) = a.strip_prefix("--jobs=") {
                    opts.jobs = Some(parallel::parse_jobs(v)?);
                } else if let Some(v) = a.strip_prefix("--tier=") {
                    opts.tier = Some(parse_tier(v)?);
                } else if let Some(v) = a.strip_prefix("--scheduler=") {
                    opts.scheduler = Some(parse_scheduler(v)?);
                } else if let Some(v) = a.strip_prefix("--retime=") {
                    opts.retime = Some(parse_retime(v)?);
                } else if a.strip_prefix("--obs-out=").is_some() {
                    // Parsed by obs_out_dir().
                } else if a == "all" {
                    for r in &known {
                        if !opts.reports.iter().any(|x| x == r) {
                            opts.reports.push((*r).to_string());
                        }
                    }
                } else if known.contains(&a.as_str()) {
                    if !opts.reports.contains(a) {
                        opts.reports.push(a.clone());
                    }
                } else {
                    return Err(format!("unknown report or option {a:?}"));
                }
            }
        }
    }
    if opts.reports.is_empty() {
        return Err("no reports requested".to_string());
    }
    Ok(Some(opts))
}

fn parse_tier(name: &str) -> Result<SizeTier, String> {
    SizeTier::from_name(name)
        .ok_or_else(|| format!("unknown tier {name:?}; valid tiers: small, default, paper, large"))
}

fn parse_scheduler(name: &str) -> Result<Scheduler, String> {
    Scheduler::from_name(name)
        .ok_or_else(|| format!("unknown scheduler {name:?}; valid schedulers: flat, dag"))
}

fn parse_retime(name: &str) -> Result<RetimeMode, String> {
    RetimeMode::from_name(name)
        .ok_or_else(|| format!("unknown re-timing mode {name:?}; valid modes: gang, per-cell"))
}

fn cache_for(opts: &Options) -> Option<TraceCache> {
    if opts.no_cache {
        return None;
    }
    match &opts.cache_dir {
        Some(dir) => Some(TraceCache::new(dir.clone())),
        None => cache_from_env_or(Some(DEFAULT_CACHE_DIR)),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => return lookahead_bench::serve_cli::serve_main(&args[1..]),
        Some("query") => return lookahead_bench::serve_cli::query_main(&args[1..]),
        Some("bench") => {
            return match args.get(1).map(String::as_str) {
                Some("generation") => lookahead_bench::generation::generation_main(&args[2..]),
                Some("memory") => lookahead_bench::memprobe::memory_main(&args[2..]),
                Some("obs") => lookahead_bench::obsbench::obs_main(&args[2..]),
                Some("dag") => lookahead_bench::dagbench::dag_main(&args[2..]),
                Some("sweep") => lookahead_bench::sweepbench::sweep_main(&args[2..]),
                Some("serve") => lookahead_bench::servebench::serve_bench_main(&args[2..]),
                _ => lookahead_bench::retiming::bench_main(&args[1..]),
            }
        }
        _ => {}
    }
    let opts = match parse_args(&args) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Fail-fast knob resolution: the flag wins, then the environment,
    // then the DAG default (output is byte-identical either way).
    let scheduler = match opts.scheduler {
        Some(s) => s,
        None => match Scheduler::from_env() {
            Ok(s) => s.unwrap_or(Scheduler::Dag),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
    };
    // The re-timing path: the flag wins and is published through the
    // environment, so every downstream default-mode callsite (sweep
    // helpers, serve) picks the same path. A malformed environment
    // value fails fast like every other knob.
    match opts.retime {
        Some(mode) => std::env::set_var(RETIME_ENV, mode.name()),
        None => {
            if let Err(e) = RetimeMode::from_env() {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let workers = opts.jobs.unwrap_or_else(parallel::default_workers);
    let runner = Runner::new(
        config_from_env(),
        opts.tier.unwrap_or_else(SizeTier::from_env),
        cache_for(&opts),
        workers,
    );
    eprintln!(
        "lookahead: {} processors, {}-cycle miss penalty, tier {}, {} workers, cache {}, \
         scheduler {}, retime {}",
        runner.config().num_procs,
        runner.config().mem.miss_penalty,
        runner.tier().name(),
        runner.workers(),
        if runner.cache_enabled() { "on" } else { "off" },
        scheduler.name(),
        RetimeMode::default_mode().name(),
    );

    let total = Instant::now();
    // The shared application runs, generated (or cache-loaded) at most
    // once per process, lazily on the first report that needs them.
    let mut shared_runs: Option<Vec<AppRun>> = None;

    // Under the DAG scheduler, the figure3/figure4/summary sweeps and
    // trace generation merge into one task graph: generation nodes
    // overlap re-timing cells across applications and the per-report
    // barriers disappear. Texts come out byte-identical to the flat
    // path and the generated runs seed every other report.
    let mut dag_texts: HashMap<String, String> = HashMap::new();
    if scheduler == Scheduler::Dag {
        let wanted: Vec<&str> = opts
            .reports
            .iter()
            .map(String::as_str)
            .filter(|r| reports::DAG_REPORTS.contains(r))
            .collect();
        if !wanted.is_empty() {
            let started = Instant::now();
            let sweep = reports::dag_sweep(&runner, &wanted, workers);
            eprintln!(
                "dag sweep ({}): {} cells + {} generation nodes ({} collapsed), \
                 critical path {} / total cost {}, peak ready {}, {:.2}s",
                wanted.join(" "),
                sweep.cells,
                sweep.runs.len(),
                sweep.stats.collapsed,
                sweep.stats.critical_path,
                sweep.stats.total_cost,
                sweep.stats.peak_ready,
                started.elapsed().as_secs_f64(),
            );
            dag_texts = sweep.texts.into_iter().collect();
            shared_runs = Some(sweep.runs);
        }
    }
    macro_rules! shared {
        () => {
            shared_runs
                .get_or_insert_with(|| runner.run_all())
                .as_slice()
        };
    }

    for name in &opts.reports {
        let started = Instant::now();
        let text = match name.as_str() {
            _ if dag_texts.contains_key(name) => dag_texts[name].clone(),
            "figure1" => reports::figure1_report(),
            "figure3" => reports::figure3_report(shared!(), workers),
            "figure4" => reports::figure4_report(shared!(), workers),
            "summary" => reports::summary_report(shared!(), workers),
            "table1" => reports::table1_report(shared!(), runner.config().num_procs),
            "table2" => reports::table2_report(shared!(), runner.config().num_procs),
            "table3" => reports::table3_report(shared!()),
            "miss_delay" => reports::miss_delay_report(shared!()),
            "multi_issue" => reports::multi_issue_report_sched(shared!(), workers, scheduler),
            "sc_boost" => reports::sc_boost_report(shared!(), workers),
            "prefetch" => reports::prefetch_report(shared!()),
            "contexts" => reports::contexts_report(shared!()),
            "latency100" => reports::latency100_report(&runner),
            "assoc" => reports::assoc_report(&runner),
            "contention" => reports::contention_report(&runner),
            "sched" => reports::sched_report(&runner),
            other => unreachable!("unvalidated report {other}"),
        };
        print!("{text}");
        eprintln!("{name}: {:.2}s", started.elapsed().as_secs_f64());
    }

    runner.report_cache_stats();
    eprintln!("total: {:.2}s", total.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
