//! Regenerates the §4.2 / \[9\] **multiple-issue** study: the RC window
//! sweep with 4-wide decode/issue/retirement. The paper's finding:
//! performance still improves from window 64 to 128 (computation
//! speeds up while memory latency stays at 50 cycles, so a larger
//! window is needed to cover it), and the relative gain of RC over SC
//! grows with multiple issue.
//!
//! Run with `cargo run --release -p lookahead-bench --bin multi_issue`.

use lookahead_bench::{reports, Runner};

fn main() {
    let runner = Runner::from_env();
    let runs = runner.run_all();
    print!("{}", reports::multi_issue_report(&runs, runner.workers()));
    runner.report_cache_stats();
}
