//! Regenerates the §4.2 / \[9\] **multiple-issue** study: the RC window
//! sweep with 4-wide decode/issue/retirement. The paper's finding:
//! performance still improves from window 64 to 128 (computation
//! speeds up while memory latency stays at 50 cycles, so a larger
//! window is needed to cover it), and the relative gain of RC over SC
//! grows with multiple issue.
//!
//! Run with `cargo run --release -p lookahead-bench --bin multi_issue`.

use lookahead_bench::{config_from_env, generate_all_runs};
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::model::ProcessorModel;
use lookahead_core::ConsistencyModel;
use lookahead_harness::experiments::{multi_issue, PAPER_WINDOWS};
use lookahead_harness::format::render_figure;

fn main() {
    let config = config_from_env();
    let runs = generate_all_runs(&config);
    for run in &runs {
        let cols = multi_issue(run, &PAPER_WINDOWS);
        println!(
            "{}",
            render_figure(&format!("{} — 4-wide issue under RC", run.app), &cols)
        );
        // The paper also observes the RC:SC gain is larger 4-wide.
        let gain = |width: usize, model: ConsistencyModel| {
            let r = Ds::new(DsConfig {
                issue_width: width,
                ..DsConfig::with_model(model).window(128)
            })
            .run(&run.program, &run.trace);
            r.breakdown.total()
        };
        let sc1 = gain(1, ConsistencyModel::Sc) as f64;
        let rc1 = gain(1, ConsistencyModel::Rc) as f64;
        let sc4 = gain(4, ConsistencyModel::Sc) as f64;
        let rc4 = gain(4, ConsistencyModel::Rc) as f64;
        println!(
            "  RC speedup over SC at window 128: {:.2}x single-issue, {:.2}x 4-wide\n",
            sc1 / rc1,
            sc4 / rc4
        );
    }
}
