//! Cache-associativity sensitivity: the paper fixes 64 KB
//! direct-mapped caches and notes misses "mainly reflect inherent
//! communication misses". This sweep checks that claim for our scaled
//! workloads by increasing associativity (which removes conflict
//! misses but cannot touch communication misses), at the paper size
//! and at a deliberately undersized cache where conflicts matter.
//!
//! Run with `cargo run --release -p lookahead-bench --bin assoc`.

use lookahead_bench::{reports, Runner};

fn main() {
    let runner = Runner::from_env();
    print!("{}", reports::assoc_report(&runner));
    runner.report_cache_stats();
}
