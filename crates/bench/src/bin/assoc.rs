//! Cache-associativity sensitivity: the paper fixes 64 KB
//! direct-mapped caches and notes misses "mainly reflect inherent
//! communication misses". This sweep checks that claim for our scaled
//! workloads by increasing associativity (which removes conflict
//! misses but cannot touch communication misses), at the paper size
//! and at a deliberately undersized cache where conflicts matter.
//!
//! Run with `cargo run --release -p lookahead-bench --bin assoc`.

use lookahead_bench::config_from_env;
use lookahead_harness::format::render_table;
use lookahead_harness::pipeline::AppRun;
use lookahead_memsys::CacheConfig;
use lookahead_multiproc::SimConfig;
use lookahead_trace::TraceStats;
use lookahead_workloads::App;

fn main() {
    let base = config_from_env();
    let mut rows = vec![vec![
        "Program".to_string(),
        "cache".to_string(),
        "ways".to_string(),
        "read misses".to_string(),
        "write misses".to_string(),
    ]];
    for app in [App::Lu, App::Mp3d] {
        for (size, ways) in [(64 * 1024, 1), (64 * 1024, 4), (4 * 1024, 1), (4 * 1024, 4)] {
            let workload = if std::env::var("LOOKAHEAD_SMALL").is_ok() {
                app.small_workload()
            } else {
                app.default_workload()
            };
            let config = SimConfig {
                cache: CacheConfig {
                    size_bytes: size,
                    line_bytes: 16,
                    ways,
                },
                ..base
            };
            let run = AppRun::generate(workload.as_ref(), &config)
                .unwrap_or_else(|e| panic!("{app}: {e}"));
            let stats = TraceStats::collect(&run.trace, None);
            rows.push(vec![
                run.app.clone(),
                format!("{}KB", size / 1024),
                ways.to_string(),
                stats.data.read_misses.to_string(),
                stats.data.write_misses.to_string(),
            ]);
        }
    }
    println!(
        "Associativity sweep (representative processor's misses). At the\n\
         paper's 64KB, higher associativity changes little — misses are\n\
         communication, as §3.3 claims; at 4KB, conflicts appear and 4-way\n\
         removes a chunk of them."
    );
    println!("{}", render_table(&rows));
}
