//! Load generator for the experiment service: mixed hot/cold traffic,
//! exact latency percentiles split into queue wait vs service time
//! (from the server's `Server-Timing` header), an optional p99 SLO
//! gate, and cache-hit / coalescing rates read back from
//! `/metrics.json`.
//!
//! ```text
//! # Against an in-process server (cold cache, small tier):
//! LOOKAHEAD_SMALL=1 cargo run --release --bin loadgen -- --spawn --clients 32
//!
//! # Against an already-running server:
//! cargo run --release --bin loadgen -- --addr 127.0.0.1:7417
//! ```
//!
//! Traffic model: every client thread issues `--requests` GETs; odd
//! request indices hit the *hot* target (the first of the pool), even
//! ones walk the pool round-robin, so the mix exercises both the body
//! memo (hot) and cold-key coalescing (the pool, hit by many clients
//! at once). The assignment is deterministic — a run is reproducible.
//!
//! With `--expect-single-flight` (meaningful against a cold, spawned
//! server) the run fails unless the service ran **exactly one
//! simulation per distinct application** and every request is
//! accounted to one body flight — the acceptance check for the
//! single-flight contract under real concurrency.

use lookahead_bench::client::{get, get_with_headers, ClientError};
use lookahead_bench::servebench::{run_load, LoadOptions};
use lookahead_bench::{config_from_env, fail_fast};
use lookahead_harness::parallel;
use lookahead_harness::SizeTier;
use lookahead_serve::{
    parse_serve_addr, serve_addr_from_env, ExperimentService, Server, ServerConfig, ServiceConfig,
};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const USAGE: &str = "usage: loadgen [OPTIONS]

Drives mixed hot/cold traffic at an experiment service and reports
latency percentiles plus cache-hit and coalescing rates.

options:
  --addr IP:PORT          target server (default: LOOKAHEAD_SERVE_ADDR
                          or 127.0.0.1:7417)
  --spawn                 boot an in-process server (cold cache) on a
                          free port and drive that instead
  --clients N             concurrent client threads (default 32)
  --requests N            requests per client (default 4)
  --connections N         drive N concurrent connections from one
                          nonblocking epoll thread instead of N client
                          threads (scales to thousands)
  --keepalive             with --connections: reuse each connection for
                          all its requests (HTTP/1.1 keep-alive)
                          instead of reconnecting per request
  --expect-single-flight  fail unless exactly one simulation ran per
                          distinct app and all requests coalesced
  --slo-p99-ms MS         fail the run when the measured p99 latency
                          exceeds MS milliseconds
  -h, --help              show this help

environment: LOOKAHEAD_SMALL=1, LOOKAHEAD_PROCS=n, LOOKAHEAD_JOBS=n,
LOOKAHEAD_SERVE_ADDR";

/// The target pool: two applications (two distinct generation keys)
/// across window sizes. `pool()[0]` is the hot target.
fn pool() -> Vec<String> {
    let mut targets = Vec::new();
    for app in ["lu", "mp3d"] {
        for window in [16usize, 64, 256] {
            targets.push(format!("/v1/experiments?app={app}&window={window}"));
        }
    }
    targets
}

const DISTINCT_APPS: u64 = 2;

struct Options {
    addr: Option<String>,
    spawn: bool,
    clients: usize,
    requests: usize,
    connections: Option<usize>,
    keepalive: bool,
    expect_single_flight: bool,
    slo_p99_ms: Option<f64>,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        addr: None,
        spawn: false,
        clients: 32,
        requests: 4,
        connections: None,
        keepalive: false,
        expect_single_flight: false,
        slo_p99_ms: None,
    };
    let mut it = args.iter();
    let positive = |v: &str, flag: &str| -> Result<usize, String> {
        v.parse::<usize>()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("{flag} must be a positive integer, got {v:?}"))
    };
    let positive_ms = |v: &str, flag: &str| -> Result<f64, String> {
        v.parse::<f64>()
            .ok()
            .filter(|n| *n > 0.0 && n.is_finite())
            .ok_or_else(|| format!("{flag} must be a positive number of milliseconds, got {v:?}"))
    };
    while let Some(a) = it.next() {
        let value = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "-h" | "--help" => return Ok(None),
            "--spawn" => opts.spawn = true,
            "--keepalive" => opts.keepalive = true,
            "--expect-single-flight" => opts.expect_single_flight = true,
            "--addr" => opts.addr = Some(value(&mut it, "--addr")?),
            "--clients" => opts.clients = positive(&value(&mut it, "--clients")?, "--clients")?,
            "--requests" => opts.requests = positive(&value(&mut it, "--requests")?, "--requests")?,
            "--connections" => {
                opts.connections = Some(positive(
                    &value(&mut it, "--connections")?,
                    "--connections",
                )?)
            }
            "--slo-p99-ms" => {
                opts.slo_p99_ms = Some(positive_ms(
                    &value(&mut it, "--slo-p99-ms")?,
                    "--slo-p99-ms",
                )?)
            }
            _ => {
                if let Some(v) = a.strip_prefix("--addr=") {
                    opts.addr = Some(v.to_string());
                } else if let Some(v) = a.strip_prefix("--clients=") {
                    opts.clients = positive(v, "--clients")?;
                } else if let Some(v) = a.strip_prefix("--requests=") {
                    opts.requests = positive(v, "--requests")?;
                } else if let Some(v) = a.strip_prefix("--connections=") {
                    opts.connections = Some(positive(v, "--connections")?);
                } else if let Some(v) = a.strip_prefix("--slo-p99-ms=") {
                    opts.slo_p99_ms = Some(positive_ms(v, "--slo-p99-ms")?);
                } else {
                    return Err(format!("unknown option {a:?}"));
                }
            }
        }
    }
    if opts.spawn && opts.addr.is_some() {
        return Err("--spawn and --addr are mutually exclusive".to_string());
    }
    if opts.keepalive && opts.connections.is_none() {
        return Err("--keepalive needs --connections (the epoll engine)".to_string());
    }
    Ok(Some(opts))
}

/// Exact percentile of a sorted sample (nearest-rank on n-1).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// A counter out of the `/metrics.json` JSON (flat `"path":value`), 0
/// when absent.
fn metric(body: &str, path: &str) -> u64 {
    let needle = format!("\"{path}\":");
    match body.find(&needle) {
        None => 0,
        Some(at) => body[at + needle.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap_or(0),
    }
}

/// One stage's duration out of a `Server-Timing` header value
/// (`queue;dur=0.042, parse;dur=0.003, handler;dur=12.8`), in
/// microseconds.
fn server_timing_us(value: &str, stage: &str) -> Option<u64> {
    value.split(',').find_map(|part| {
        let ms: f64 = part
            .trim()
            .strip_prefix(stage)?
            .strip_prefix(";dur=")?
            .parse()
            .ok()?;
        Some((ms * 1000.0) as u64)
    })
}

/// The original thread-per-client driver: one blocking client thread
/// per slot, fired through a barrier so cold keys really do see
/// concurrent identical requests.
fn run_threaded(
    opts: &Options,
    addr: std::net::SocketAddr,
    targets: &[String],
    errors: &AtomicU64,
) -> Vec<(u64, Option<u64>, Option<u64>)> {
    eprintln!(
        "loadgen: {} clients x {} requests against http://{addr} \
         ({} distinct targets, hot target {})",
        opts.clients,
        opts.requests,
        targets.len(),
        targets[0],
    );
    let barrier = Barrier::new(opts.clients);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|client| {
                let barrier = &barrier;
                s.spawn(move || {
                    let mut mine = Vec::with_capacity(opts.requests);
                    barrier.wait();
                    for r in 0..opts.requests {
                        let global = client * opts.requests + r;
                        let target = if global % 2 == 1 {
                            &targets[0]
                        } else {
                            &targets[global / 2 % targets.len()]
                        };
                        let t0 = Instant::now();
                        match get_with_headers(addr, target) {
                            Ok(reply) if reply.status == 200 => {
                                let timing = reply.header("Server-Timing");
                                mine.push((
                                    t0.elapsed().as_micros() as u64,
                                    timing.and_then(|t| server_timing_us(t, "queue")),
                                    timing.and_then(|t| server_timing_us(t, "handler")),
                                ));
                            }
                            Ok(reply) => {
                                // The request id joins this line to the
                                // server's own log of the failure.
                                eprintln!(
                                    "loadgen: {} for {target} (request_id={}): {}",
                                    reply.status,
                                    reply.header("X-Request-Id").unwrap_or("?"),
                                    reply.body
                                );
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e @ ClientError::Disconnected) => {
                                // A draining server closes in-flight
                                // sockets; report it as what it is.
                                eprintln!("loadgen: {target}: {e}");
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                eprintln!("loadgen: {target} failed: {e}");
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Either an in-process server (cold cache, free port) or a remote.
    let mut spawned: Option<(lookahead_serve::ShutdownHandle, std::thread::JoinHandle<_>)> = None;
    let addr = if opts.spawn {
        let jobs = parallel::default_workers();
        let service = Arc::new(ExperimentService::new(
            ServiceConfig {
                default_tier: SizeTier::from_env(),
                sim: config_from_env(),
                retime_workers: jobs,
                ..ServiceConfig::default()
            },
            None,
        ));
        let server = match Server::bind(ServerConfig {
            addr: "127.0.0.1:0".parse().expect("loopback"),
            threads: opts.clients.min(16),
            queue_depth: opts.clients.max(64),
            ..ServerConfig::default()
        }) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot bind: {e}");
                return ExitCode::FAILURE;
            }
        };
        let addr = server.local_addr();
        let handle = server.handle();
        spawned = Some((handle, std::thread::spawn(move || server.run(service))));
        addr
    } else {
        match &opts.addr {
            Some(a) => fail_fast(parse_serve_addr(a)),
            None => fail_fast(serve_addr_from_env()),
        }
    };

    let targets = pool();
    let concurrency = opts.connections.unwrap_or(opts.clients);
    let total_requests = concurrency * opts.requests;
    let errors = AtomicU64::new(0);
    let started = Instant::now();
    // (total, queue wait, handler service time) per successful request,
    // the latter two from the server's Server-Timing header.
    let samples: Vec<(u64, Option<u64>, Option<u64>)> = if let Some(connections) = opts.connections
    {
        // The epoll engine: every connection is a nonblocking socket on
        // one reactor thread, so thousands of concurrent connections
        // cost fds, not threads.
        eprintln!(
            "loadgen: {connections} connections x {} requests (epoll engine, keep-alive {}) \
             against http://{addr} ({} distinct targets, hot target {})",
            opts.requests,
            if opts.keepalive { "on" } else { "off" },
            targets.len(),
            targets[0],
        );
        let report = run_load(&LoadOptions {
            keepalive: opts.keepalive,
            targets: targets.clone(),
            ..LoadOptions::new(addr, connections, opts.requests)
        });
        errors.fetch_add(report.errors, Ordering::Relaxed);
        if opts.keepalive {
            eprintln!(
                "loadgen: {} responses arrived on a reused connection",
                report.reused
            );
        }
        report
            .samples
            .iter()
            .map(|s| (s.total_us, s.queue_us, s.handler_us))
            .collect()
    } else {
        run_threaded(&opts, addr, &targets, &errors)
    };
    let elapsed = started.elapsed().as_secs_f64();
    let mut latencies: Vec<u64> = samples.iter().map(|(t, _, _)| *t).collect();
    let mut queue_waits: Vec<u64> = samples.iter().filter_map(|(_, q, _)| *q).collect();
    let mut services: Vec<u64> = samples.iter().filter_map(|(_, _, h)| *h).collect();
    latencies.sort_unstable();
    queue_waits.sort_unstable();
    services.sort_unstable();

    let metrics = match get(addr, "/metrics.json") {
        Ok((200, body)) => body,
        other => {
            eprintln!("error: /metrics.json failed: {other:?}");
            String::new()
        }
    };
    if let Some((handle, join)) = spawned {
        handle.shutdown();
        let _ = join.join();
    }

    let errors = errors.load(Ordering::Relaxed);
    let generations = metric(&metrics, "serve.runs.generations");
    let disk_hits = metric(&metrics, "serve.runs.disk_hits");
    let memo_hits = metric(&metrics, "serve.runs.memo_hits");
    let run_coalesced = metric(&metrics, "serve.runs.coalesced");
    let led = metric(&metrics, "serve.flights.led");
    let coalesced = metric(&metrics, "serve.flights.coalesced");
    let memoized = metric(&metrics, "serve.flights.memoized");
    let flights = led + coalesced + memoized;
    let pct = |part: u64, whole: u64| {
        if whole == 0 {
            0.0
        } else {
            100.0 * part as f64 / whole as f64
        }
    };

    println!(
        "requests   {} ok, {errors} failed in {elapsed:.2}s ({:.0} req/s)",
        latencies.len(),
        latencies.len() as f64 / elapsed.max(1e-9),
    );
    println!(
        "latency    p50={}us p95={}us p99={}us max={}us",
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
        latencies.last().copied().unwrap_or(0),
    );
    if !queue_waits.is_empty() {
        println!(
            "queue wait p50={}us p95={}us p99={}us (server-side, {} samples)",
            percentile(&queue_waits, 50.0),
            percentile(&queue_waits, 95.0),
            percentile(&queue_waits, 99.0),
            queue_waits.len(),
        );
        println!(
            "service    p50={}us p95={}us p99={}us (handler time, {} samples)",
            percentile(&services, 50.0),
            percentile(&services, 95.0),
            percentile(&services, 99.0),
            services.len(),
        );
    }
    println!(
        "runs       generations={generations} disk_hits={disk_hits} \
         memo_hits={memo_hits} coalesced={run_coalesced}"
    );
    println!(
        "flights    led={led} coalesced={coalesced} memoized={memoized} \
         (body-cache rate {:.1}%, coalescing rate {:.1}%)",
        pct(coalesced + memoized, flights),
        pct(coalesced, flights),
    );

    if errors > 0 {
        eprintln!("loadgen: {errors} request(s) failed");
        return ExitCode::FAILURE;
    }
    if let Some(slo_ms) = opts.slo_p99_ms {
        let p99_ms = percentile(&latencies, 99.0) as f64 / 1000.0;
        if p99_ms > slo_ms {
            eprintln!("loadgen: p99 {p99_ms:.3}ms exceeds the --slo-p99-ms {slo_ms}ms budget");
            return ExitCode::FAILURE;
        }
        eprintln!("loadgen: p99 {p99_ms:.3}ms within the {slo_ms}ms SLO");
    }
    if opts.expect_single_flight {
        if generations != DISTINCT_APPS {
            eprintln!(
                "loadgen: expected exactly {DISTINCT_APPS} simulations \
                 (one per distinct app), measured {generations}"
            );
            return ExitCode::FAILURE;
        }
        if flights != total_requests as u64 {
            eprintln!(
                "loadgen: expected every request accounted to one body flight \
                 ({total_requests}), measured {flights}"
            );
            return ExitCode::FAILURE;
        }
        if led != targets.len() as u64 {
            eprintln!(
                "loadgen: expected one flight leader per distinct target \
                 ({}), measured {led}",
                targets.len()
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "loadgen: single-flight contract holds ({DISTINCT_APPS} simulations, \
             {} leaders, {} requests)",
            targets.len(),
            total_requests
        );
    }
    ExitCode::SUCCESS
}
