//! Regenerates **Table 1**: statistics on data references, for a
//! single (representative) processor in the 16-processor simulation.
//!
//! Run with `cargo run --release -p lookahead-bench --bin table1`.

use lookahead_bench::{reports, Runner};

fn main() {
    let runner = Runner::from_env();
    let runs = runner.run_all();
    print!(
        "{}",
        reports::table1_report(&runs, runner.config().num_procs)
    );
    runner.report_cache_stats();
}
