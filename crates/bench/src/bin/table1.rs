//! Regenerates **Table 1**: statistics on data references, for a
//! single (representative) processor in the 16-processor simulation.
//!
//! Run with `cargo run --release -p lookahead-bench --bin table1`.

use lookahead_bench::{config_from_env, generate_all_runs};
use lookahead_harness::experiments::table1;
use lookahead_harness::format::{count_with_rate, render_table};

fn main() {
    let config = config_from_env();
    let runs = generate_all_runs(&config);
    let mut rows = vec![vec![
        "Program".to_string(),
        "Busy Cycles".to_string(),
        "reads (/k)".to_string(),
        "writes (/k)".to_string(),
        "read misses (/k)".to_string(),
        "write misses (/k)".to_string(),
    ]];
    for run in &runs {
        let t = table1(run);
        rows.push(vec![
            run.app.clone(),
            t.busy_cycles.to_string(),
            count_with_rate(t.reads, t.busy_cycles),
            count_with_rate(t.writes, t.busy_cycles),
            count_with_rate(t.read_misses, t.busy_cycles),
            count_with_rate(t.write_misses, t.busy_cycles),
        ]);
    }
    println!("Table 1 — Statistics on data references");
    println!("(single representative processor of {})", config.num_procs);
    println!("{}", render_table(&rows));
}
