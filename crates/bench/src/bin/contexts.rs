//! Compares **multiple hardware contexts** (blocked multithreading,
//! the §5 alternative technique) with dynamic scheduling on the same
//! work: the per-context cost of running 1, 2 or 4 of the
//! multiprocessor run's traces on one pipeline, next to the DS window
//! sweep on a single trace.
//!
//! Expected shape (cf. the paper's reference \[14\], Gupta et al.):
//! a handful of contexts hides most read latency for the regular
//! applications at much lower hardware cost than a 64-entry window,
//! but pays switch overhead on every miss and does nothing for a
//! single thread.
//!
//! Run with `cargo run --release -p lookahead-bench --bin contexts`.

use lookahead_bench::{reports, Runner};

fn main() {
    let runner = Runner::from_env();
    let runs = runner.run_all();
    print!("{}", reports::contexts_report(&runs));
    runner.report_cache_stats();
}
