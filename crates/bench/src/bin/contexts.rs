//! Compares **multiple hardware contexts** (blocked multithreading,
//! the §5 alternative technique) with dynamic scheduling on the same
//! work: the per-context cost of running 1, 2 or 4 of the
//! multiprocessor run's traces on one pipeline, next to the DS window
//! sweep on a single trace.
//!
//! Expected shape (cf. the paper's reference \[14\], Gupta et al.):
//! a handful of contexts hides most read latency for the regular
//! applications at much lower hardware cost than a 64-entry window,
//! but pays switch overhead on every miss and does nothing for a
//! single thread.
//!
//! Run with `cargo run --release -p lookahead-bench --bin contexts`.

use lookahead_bench::{config_from_env, generate_all_runs};
use lookahead_core::base::Base;
use lookahead_core::contexts::Contexts;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::model::ProcessorModel;
use lookahead_harness::format::render_table;
use lookahead_trace::Trace;

fn main() {
    let config = config_from_env();
    let runs = generate_all_runs(&config);
    let mut rows = vec![vec![
        "Program".to_string(),
        "MC x1".to_string(),
        "MC x2".to_string(),
        "MC x4".to_string(),
        "DS-16".to_string(),
        "DS-64".to_string(),
    ]];
    for run in &runs {
        let base = Base.run(&run.program, &run.trace);
        // Multiple contexts: interleave k traces (starting from the
        // representative) and report per-context cost relative to the
        // representative's BASE time.
        let mc = |k: usize| {
            let picked: Vec<&Trace> = (0..k)
                .map(|i| &run.all_traces[(run.proc + i) % run.all_traces.len()])
                .collect();
            let r = Contexts::default().run_traces(&picked);
            // Per-context cycles normalized to one BASE run.
            format!(
                "{:.1}",
                r.breakdown.total() as f64 / k as f64 * 100.0 / base.breakdown.total() as f64
            )
        };
        let ds = |w: usize| {
            let r = Ds::new(DsConfig::rc().window(w)).run(&run.program, &run.trace);
            format!("{:.1}", r.breakdown.normalized_to(&base.breakdown))
        };
        rows.push(vec![run.app.clone(), mc(1), mc(2), mc(4), ds(16), ds(64)]);
    }
    println!(
        "Multiple hardware contexts (blocked multithreading, 10-cycle switch)\n\
         vs dynamic scheduling; per-context execution time normalized to\n\
         BASE = 100 (lower is better)"
    );
    println!("{}", render_table(&rows));
}
