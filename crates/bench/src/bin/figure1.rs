//! Regenerates **Figure 1**: the ordering restrictions each memory
//! consistency model places on accesses from the same processor,
//! printed as must-wait matrices, plus a worked sequence matching the
//! figure's program-order example (read/write pairs around an
//! acquire/release).
//!
//! Run with `cargo run --release -p lookahead-bench --bin figure1`.

use lookahead_core::consistency::{ConsistencyModel, MemOpKind};

fn main() {
    println!("Figure 1 — ordering restrictions on memory accesses\n");
    for model in ConsistencyModel::ALL {
        println!("{}", model.rule_table());
    }

    // The figure's example: which of the numbered accesses
    //   1:W  2:R  3:acquire  4:R  5:W  6:release  7:R
    // may be overlapped (no must-wait edge) under each model?
    let seq = [
        (1, MemOpKind::Write),
        (2, MemOpKind::Read),
        (3, MemOpKind::Acquire),
        (4, MemOpKind::Read),
        (5, MemOpKind::Write),
        (6, MemOpKind::Release),
        (7, MemOpKind::Read),
    ];
    println!("overlappable pairs in  1:W 2:R 3:acq 4:R 5:W 6:rel 7:R");
    for model in ConsistencyModel::ALL {
        let mut free = Vec::new();
        for i in 0..seq.len() {
            for j in i + 1..seq.len() {
                if !model.must_wait_for(seq[i].1, seq[j].1) {
                    free.push(format!("{}-{}", seq[i].0, seq[j].0));
                }
            }
        }
        println!(
            "  {:<3} {}",
            model.abbrev(),
            if free.is_empty() {
                "none (fully serial)".to_string()
            } else {
                free.join(" ")
            }
        );
    }
}
