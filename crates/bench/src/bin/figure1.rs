//! Regenerates **Figure 1**: the ordering restrictions each memory
//! consistency model places on accesses from the same processor,
//! printed as must-wait matrices, plus a worked sequence matching the
//! figure's program-order example (read/write pairs around an
//! acquire/release).
//!
//! Run with `cargo run --release -p lookahead-bench --bin figure1`.

use lookahead_bench::reports;

fn main() {
    print!("{}", reports::figure1_report());
}
