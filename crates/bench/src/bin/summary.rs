//! Regenerates the paper's §7 headline numbers: the average
//! percentage of read latency hidden by dynamic scheduling under RC
//! across the five applications — the paper reports 33% at window 16,
//! 63% at window 32 and 81% at window 64 (50-cycle latency).
//!
//! Run with `cargo run --release -p lookahead-bench --bin summary`.

use lookahead_bench::{config_from_env, generate_all_runs};
use lookahead_harness::experiments::{read_latency_hidden, read_latency_hidden_summary};
use lookahead_harness::format::render_table;

fn main() {
    let config = config_from_env();
    let runs = generate_all_runs(&config);
    let windows = [16, 32, 64, 128, 256];

    let mut rows = vec![{
        let mut h = vec!["Program".to_string()];
        h.extend(windows.iter().map(|w| format!("W={w}")));
        h
    }];
    for run in &runs {
        let mut row = vec![run.app.clone()];
        for &w in &windows {
            row.push(format!("{:.0}%", read_latency_hidden(run, w) * 100.0));
        }
        rows.push(row);
    }
    let summary = read_latency_hidden_summary(&runs, &windows);
    let mut avg = vec!["AVERAGE".to_string()];
    avg.extend(summary.iter().map(|(_, pct)| format!("{pct:.0}%")));
    rows.push(avg);

    println!("Percentage of read latency hidden (DS under RC vs BASE)");
    println!("{}", render_table(&rows));
    println!("Paper (§7, 50-cycle latency): 33% at W=16, 63% at W=32, 81% at W=64.");
}
