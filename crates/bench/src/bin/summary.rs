//! Regenerates the paper's §7 headline numbers: the average
//! percentage of read latency hidden by dynamic scheduling under RC
//! across the five applications — the paper reports 33% at window 16,
//! 63% at window 32 and 81% at window 64 (50-cycle latency).
//!
//! Run with `cargo run --release -p lookahead-bench --bin summary`.

use lookahead_bench::{reports, Runner};

fn main() {
    let runner = Runner::from_env();
    let runs = runner.run_all();
    print!("{}", reports::summary_report(&runs, runner.workers()));
    runner.report_cache_stats();
}
