//! Regenerates **Table 2**: statistics on synchronization, for a
//! single (representative) processor in the 16-processor simulation,
//! plus the acquire wait/access split used in §4.1.2 (the hidable
//! fraction of acquire overhead).
//!
//! Run with `cargo run --release -p lookahead-bench --bin table2`.

use lookahead_bench::{config_from_env, generate_all_runs};
use lookahead_harness::experiments::table2;
use lookahead_harness::format::render_table;

fn main() {
    let config = config_from_env();
    let runs = generate_all_runs(&config);
    let mut rows = vec![vec![
        "Program".to_string(),
        "locks".to_string(),
        "unlocks".to_string(),
        "wait event".to_string(),
        "set event".to_string(),
        "barriers".to_string(),
        "hidable acquire %".to_string(),
    ]];
    for run in &runs {
        let t = table2(run);
        rows.push(vec![
            run.app.clone(),
            t.locks.to_string(),
            t.unlocks.to_string(),
            t.wait_events.to_string(),
            t.set_events.to_string(),
            t.barriers.to_string(),
            format!("{:.1}", t.hidable_acquire_fraction() * 100.0),
        ]);
    }
    println!("Table 2 — Statistics on synchronization");
    println!("(single representative processor of {})", config.num_procs);
    println!("{}", render_table(&rows));
    println!(
        "The last column is the fraction of acquire overhead that is memory\n\
         access latency (hidable); the paper reports ~30% for PTHOR and\n\
         ~0% elsewhere (§4.1.2)."
    );
}
