//! Regenerates **Table 2**: statistics on synchronization, for a
//! single (representative) processor in the 16-processor simulation,
//! plus the acquire wait/access split used in §4.1.2 (the hidable
//! fraction of acquire overhead).
//!
//! Run with `cargo run --release -p lookahead-bench --bin table2`.

use lookahead_bench::{reports, Runner};

fn main() {
    let runner = Runner::from_env();
    let runs = runner.run_all();
    print!(
        "{}",
        reports::table2_report(&runs, runner.config().num_procs)
    );
    runner.report_cache_stats();
}
