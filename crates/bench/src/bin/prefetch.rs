//! Tests the paper's §6 conjecture about hardware stride prefetching
//! (Baer–Chen): it "may achieve reasonable gains for applications with
//! regular access behavior (e.g., LU and OCEAN)" but "would probably
//! fail to hide latency for applications that do not have such
//! regular characteristics (e.g., MP3D, PTHOR, LOCUS)".
//!
//! We run a reference-prediction-table prefetcher over each trace and
//! report (a) the fraction of read misses it covers and (b) the
//! execution time of the blocking in-order processor (SSBR/RC) with
//! and without prefetching, next to dynamic scheduling for scale.
//!
//! Run with `cargo run --release -p lookahead-bench --bin prefetch`.

use lookahead_bench::{config_from_env, generate_all_runs};
use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::ProcessorModel;
use lookahead_core::prefetch::{PrefetchConfig, StridePrefetcher};
use lookahead_core::ConsistencyModel;
use lookahead_harness::format::render_table;

fn main() {
    let config = config_from_env();
    let runs = generate_all_runs(&config);
    let mut rows = vec![vec![
        "Program".to_string(),
        "misses covered".to_string(),
        "SSBR".to_string(),
        "SSBR+rpt".to_string(),
        "DS-64".to_string(),
    ]];
    for run in &runs {
        let (covered_trace, stats) =
            StridePrefetcher::new(PrefetchConfig::default()).cover(&run.trace);
        let base = Base.run(&run.program, &run.trace);
        let norm = |r: &lookahead_core::ExecutionResult| {
            format!("{:.1}", r.breakdown.normalized_to(&base.breakdown))
        };
        let ssbr = InOrder::ssbr(ConsistencyModel::Rc);
        let plain = ssbr.run(&run.program, &run.trace);
        let with_pf = ssbr.run(&run.program, &covered_trace);
        let ds = Ds::new(DsConfig::rc().window(64)).run(&run.program, &run.trace);
        rows.push(vec![
            run.app.clone(),
            format!("{:.0}%", stats.coverage() * 100.0),
            norm(&plain),
            norm(&with_pf),
            norm(&ds),
        ]);
    }
    println!(
        "Baer–Chen stride prefetching (512-entry RPT) vs dynamic scheduling\n\
         (execution time normalized to BASE = 100; the paper's §6 predicts\n\
         prefetching helps LU/OCEAN but not MP3D/PTHOR/LOCUS)"
    );
    println!("{}", render_table(&rows));
}
