//! Tests the paper's §6 conjecture about hardware stride prefetching
//! (Baer–Chen): it "may achieve reasonable gains for applications with
//! regular access behavior (e.g., LU and OCEAN)" but "would probably
//! fail to hide latency for applications that do not have such
//! regular characteristics (e.g., MP3D, PTHOR, LOCUS)".
//!
//! We run a reference-prediction-table prefetcher over each trace and
//! report (a) the fraction of read misses it covers and (b) the
//! execution time of the blocking in-order processor (SSBR/RC) with
//! and without prefetching, next to dynamic scheduling for scale.
//!
//! Run with `cargo run --release -p lookahead-bench --bin prefetch`.

use lookahead_bench::{reports, Runner};

fn main() {
    let runner = Runner::from_env();
    let runs = runner.run_all();
    print!("{}", reports::prefetch_report(&runs));
    runner.report_cache_stats();
}
