//! Regenerates **Figure 3**: execution-time breakdown for BASE and
//! {SSBR, SS, DS} under SC, PC and RC with the window sweep, for all
//! five applications at 50-cycle miss latency.
//!
//! Run with `cargo run --release -p lookahead-bench --bin figure3`.

use lookahead_bench::{config_from_env, generate_all_runs};
use lookahead_harness::experiments::{figure3, PAPER_WINDOWS};
use lookahead_harness::format::render_figure;

fn main() {
    let config = config_from_env();
    eprintln!(
        "Figure 3: {} processors, {}-cycle miss penalty",
        config.num_procs, config.mem.miss_penalty
    );
    let runs = generate_all_runs(&config);
    for run in &runs {
        let cols = figure3(run, &PAPER_WINDOWS);
        println!(
            "{}",
            render_figure(
                &format!(
                    "Figure 3 — {} (trace: {} instructions, processor {})",
                    run.app,
                    run.trace.len(),
                    run.proc
                ),
                &cols
            )
        );
    }
}
