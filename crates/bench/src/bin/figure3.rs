//! Regenerates **Figure 3**: execution-time breakdown for BASE and
//! {SSBR, SS, DS} under SC, PC and RC with the window sweep, for all
//! five applications at 50-cycle miss latency.
//!
//! Run with `cargo run --release -p lookahead-bench --bin figure3`.

use lookahead_bench::{reports, Runner};

fn main() {
    let runner = Runner::from_env();
    eprintln!(
        "Figure 3: {} processors, {}-cycle miss penalty",
        runner.config().num_procs,
        runner.config().mem.miss_penalty
    );
    let runs = runner.run_all();
    print!("{}", reports::figure3_report(&runs, runner.workers()));
    runner.report_cache_stats();
}
