//! Regenerates the §6 discussion of the paper's reference \[8\]
//! ("Two techniques to enhance the performance of memory consistency
//! models"): non-binding prefetch and speculative load execution,
//! applied to SC and PC, compared against plain SC/PC/RC on the
//! dynamically scheduled processor.
//!
//! The claim under test: the techniques recover much of the gap
//! between the strict models and RC, "de-emphasiz\[ing\] the correctness
//! aspect of overlapping memory accesses" — while RC remains the
//! ceiling.
//!
//! Run with `cargo run --release -p lookahead-bench --bin sc_boost`.

use lookahead_bench::{reports, Runner};

fn main() {
    let runner = Runner::from_env();
    let runs = runner.run_all();
    print!("{}", reports::sc_boost_report(&runs, runner.workers()));
    runner.report_cache_stats();
}
