//! Regenerates the §6 discussion of the paper's reference \[8\]
//! ("Two techniques to enhance the performance of memory consistency
//! models"): non-binding prefetch and speculative load execution,
//! applied to SC and PC, compared against plain SC/PC/RC on the
//! dynamically scheduled processor.
//!
//! The claim under test: the techniques recover much of the gap
//! between the strict models and RC, "de-emphasiz\[ing\] the correctness
//! aspect of overlapping memory accesses" — while RC remains the
//! ceiling.
//!
//! Run with `cargo run --release -p lookahead-bench --bin sc_boost`.

use lookahead_bench::{config_from_env, generate_all_runs};
use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::model::ProcessorModel;
use lookahead_core::ConsistencyModel;
use lookahead_harness::format::render_table;

fn main() {
    let config = config_from_env();
    let runs = generate_all_runs(&config);
    let mut rows = vec![vec![
        "Program".to_string(),
        "SC".to_string(),
        "SC+pf".to_string(),
        "SC+spec".to_string(),
        "SC+both".to_string(),
        "PC".to_string(),
        "PC+both".to_string(),
        "RC".to_string(),
    ]];
    for run in &runs {
        let base = Base.run(&run.program, &run.trace);
        let norm = |model: ConsistencyModel, pf: bool, spec: bool| {
            let r = Ds::new(DsConfig {
                nonbinding_prefetch: pf,
                speculative_loads: spec,
                ..DsConfig::with_model(model).window(64)
            })
            .run(&run.program, &run.trace);
            format!("{:.1}", r.breakdown.normalized_to(&base.breakdown))
        };
        use ConsistencyModel::{Pc, Rc, Sc};
        rows.push(vec![
            run.app.clone(),
            norm(Sc, false, false),
            norm(Sc, true, false),
            norm(Sc, false, true),
            norm(Sc, true, true),
            norm(Pc, false, false),
            norm(Pc, true, true),
            norm(Rc, false, false),
        ]);
    }
    println!(
        "SC/PC boosting techniques of [Gharachorloo et al., ICPP'91] on the\n\
         DS-64 processor (execution time normalized to BASE = 100)"
    );
    println!("{}", render_table(&rows));
    println!(
        "pf = non-binding prefetch for consistency-delayed loads;\n\
         spec = speculative load execution (best case: no rollbacks in\n\
         trace-driven re-timing). RC is the relaxed-model reference."
    );
}
