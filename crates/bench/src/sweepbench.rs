//! `lookahead bench sweep` — wall-clock comparison of the two
//! re-timing paths over a warm trace cache.
//!
//! Warms the cache (untimed), then runs the merged
//! figure3/figure4/summary sweep twice through the DAG scheduler:
//!
//! * **per-cell** — every cell opens its own streamed traversal of
//!   the archived trace (the historical path);
//! * **gang** — [`reports::dag_sweep_mode`] with
//!   [`RetimeMode::Gang`]: one traversal per application decodes each
//!   chunk once (structure-of-arrays) and a `GangCursor` fans it out
//!   to every unique cell's engine concurrently, with the merged
//!   reports' duplicate cells computed once.
//!
//! The three report texts are asserted byte-identical between the two
//! paths before any number is reported. Results are written as
//! `BENCH_sweep.json` with a cells/sec headline; `--min-speedup`
//! turns the ratio into a hard gate (exit 1) for CI.

use crate::{config_from_env, reports, Runner, SizeTier};
use lookahead_harness::cache::TraceCache;
use lookahead_harness::experiments::RetimeMode;
use lookahead_harness::parallel;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// One timed side of the comparison.
struct Side {
    seconds: f64,
    /// Unique cells the scheduler actually computed.
    cells_computed: usize,
    /// `(report name, text)` in [`reports::DAG_REPORTS`] order.
    texts: Vec<(String, String)>,
}

/// Times one warm-cache sweep under `mode` on a fresh runner (so
/// cache accounting stays per-side).
fn run_side(cache: &str, tier: SizeTier, workers: usize, mode: RetimeMode) -> Side {
    let runner = Runner::new(
        config_from_env(),
        tier,
        Some(TraceCache::new(cache)),
        workers,
    );
    let started = Instant::now();
    let sweep = reports::dag_sweep_mode(&runner, reports::DAG_REPORTS, workers, mode);
    Side {
        seconds: started.elapsed().as_secs_f64(),
        cells_computed: sweep.cells,
        texts: sweep.texts,
    }
}

/// Renders the machine-readable result object.
fn render_json(
    runner: &Runner,
    workers: usize,
    cells: usize,
    per_cell: &Side,
    gang: &Side,
) -> String {
    let apps: Vec<String> = runner
        .apps()
        .iter()
        .map(|a| format!("\"{}\"", a.name()))
        .collect();
    let per_sec = |seconds: f64| {
        if seconds > 0.0 {
            cells as f64 / seconds
        } else {
            0.0
        }
    };
    let speedup = if gang.seconds > 0.0 {
        per_cell.seconds / gang.seconds
    } else {
        0.0
    };
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"sweep\",");
    let _ = writeln!(out, "  \"tier\": \"{}\",", runner.tier().name());
    let _ = writeln!(out, "  \"workers\": {workers},");
    let _ = writeln!(out, "  \"apps\": [{}],", apps.join(", "));
    let _ = writeln!(
        out,
        "  \"reports\": [\"figure3\", \"figure4\", \"summary\"],"
    );
    let _ = writeln!(out, "  \"byte_identical\": true,");
    let _ = writeln!(out, "  \"per_cell_seconds\": {:.4},", per_cell.seconds);
    let _ = writeln!(out, "  \"gang_seconds\": {:.4},", gang.seconds);
    let _ = writeln!(out, "  \"cells\": {cells},");
    let _ = writeln!(
        out,
        "  \"per_cell_cells_per_sec\": {:.2},",
        per_sec(per_cell.seconds)
    );
    let _ = writeln!(
        out,
        "  \"gang_cells_per_sec\": {:.2},",
        per_sec(gang.seconds)
    );
    let _ = writeln!(out, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(out, "  \"gang_cells_computed\": {}", gang.cells_computed);
    out.push_str("}\n");
    out
}

const USAGE: &str = "usage: lookahead bench sweep [OPTIONS]

Times the merged figure3/figure4/summary sweep on a warm trace cache
under the per-cell re-timing path (one streamed traversal per cell)
and the gang path (one traversal per application feeding every unique
cell), asserting the report texts are byte-identical first. The
headline is cells/sec over the cells the per-cell path computes.

options:
  --tier NAME       workload size tier: small|default|paper
                    (default: from LOOKAHEAD_SMALL/LOOKAHEAD_PAPER)
  --jobs N          worker threads (default: all cores)
  --iters N         repetitions per path, best-of (default: 2)
  --out PATH        result file (default: BENCH_sweep.json)
  --min-speedup X   exit 1 unless per-cell/gang wall-time ratio >= X
  --cache-dir DIR   warm and reuse DIR instead of a throwaway
                    temporary cache
  -h, --help        show this help

environment: LOOKAHEAD_PROCS=n, LOOKAHEAD_APPS=...";

/// Entry point for `lookahead bench sweep`.
pub fn sweep_main(args: &[String]) -> ExitCode {
    let mut out_path = "BENCH_sweep.json".to_string();
    let mut tier = SizeTier::from_env();
    let mut jobs: Option<usize> = None;
    let mut iters = 2usize;
    let mut min_speedup: Option<f64> = None;
    let mut cache_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let (key, mut value) = match a.split_once('=') {
            Some((k, v)) => (k, Some(v.to_string())),
            None => (a.as_str(), None),
        };
        let mut take = |it: &mut std::slice::Iter<String>| match value.take() {
            Some(v) => Some(v),
            None => it.next().cloned(),
        };
        match key {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--out" => match take(&mut it) {
                Some(v) => out_path = v,
                None => return usage_error("--out needs a value"),
            },
            "--tier" => match take(&mut it).as_deref().and_then(SizeTier::from_name) {
                Some(t) => tier = t,
                None => return usage_error("--tier needs one of small|default|paper"),
            },
            "--jobs" => match take(&mut it).and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                _ => return usage_error("--jobs needs a positive integer"),
            },
            "--iters" => match take(&mut it).and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => iters = n,
                _ => return usage_error("--iters needs a positive integer"),
            },
            "--min-speedup" => match take(&mut it).and_then(|v| v.parse().ok()) {
                Some(x) if x > 0.0 => min_speedup = Some(x),
                _ => return usage_error("--min-speedup needs a positive number"),
            },
            "--cache-dir" => match take(&mut it) {
                Some(v) => cache_dir = Some(v),
                None => return usage_error("--cache-dir needs a value"),
            },
            other => return usage_error(&format!("unknown option {other:?}")),
        }
    }

    let workers = jobs.unwrap_or_else(parallel::default_workers);
    let throwaway = cache_dir.is_none();
    let cache = cache_dir.unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("lookahead-sweep-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });

    // Warm the cache untimed: the comparison is about re-timing
    // throughput, not generation or disk state.
    let warm_runner = Runner::new(
        config_from_env(),
        tier,
        Some(TraceCache::new(cache.as_str())),
        workers,
    );
    eprintln!(
        "bench sweep: tier {}, {} processors, {} workers, warming cache {}",
        tier.name(),
        warm_runner.config().num_procs,
        workers,
        cache,
    );
    let started = Instant::now();
    warm_runner.run_all();
    eprintln!(
        "bench sweep: cache warm in {:.2}s (untimed)",
        started.elapsed().as_secs_f64()
    );

    // Best-of-N, paths interleaved so ambient load hits both evenly;
    // every iteration's report texts are byte-compared.
    let mut per_cell: Option<Side> = None;
    let mut gang: Option<Side> = None;
    for i in 1..=iters {
        let pc = run_side(&cache, tier, workers, RetimeMode::PerCell);
        eprintln!(
            "bench sweep: per-cell path {:.2}s ({} cells) [iter {i}/{iters}]",
            pc.seconds, pc.cells_computed,
        );
        let g = run_side(&cache, tier, workers, RetimeMode::Gang);
        eprintln!(
            "bench sweep: gang path {:.2}s ({} unique cells) [iter {i}/{iters}]",
            g.seconds, g.cells_computed,
        );
        for ((name, pc_text), (_, gang_text)) in pc.texts.iter().zip(&g.texts) {
            if pc_text != gang_text {
                eprintln!(
                    "error: {name} differs between per-cell and gang re-timing — \
                     refusing to report a speedup over divergent output"
                );
                if throwaway {
                    let _ = std::fs::remove_dir_all(&cache);
                }
                return ExitCode::FAILURE;
            }
        }
        let keep_faster = |best: Option<Side>, next: Side| match best {
            Some(b) if b.seconds <= next.seconds => Some(b),
            _ => Some(next),
        };
        per_cell = keep_faster(per_cell, pc);
        gang = keep_faster(gang, g);
    }
    let (per_cell, gang) = (per_cell.expect("iters >= 1"), gang.expect("iters >= 1"));
    if throwaway {
        let _ = std::fs::remove_dir_all(&cache);
    }

    let cells = per_cell.cells_computed;
    let json = render_json(&warm_runner, workers, cells, &per_cell, &gang);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    let speedup = per_cell.seconds / gang.seconds.max(f64::MIN_POSITIVE);
    println!(
        "gang sweep: {cells} cells, {:.1} -> {:.1} cells/sec ({speedup:.3}x), \
         reports byte-identical",
        cells as f64 / per_cell.seconds.max(f64::MIN_POSITIVE),
        cells as f64 / gang.seconds.max(f64::MIN_POSITIVE),
    );
    eprintln!("bench sweep: wrote {out_path}");
    if let Some(min) = min_speedup {
        if speedup < min {
            eprintln!("error: speedup {speedup:.3} below required minimum {min}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
