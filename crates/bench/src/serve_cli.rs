//! The `lookahead serve` and `lookahead query` subcommands.
//!
//! `serve` boots the experiment service on an address; `query` answers
//! one request in-process and prints the body to stdout, **byte
//! identical** to what the HTTP server would send for the same target
//! (the golden tests pin this). Both build the service the same way —
//! same tier, simulation config, cache and worker knobs as the report
//! driver — so a served figure and a printed figure agree.

use crate::{cache_from_env_or, config_from_env, fail_fast};
use lookahead_harness::cache::TraceCache;
use lookahead_harness::dag::Scheduler;
use lookahead_harness::parallel;
use lookahead_harness::SizeTier;
use lookahead_serve::{
    handle_target, install_sigint, parse_max_connections, parse_serve_addr, parse_serve_threads,
    serve_addr_from_env, serve_threads_from_env, serve_transport_from_env, ExperimentService,
    Server, ServerConfig, ServiceConfig, Transport,
};
use std::process::ExitCode;
use std::sync::Arc;

const DEFAULT_CACHE_DIR: &str = "target/trace-cache";
const DEFAULT_THREADS: usize = 4;

pub const SERVE_USAGE: &str = "usage: lookahead serve [OPTIONS]

Serves the experiment suite over HTTP until SIGINT (graceful drain).

routes:
  /healthz  /metrics (Prometheus)  /metrics.json  /v1/apps
  /v1/experiments?app=A[&model=M&consistency=C&window=W&width=I&tier=T]
  /v1/figure3?app=A  /v1/figure4?app=A  /v1/summary
  /v1/debug/trace/<request-id>

options:
  --addr IP:PORT   bind address (default: LOOKAHEAD_SERVE_ADDR or
                   127.0.0.1:7417; port 0 picks a free port)
  --addr-file F    write the bound address to F (for port-0 scripts)
  --threads N      handler worker threads (default:
                   LOOKAHEAD_SERVE_THREADS or 4). The reactor
                   transport multiplexes all connections onto one
                   event-loop thread; N sets only the handler pool
  --legacy-transport
                   use the original thread-per-connection transport
                   instead of the epoll reactor (every response closes
                   the connection; also LOOKAHEAD_SERVE_TRANSPORT=
                   legacy). The flag wins over the environment
  --max-connections N
                   reactor transport: open-connection cap; connections
                   beyond it get 503 + Retry-After at accept
                   (default: 4096)
  --jobs N         re-timing worker threads (default: LOOKAHEAD_JOBS
                   or all cores; the flag wins over the environment
                   variable)
  --scheduler S    sweep cell scheduler: dag (critical-path rank,
                   the default) or flat; bodies are byte-identical
                   either way (the flag wins over LOOKAHEAD_SCHEDULER)
  --prewarm        speculatively pre-compute likely-next report bodies
                   (remaining apps, adjacent windows) while idle
  --cache-dir DIR  cache traces under DIR (default: target/trace-cache,
                   or the LOOKAHEAD_CACHE environment variable)
  --no-cache       disable the trace cache
  --span-log FILE  append every request's spans to FILE as JSONL
                   (analyze with `trace_tool spans FILE`)
  -h, --help       show this help

Figure sweeps accept stream=1 (e.g. /v1/figure3?app=A&stream=1): the
body is sent with chunked framing, one column per chunk as cells
finish, byte-identical to the buffered body.

environment: LOOKAHEAD_SMALL=1, LOOKAHEAD_PAPER=1, LOOKAHEAD_PROCS=n,
LOOKAHEAD_SERVE_ADDR, LOOKAHEAD_SERVE_THREADS,
LOOKAHEAD_SERVE_TRANSPORT=reactor|legacy, LOOKAHEAD_CACHE=DIR|off,
LOOKAHEAD_JOBS=n, LOOKAHEAD_SCHEDULER=dag|flat,
LOOKAHEAD_SERVE_PREWARM=1, LOOKAHEAD_LOG=level|target=level,...";

pub const QUERY_USAGE: &str = "usage: lookahead query TARGET [OPTIONS]

Answers one service query in-process and prints the body to stdout —
byte-identical to the HTTP response body for the same target.

  lookahead query '/v1/experiments?app=mp3d&model=ds&window=64'
  lookahead query /v1/summary

options:
  --jobs N         re-timing worker threads (the flag wins over
                   LOOKAHEAD_JOBS)
  --scheduler S    sweep cell scheduler: dag (default) or flat
  --cache-dir DIR  cache traces under DIR (default: target/trace-cache)
  --no-cache       disable the trace cache
  -h, --help       show this help

Streamed targets (stream=1) are drained in-process: the printed body
is byte-identical to the buffered one.";

#[derive(Default)]
struct Options {
    addr: Option<String>,
    addr_file: Option<String>,
    threads: Option<String>,
    jobs: Option<usize>,
    scheduler: Option<Scheduler>,
    prewarm: bool,
    cache_dir: Option<String>,
    no_cache: bool,
    span_log: Option<String>,
    legacy_transport: bool,
    max_connections: Option<String>,
    target: Option<String>,
}

fn parse_scheduler(value: &str) -> Result<Scheduler, String> {
    Scheduler::from_name(value)
        .ok_or_else(|| format!("--scheduler must be \"flat\" or \"dag\", got {value:?}"))
}

/// Parses the flags shared by `serve` and `query`; positional
/// arguments land in `target` (only `query` accepts one).
fn parse(args: &[String], usage: &'static str) -> Result<Option<Options>, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let value = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "-h" | "--help" => return Ok(None),
            "--no-cache" => opts.no_cache = true,
            "--prewarm" => opts.prewarm = true,
            "--legacy-transport" => opts.legacy_transport = true,
            "--max-connections" => {
                opts.max_connections = Some(value(&mut it, "--max-connections")?);
            }
            "--scheduler" => {
                opts.scheduler = Some(parse_scheduler(&value(&mut it, "--scheduler")?)?);
            }
            "--addr" => opts.addr = Some(value(&mut it, "--addr")?),
            "--addr-file" => opts.addr_file = Some(value(&mut it, "--addr-file")?),
            "--threads" => opts.threads = Some(value(&mut it, "--threads")?),
            "--cache-dir" => opts.cache_dir = Some(value(&mut it, "--cache-dir")?),
            "--span-log" => opts.span_log = Some(value(&mut it, "--span-log")?),
            "--jobs" => opts.jobs = Some(parallel::parse_jobs(&value(&mut it, "--jobs")?)?),
            _ => {
                if let Some(v) = a.strip_prefix("--addr=") {
                    opts.addr = Some(v.to_string());
                } else if let Some(v) = a.strip_prefix("--addr-file=") {
                    opts.addr_file = Some(v.to_string());
                } else if let Some(v) = a.strip_prefix("--threads=") {
                    opts.threads = Some(v.to_string());
                } else if let Some(v) = a.strip_prefix("--cache-dir=") {
                    opts.cache_dir = Some(v.to_string());
                } else if let Some(v) = a.strip_prefix("--span-log=") {
                    opts.span_log = Some(v.to_string());
                } else if let Some(v) = a.strip_prefix("--jobs=") {
                    opts.jobs = Some(parallel::parse_jobs(v)?);
                } else if let Some(v) = a.strip_prefix("--scheduler=") {
                    opts.scheduler = Some(parse_scheduler(v)?);
                } else if let Some(v) = a.strip_prefix("--max-connections=") {
                    opts.max_connections = Some(v.to_string());
                } else if a.starts_with('-') {
                    return Err(format!("unknown option {a:?}\n\n{usage}"));
                } else if opts.target.is_none() {
                    opts.target = Some(a.clone());
                } else {
                    return Err(format!("unexpected argument {a:?}\n\n{usage}"));
                }
            }
        }
    }
    Ok(Some(opts))
}

fn cache_for(opts: &Options) -> Option<TraceCache> {
    if opts.no_cache {
        return None;
    }
    match &opts.cache_dir {
        Some(dir) => Some(TraceCache::new(dir.clone())),
        None => cache_from_env_or(Some(DEFAULT_CACHE_DIR)),
    }
}

/// `LOOKAHEAD_SERVE_PREWARM=1` enables the speculative pre-warm loop
/// when the `--prewarm` flag is absent (the flag wins).
fn prewarm_from_env() -> Result<bool, String> {
    match std::env::var("LOOKAHEAD_SERVE_PREWARM") {
        Ok(v) => match v.trim() {
            "1" => Ok(true),
            "0" | "" => Ok(false),
            _ => Err(format!("LOOKAHEAD_SERVE_PREWARM must be 0 or 1, got {v:?}")),
        },
        Err(_) => Ok(false),
    }
}

/// The service, built exactly as the report driver builds its runner:
/// tier and simulation config from the environment, plus the cache,
/// scheduler and worker knobs (flags win over environment variables).
fn build_service(opts: &Options) -> (Arc<ExperimentService>, usize) {
    let jobs = opts.jobs.unwrap_or_else(parallel::default_workers);
    let scheduler = opts
        .scheduler
        .or_else(|| fail_fast(Scheduler::from_env()))
        .unwrap_or(Scheduler::Dag);
    let prewarm = opts.prewarm || fail_fast(prewarm_from_env());
    let service = ExperimentService::new(
        ServiceConfig {
            default_tier: SizeTier::from_env(),
            sim: config_from_env(),
            retime_workers: jobs,
            span_log: opts.span_log.as_ref().map(std::path::PathBuf::from),
            scheduler,
            prewarm,
        },
        cache_for(opts),
    );
    (Arc::new(service), jobs)
}

/// `lookahead serve`: bind, announce, serve until SIGINT, drain.
pub fn serve_main(args: &[String]) -> ExitCode {
    let opts = match parse(args, SERVE_USAGE) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{SERVE_USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(t) = &opts.target {
        eprintln!("error: serve takes no positional argument, got {t:?}\n\n{SERVE_USAGE}");
        return ExitCode::from(2);
    }

    // Fail-fast knob resolution: flags win, then environment, then
    // defaults; any malformed value is exit code 2. A malformed log
    // filter would otherwise be discovered only at the first log line.
    if let Err(e) = lookahead_obs::log::check_env_filter() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    let addr = match &opts.addr {
        Some(a) => fail_fast(parse_serve_addr(a)),
        None => fail_fast(serve_addr_from_env()),
    };
    let threads = match &opts.threads {
        Some(t) => fail_fast(parse_serve_threads(t)),
        None => fail_fast(serve_threads_from_env()).unwrap_or(DEFAULT_THREADS),
    };
    let transport = if opts.legacy_transport {
        Transport::Legacy
    } else {
        fail_fast(serve_transport_from_env()).unwrap_or(Transport::Reactor)
    };
    let max_connections = match &opts.max_connections {
        Some(n) => fail_fast(parse_max_connections(n)),
        None => ServerConfig::default().max_connections,
    };
    let (service, jobs) = build_service(&opts);

    install_sigint();
    let server = match Server::bind(ServerConfig {
        addr,
        threads,
        watch_sigint: true,
        transport,
        max_connections,
        ..ServerConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = server.local_addr();
    if let Some(path) = &opts.addr_file {
        if let Err(e) = std::fs::write(path, bound.to_string()) {
            eprintln!("error: cannot write --addr-file {path:?}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "lookahead serve: http://{bound} ({} transport, {} handler workers, {jobs} re-timing \
         workers, tier {}, scheduler {}, cache {}, prewarm {}); Ctrl-C drains and exits",
        match transport {
            Transport::Reactor => "reactor",
            Transport::Legacy => "legacy",
        },
        threads,
        service.config().default_tier.name(),
        service.config().scheduler.name(),
        if service.disk_cache_enabled() {
            "on"
        } else {
            "off"
        },
        if service.prewarm_enabled() {
            "on"
        } else {
            "off"
        },
    );

    let stats = server.run(Arc::clone(&service));
    let runs = service.run_stats();
    eprintln!(
        "lookahead serve: drained; {} served, {} rejected (503), {} aborted; \
         {} generations, {} disk hits, {} memo hits, {} coalesced",
        stats.served,
        stats.rejected,
        stats.aborted,
        runs.generations,
        runs.disk_hits,
        runs.memo_hits,
        runs.coalesced,
    );
    ExitCode::SUCCESS
}

/// `lookahead query`: answer one target in-process, print the body.
pub fn query_main(args: &[String]) -> ExitCode {
    let opts = match parse(args, QUERY_USAGE) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{QUERY_USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(target) = &opts.target else {
        eprintln!("error: query needs a TARGET\n\n{QUERY_USAGE}");
        return ExitCode::from(2);
    };
    if opts.addr.is_some() || opts.addr_file.is_some() || opts.threads.is_some() {
        eprintln!("error: --addr/--addr-file/--threads are serve options\n\n{QUERY_USAGE}");
        return ExitCode::from(2);
    }
    if opts.span_log.is_some() {
        eprintln!("error: --span-log is a serve option\n\n{QUERY_USAGE}");
        return ExitCode::from(2);
    }
    if opts.prewarm {
        eprintln!("error: --prewarm is a serve option\n\n{QUERY_USAGE}");
        return ExitCode::from(2);
    }
    if opts.legacy_transport || opts.max_connections.is_some() {
        eprintln!("error: --legacy-transport/--max-connections are serve options\n\n{QUERY_USAGE}");
        return ExitCode::from(2);
    }

    let (service, _) = build_service(&opts);
    let response = handle_target(&service, target);
    // Streamed responses (stream=1) carry the body as a producer, not
    // a string; drain it here so the printed bytes still equal what
    // the HTTP server would have sent (after chunk reassembly).
    let body = response.full_body();
    // The body goes to stdout verbatim (no trailing newline): the
    // bytes must equal the HTTP response body for the same target.
    // Written by hand rather than print! so a closed pipe (query piped
    // into `head`, a consumer that went away mid-body) is a quiet
    // success or a clean error line, never a broken-pipe panic.
    {
        use std::io::Write as _;
        let mut stdout = std::io::stdout().lock();
        let write_result = stdout
            .write_all(body.as_bytes())
            .and_then(|()| stdout.flush());
        if let Err(e) = write_result {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                // The reader stopped consuming; nothing is wrong.
                return ExitCode::SUCCESS;
            }
            eprintln!("error: cannot write response body: {e}");
            return ExitCode::FAILURE;
        }
    }
    if response.status == 200 {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: {} for {target:?}", response.status);
        ExitCode::FAILURE
    }
}
