//! `lookahead bench generation` — wall-clock benchmark of cold trace
//! generation under the two multiprocessor engines.
//!
//! For every selected application at the selected size tier, the
//! benchmark times a **cold** generation run (no trace cache; the
//! chunks go to a [`NullSink`]) under both the discrete-event engine
//! ([`Simulator::run_with_sink`]) and the retained cycle-by-cycle
//! reference stepper ([`Simulator::run_reference_with_sink`]). Before
//! timing, a verification pass streams both engines through a
//! checksum sink and fails the benchmark unless the chunk sequences —
//! boundaries and entry contents — are byte-for-byte identical; the
//! speedup is only meaningful if the engines produce the same traces.
//!
//! Results are written as `BENCH_generation.json` and summarized on
//! stdout. The headline number is the overall event-engine speedup
//! (sum of reference walls over sum of event walls); `--min-speedup`
//! turns it into a gate for CI. Timing uses `std::time::Instant` only.

use crate::{config_from_env, selected_apps, SizeTier};
use lookahead_isa::program::DataImage;
use lookahead_isa::{Program, SyncKind};
use lookahead_memsys::MemoryParams;
use lookahead_multiproc::{SimConfig, SimOutcome, Simulator};
use lookahead_trace::{NullSink, TraceChunk, TraceOp, TraceSink};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// The miss penalties benchmarked — the same sweep as the re-timing
/// bench. 100 is where stalled cycles dominate and event scheduling
/// pays the most; it carries the `--min-speedup` gate.
const LATENCIES: [u32; 2] = [50, 100];

/// One measured benchmark cell: one application under one engine at
/// one miss penalty.
struct Cell {
    app: &'static str,
    engine: &'static str,
    latency: u32,
    wall_seconds: f64,
    instructions: u64,
    total_cycles: u64,
}

impl Cell {
    fn instructions_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.instructions as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// FNV-1a over the streamed chunk sequence: accept order, chunk
/// boundaries and the semantic content of every entry all land in the
/// digest, so two engines agree iff they stream identical traces in
/// identical chunks. (Same constants as [`lookahead_trace::fnv1a`];
/// folded incrementally here so the digest never materializes the
/// trace.)
struct ChecksumSink {
    hash: u64,
    entries: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl ChecksumSink {
    fn new() -> ChecksumSink {
        ChecksumSink {
            hash: FNV_OFFSET,
            entries: 0,
        }
    }

    fn fold(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }

    fn fold_u64(&mut self, v: u64) {
        self.fold(&v.to_le_bytes());
    }

    fn sync_tag(kind: SyncKind) -> u8 {
        match kind {
            SyncKind::Lock => 0,
            SyncKind::Unlock => 1,
            SyncKind::Barrier => 2,
            SyncKind::WaitEvent => 3,
            SyncKind::SetEvent => 4,
        }
    }
}

impl TraceSink for ChecksumSink {
    fn accept(&mut self, proc: usize, chunk: &TraceChunk) -> std::io::Result<()> {
        self.fold_u64(proc as u64);
        self.fold_u64(chunk.first_index);
        self.fold_u64(chunk.len() as u64);
        for e in chunk.iter() {
            self.fold(&e.pc.to_le_bytes());
            match e.op {
                TraceOp::Compute => self.fold(&[0]),
                TraceOp::Load(m) => {
                    self.fold(&[1, m.miss as u8]);
                    self.fold_u64(m.addr);
                    self.fold(&m.latency.to_le_bytes());
                }
                TraceOp::Store(m) => {
                    self.fold(&[2, m.miss as u8]);
                    self.fold_u64(m.addr);
                    self.fold(&m.latency.to_le_bytes());
                }
                TraceOp::Branch { taken, target } => {
                    self.fold(&[3, taken as u8]);
                    self.fold(&target.to_le_bytes());
                }
                TraceOp::Jump { target } => {
                    self.fold(&[4]);
                    self.fold(&target.to_le_bytes());
                }
                TraceOp::Sync(s) => {
                    self.fold(&[5, Self::sync_tag(s.kind)]);
                    self.fold_u64(s.addr);
                    self.fold(&s.wait.to_le_bytes());
                    self.fold(&s.access.to_le_bytes());
                }
            }
        }
        self.entries += chunk.len() as u64;
        Ok(())
    }
}

/// One cold generation run under the chosen engine, chunks discarded.
fn generate(
    program: &Program,
    image: &DataImage,
    config: &SimConfig,
    event_engine: bool,
    sink: &mut dyn TraceSink,
) -> SimOutcome {
    let sim = Simulator::new(program.clone(), image.clone(), *config)
        .unwrap_or_else(|e| panic!("simulator construction failed: {e}"));
    let run = if event_engine {
        sim.run_with_sink(sink)
    } else {
        sim.run_reference_with_sink(sink)
    };
    run.unwrap_or_else(|e| panic!("generation failed: {e}"))
}

/// Streams both engines through checksum sinks and returns an error
/// naming the first divergence (digest, entry count, finish times or
/// total cycles).
fn verify_engines_agree(
    app: &str,
    program: &Program,
    image: &DataImage,
    config: &SimConfig,
) -> Result<(), String> {
    let mut event = ChecksumSink::new();
    let mut reference = ChecksumSink::new();
    let ev = generate(program, image, config, true, &mut event);
    let re = generate(program, image, config, false, &mut reference);
    if event.hash != reference.hash {
        return Err(format!(
            "{app}: trace checksums diverge (event {:#018x}, reference {:#018x})",
            event.hash, reference.hash
        ));
    }
    if event.entries != reference.entries {
        return Err(format!(
            "{app}: entry counts diverge (event {}, reference {})",
            event.entries, reference.entries
        ));
    }
    if ev.finish_times != re.finish_times {
        return Err(format!(
            "{app}: finish times diverge (event {:?}, reference {:?})",
            ev.finish_times, re.finish_times
        ));
    }
    if ev.total_cycles != re.total_cycles {
        return Err(format!(
            "{app}: total cycles diverge (event {}, reference {})",
            ev.total_cycles, re.total_cycles
        ));
    }
    Ok(())
}

/// Times `iters` cold generations, keeping the best (minimum) wall
/// time.
fn time_engine(
    program: &Program,
    image: &DataImage,
    config: &SimConfig,
    event_engine: bool,
    iters: u32,
) -> (f64, u64, u64) {
    let mut best = f64::INFINITY;
    let mut instructions = 0;
    let mut total_cycles = 0;
    for _ in 0..iters {
        let started = Instant::now();
        let out = generate(program, image, config, event_engine, &mut NullSink);
        best = best.min(started.elapsed().as_secs_f64());
        instructions = out.entry_counts.iter().sum();
        total_cycles = out.total_cycles;
    }
    (best, instructions, total_cycles)
}

/// The reference-over-event wall-time ratio over the cells matching
/// the given application and/or latency (`None` filters nothing; both
/// `None` gives the overall ratio of the summed walls).
fn speedup(cells: &[Cell], app: Option<&str>, latency: Option<u32>) -> Option<f64> {
    let sum = |engine: &str| -> f64 {
        cells
            .iter()
            .filter(|c| {
                c.engine == engine
                    && app.is_none_or(|a| c.app == a)
                    && latency.is_none_or(|l| c.latency == l)
            })
            .map(|c| c.wall_seconds)
            .sum()
    };
    let (event, reference) = (sum("event"), sum("reference"));
    (event > 0.0 && reference > 0.0).then(|| reference / event)
}

fn render_json(tier: SizeTier, config: &SimConfig, iters: u32, cells: &[Cell]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"generation\",");
    let _ = writeln!(out, "  \"tier\": \"{}\",", tier.name());
    let _ = writeln!(out, "  \"num_procs\": {},", config.num_procs);
    let _ = writeln!(out, "  \"iterations\": {iters},");
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"app\": \"{}\", \"engine\": \"{}\", \"latency\": {}, \
             \"wall_seconds\": {:.6}, \"instructions\": {}, \"total_cycles\": {}, \
             \"instructions_per_second\": {:.0}}}",
            c.app,
            c.engine,
            c.latency,
            c.wall_seconds,
            c.instructions,
            c.total_cycles,
            c.instructions_per_second(),
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let mut apps: Vec<&str> = Vec::new();
    for c in cells {
        if !apps.contains(&c.app) {
            apps.push(c.app);
        }
    }
    out.push_str("  \"app_speedups\": {\n");
    for (i, a) in apps.iter().enumerate() {
        let s = speedup(cells, Some(a), None).unwrap_or(0.0);
        let _ = write!(out, "    \"{a}\": {s:.2}");
        out.push_str(if i + 1 < apps.len() { ",\n" } else { "\n" });
    }
    out.push_str("  },\n");
    for latency in LATENCIES {
        let s = speedup(cells, None, Some(latency)).unwrap_or(0.0);
        let _ = writeln!(out, "  \"latency{latency}_speedup\": {s:.2},");
    }
    // Trailing key so every earlier line can end with a comma.
    let overall = speedup(cells, None, None).unwrap_or(0.0);
    let _ = writeln!(out, "  \"overall_speedup\": {overall:.2}");
    out.push_str("}\n");
    out
}

fn render_table(cells: &[Cell]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>8} {:>12} {:>14} {:>14} {:>9}",
        "app", "engine", "latency", "wall (s)", "instructions", "instr/sec", "speedup"
    );
    for c in cells {
        let s = if c.engine == "event" {
            speedup(cells, Some(c.app), Some(c.latency))
                .map_or(String::new(), |s| format!("{s:.2}x"))
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{:<10} {:<10} {:>8} {:>12.4} {:>14} {:>14.0} {:>9}",
            c.app,
            c.engine,
            c.latency,
            c.wall_seconds,
            c.instructions,
            c.instructions_per_second(),
            s,
        );
    }
    for latency in LATENCIES {
        if let Some(s) = speedup(cells, None, Some(latency)) {
            let _ = writeln!(
                out,
                "event-engine speedup vs reference stepper @ latency {latency}: {s:.2}x"
            );
        }
    }
    out
}

const USAGE: &str = "usage: lookahead bench generation [OPTIONS]

Times cold trace generation for every selected application at miss
penalties 50 and 100 under both the discrete-event engine and the
cycle-by-cycle reference stepper, after verifying that the two stream
byte-identical chunk sequences.

options:
  --out PATH       result file (default: BENCH_generation.json)
  --iters N        timed repetitions per cell, best-of-N (default: 3)
  --tier NAME      workload size tier: small, default, paper or large
                   (default: from the environment)
  --min-speedup X  fail unless the latency-100 speedup is at least X
  --skip-verify    skip the engine-equivalence pass (timing only)
  -h, --help       show this help

environment: LOOKAHEAD_SMALL=1, LOOKAHEAD_PROCS=n, LOOKAHEAD_APPS=...";

/// Entry point for `lookahead bench generation`.
pub fn generation_main(args: &[String]) -> ExitCode {
    let mut out_path = "BENCH_generation.json".to_string();
    let mut iters: u32 = 3;
    let mut tier: Option<SizeTier> = None;
    let mut min_speedup: Option<f64> = None;
    let mut verify = true;
    let parse_tier = |v: &str| SizeTier::from_name(v);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--skip-verify" => verify = false,
            "--out" => match it.next() {
                Some(v) => out_path = v.clone(),
                None => return usage_error("--out needs a value"),
            },
            "--tier" => match it.next().map(|v| parse_tier(v)) {
                Some(Some(t)) => tier = Some(t),
                _ => return usage_error("--tier needs one of: small, default, paper, large"),
            },
            "--iters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => iters = v,
                _ => return usage_error("--iters needs a positive integer"),
            },
            "--min-speedup" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => min_speedup = Some(v),
                _ => return usage_error("--min-speedup needs a positive number"),
            },
            other => {
                if let Some(v) = other.strip_prefix("--out=") {
                    out_path = v.to_string();
                } else if let Some(v) = other.strip_prefix("--tier=") {
                    match parse_tier(v) {
                        Some(t) => tier = Some(t),
                        None => {
                            return usage_error("--tier needs one of: small, default, paper, large")
                        }
                    }
                } else if let Some(v) = other.strip_prefix("--iters=") {
                    match v.parse() {
                        Ok(n) if n > 0 => iters = n,
                        _ => return usage_error("--iters needs a positive integer"),
                    }
                } else if let Some(v) = other.strip_prefix("--min-speedup=") {
                    match v.parse::<f64>() {
                        Ok(x) if x > 0.0 => min_speedup = Some(x),
                        _ => return usage_error("--min-speedup needs a positive number"),
                    }
                } else {
                    return usage_error(&format!("unknown option {other:?}"));
                }
            }
        }
    }

    let tier = tier.unwrap_or_else(SizeTier::from_env);
    let config = config_from_env();
    let apps = selected_apps();
    eprintln!(
        "bench generation: tier {}, {} processors, best of {iters} cold runs per cell",
        tier.name(),
        config.num_procs,
    );
    let total = Instant::now();
    let mut cells = Vec::new();
    for app in &apps {
        let built = tier.workload(*app).build(config.num_procs);
        for latency in LATENCIES {
            let config = SimConfig {
                mem: MemoryParams::with_miss_penalty(latency),
                ..config
            };
            if verify {
                let started = Instant::now();
                if let Err(e) =
                    verify_engines_agree(app.name(), &built.program, &built.image, &config)
                {
                    eprintln!("error: engine divergence — {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "  {} @ {latency}: engines stream identical chunks ({:.1}s)",
                    app.name(),
                    started.elapsed().as_secs_f64()
                );
            }
            for (engine, event_engine) in [("event", true), ("reference", false)] {
                let (wall_seconds, instructions, total_cycles) =
                    time_engine(&built.program, &built.image, &config, event_engine, iters);
                eprintln!(
                    "  {} @ {latency} / {engine}: {instructions} instructions in {wall_seconds:.2}s",
                    app.name()
                );
                cells.push(Cell {
                    app: app.name(),
                    engine,
                    latency,
                    wall_seconds,
                    instructions,
                    total_cycles,
                });
            }
        }
    }
    print!("{}", render_table(&cells));
    let json = render_json(tier, &config, iters, &cells);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "bench generation: wrote {out_path} in {:.2}s total",
        total.elapsed().as_secs_f64()
    );
    if let Some(gate) = min_speedup {
        let gated = speedup(&cells, None, Some(100)).unwrap_or(0.0);
        if gated < gate {
            eprintln!(
                "error: latency-100 speedup {gated:.2}x is below the --min-speedup {gate} gate"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("speedup gate passed: {gated:.2}x >= {gate}x @ latency 100");
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookahead_trace::{fnv1a, TraceEntry};

    fn cell(app: &'static str, engine: &'static str, latency: u32, wall: f64) -> Cell {
        Cell {
            app,
            engine,
            latency,
            wall_seconds: wall,
            instructions: 1000,
            total_cycles: 5000,
        }
    }

    #[test]
    fn speedup_is_reference_over_event() {
        let cells = vec![
            cell("LU", "event", 100, 1.0),
            cell("LU", "reference", 100, 4.0),
            cell("MP3D", "event", 50, 2.0),
            cell("MP3D", "reference", 50, 2.0),
        ];
        assert_eq!(speedup(&cells, Some("LU"), None), Some(4.0));
        assert_eq!(speedup(&cells, Some("MP3D"), None), Some(1.0));
        assert_eq!(speedup(&cells, None, Some(100)), Some(4.0));
        assert_eq!(speedup(&cells, None, Some(50)), Some(1.0));
        assert_eq!(speedup(&cells, None, None), Some(2.0));
        assert_eq!(speedup(&cells, Some("OCEAN"), None), None);
        assert_eq!(speedup(&cells, None, Some(75)), None);
    }

    #[test]
    fn checksum_fold_matches_the_trace_crate_fnv1a() {
        // The incremental fold must stay in lockstep with the archive
        // hash so a future constant change cannot silently decouple
        // them.
        let mut sink = ChecksumSink::new();
        let bytes = [1u8, 2, 3, 0xFF, 0, 42];
        sink.fold(&bytes);
        assert_eq!(sink.hash, fnv1a(&bytes));
    }

    #[test]
    fn checksum_is_sensitive_to_chunk_boundaries_and_order() {
        let entries = vec![TraceEntry::compute(0x10), TraceEntry::compute(0x14)];
        let chunk = |first: u64, e: &[TraceEntry]| TraceChunk::from_slice(first, e);
        // Same entries, one chunk vs two.
        let mut one = ChecksumSink::new();
        one.accept(0, &chunk(0, &entries)).unwrap();
        let mut two = ChecksumSink::new();
        two.accept(0, &chunk(0, &entries[..1])).unwrap();
        two.accept(0, &chunk(1, &entries[1..])).unwrap();
        assert_ne!(one.hash, two.hash);
        assert_eq!(one.entries, two.entries);
        // Same chunks, different accept order (processor interleaving).
        let mut ab = ChecksumSink::new();
        ab.accept(0, &chunk(0, &entries)).unwrap();
        ab.accept(1, &chunk(0, &entries)).unwrap();
        let mut ba = ChecksumSink::new();
        ba.accept(1, &chunk(0, &entries)).unwrap();
        ba.accept(0, &chunk(0, &entries)).unwrap();
        assert_ne!(ab.hash, ba.hash);
    }
}
