//! `lookahead bench` — wall-clock benchmark of the re-timing engines.
//!
//! Measures retired-instructions-per-second and wall time for every
//! (model × consistency × latency) cell over the selected
//! applications' traces, including the dynamically scheduled model
//! under **both** engines: the event-driven skip-ahead engine
//! ([`Ds::run`]) and the retained cycle-by-cycle reference stepper
//! ([`Ds::run_reference`]). The headline number is the DS speedup on
//! the 100-cycle-latency sweep, where dead cycles dominate and
//! skipping pays the most.
//!
//! Results are written as `BENCH_retiming.json` (machine-readable, one
//! object per cell) and summarized on stdout. Timing uses
//! `std::time::Instant` only — no external benchmarking dependency.

use crate::{config_from_env, Runner, SizeTier};
use lookahead_core::base::Base;
use lookahead_core::consistency::ConsistencyModel;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::ProcessorModel;
use lookahead_harness::cache::TraceCache;
use lookahead_harness::pipeline::AppRun;
use lookahead_memsys::MemoryParams;
use lookahead_multiproc::SimConfig;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// The miss penalties benchmarked; 100 is the sweep the acceptance
/// criterion targets.
const LATENCIES: [u32; 2] = [50, 100];

/// One measured benchmark cell.
struct Cell {
    model: &'static str,
    engine: &'static str,
    consistency: &'static str,
    latency: u32,
    wall_seconds: f64,
    instructions: u64,
}

impl Cell {
    fn instructions_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.instructions as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Times `iters` repetitions of re-timing every run, keeping the best
/// (minimum) wall time; returns (seconds, instructions retired in one
/// repetition).
fn time_model(runs: &[AppRun], iters: u32, f: impl Fn(&AppRun) -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut instructions = 0;
    for _ in 0..iters {
        instructions = 0;
        let started = Instant::now();
        for run in runs {
            instructions += f(run);
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    (best, instructions)
}

fn consistency_name(m: ConsistencyModel) -> &'static str {
    match m {
        ConsistencyModel::Sc => "sc",
        ConsistencyModel::Pc => "pc",
        ConsistencyModel::Wo => "wo",
        ConsistencyModel::Rc => "rc",
    }
}

fn bench_cells(runner: &Runner, iters: u32) -> Vec<Cell> {
    let mut cells = Vec::new();
    for latency in LATENCIES {
        let config = SimConfig {
            mem: MemoryParams::with_miss_penalty(latency),
            ..*runner.config()
        };
        let runs: Vec<AppRun> = runner
            .apps()
            .into_iter()
            .map(|app| runner.run_workload(runner.tier().workload(app).as_ref(), &config))
            .collect();

        let mut push = |model, engine, consistency, f: &dyn Fn(&AppRun) -> u64| {
            let (wall_seconds, instructions) = time_model(&runs, iters, f);
            cells.push(Cell {
                model,
                engine,
                consistency,
                latency,
                wall_seconds,
                instructions,
            });
        };

        push("BASE", "analytic", "-", &|r: &AppRun| {
            Base.run(&r.program, r.trace()).stats.instructions
        });
        for m in [ConsistencyModel::Sc, ConsistencyModel::Rc] {
            push(
                "SSBR",
                "analytic",
                consistency_name(m),
                &move |r: &AppRun| {
                    InOrder::ssbr(m)
                        .run(&r.program, r.trace())
                        .stats
                        .instructions
                },
            );
            push("SS", "analytic", consistency_name(m), &move |r: &AppRun| {
                InOrder::ss(m).run(&r.program, r.trace()).stats.instructions
            });
        }
        for m in [
            ConsistencyModel::Sc,
            ConsistencyModel::Pc,
            ConsistencyModel::Wo,
            ConsistencyModel::Rc,
        ] {
            let ds = Ds::new(DsConfig::with_model(m));
            push("DS", "skip", consistency_name(m), &move |r: &AppRun| {
                ds.run(&r.program, r.trace()).stats.instructions
            });
            push(
                "DS",
                "reference",
                consistency_name(m),
                &move |r: &AppRun| ds.run_reference(&r.program, r.trace()).stats.instructions,
            );
        }
    }
    cells
}

/// The DS skip-vs-reference wall-time ratio summed over one latency's
/// consistency cells (`None` if either side is missing or zero).
fn ds_speedup(cells: &[Cell], latency: u32) -> Option<f64> {
    let sum = |engine: &str| -> f64 {
        cells
            .iter()
            .filter(|c| c.model == "DS" && c.engine == engine && c.latency == latency)
            .map(|c| c.wall_seconds)
            .sum()
    };
    let (skip, reference) = (sum("skip"), sum("reference"));
    (skip > 0.0 && reference > 0.0).then(|| reference / skip)
}

fn render_json(runner: &Runner, iters: u32, cells: &[Cell]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"retiming\",");
    let _ = writeln!(out, "  \"tier\": \"{}\",", runner.tier().name());
    let apps: Vec<String> = runner
        .apps()
        .iter()
        .map(|a| format!("\"{}\"", a.name()))
        .collect();
    let _ = writeln!(out, "  \"apps\": [{}],", apps.join(", "));
    let _ = writeln!(out, "  \"iterations\": {iters},");
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"model\": \"{}\", \"engine\": \"{}\", \"consistency\": \"{}\", \
             \"latency\": {}, \"wall_seconds\": {:.6}, \"instructions\": {}, \
             \"instructions_per_second\": {:.0}}}",
            c.model,
            c.engine,
            c.consistency,
            c.latency,
            c.wall_seconds,
            c.instructions,
            c.instructions_per_second(),
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    for latency in LATENCIES {
        let speedup = ds_speedup(cells, latency).unwrap_or(0.0);
        let _ = writeln!(out, "  \"latency{latency}_ds_speedup\": {speedup:.2},");
    }
    // Trailing key so every earlier line can end with a comma.
    let _ = writeln!(out, "  \"latencies\": [50, 100]");
    out.push_str("}\n");
    out
}

fn render_table(cells: &[Cell]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:<10} {:<5} {:>8} {:>12} {:>14}",
        "model", "engine", "cons", "latency", "wall (s)", "instr/sec"
    );
    for c in cells {
        let _ = writeln!(
            out,
            "{:<6} {:<10} {:<5} {:>8} {:>12.4} {:>14.0}",
            c.model,
            c.engine,
            c.consistency,
            c.latency,
            c.wall_seconds,
            c.instructions_per_second(),
        );
    }
    for latency in LATENCIES {
        if let Some(s) = ds_speedup(cells, latency) {
            let _ = writeln!(
                out,
                "DS skip-ahead speedup vs reference stepper @ latency {latency}: {s:.2}x"
            );
        }
    }
    out
}

const USAGE: &str = "usage: lookahead bench [OPTIONS]

Benchmarks the re-timing engines over every (model x consistency x
latency) cell and writes machine-readable results.

options:
  --out PATH       result file (default: BENCH_retiming.json)
  --iters N        timed repetitions per cell, best-of-N (default: 3)
  --cache-dir DIR  cache traces under DIR (default: target/trace-cache)
  --no-cache       disable the trace cache
  -h, --help       show this help

environment: LOOKAHEAD_SMALL=1, LOOKAHEAD_PROCS=n, LOOKAHEAD_APPS=...";

/// Entry point for `lookahead bench`.
pub fn bench_main(args: &[String]) -> ExitCode {
    let mut out_path = "BENCH_retiming.json".to_string();
    let mut iters: u32 = 3;
    let mut cache_dir: Option<String> = Some("target/trace-cache".to_string());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--no-cache" => cache_dir = None,
            "--out" => match it.next() {
                Some(v) => out_path = v.clone(),
                None => return usage_error("--out needs a value"),
            },
            "--cache-dir" => match it.next() {
                Some(v) => cache_dir = Some(v.clone()),
                None => return usage_error("--cache-dir needs a value"),
            },
            "--iters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => iters = v,
                _ => return usage_error("--iters needs a positive integer"),
            },
            other => {
                if let Some(v) = other.strip_prefix("--out=") {
                    out_path = v.to_string();
                } else if let Some(v) = other.strip_prefix("--cache-dir=") {
                    cache_dir = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--iters=") {
                    match v.parse() {
                        Ok(n) if n > 0 => iters = n,
                        _ => return usage_error("--iters needs a positive integer"),
                    }
                } else {
                    return usage_error(&format!("unknown option {other:?}"));
                }
            }
        }
    }

    let runner = Runner::new(
        config_from_env(),
        SizeTier::from_env(),
        cache_dir.map(TraceCache::new),
        lookahead_harness::parallel::default_workers(),
    );
    eprintln!(
        "bench: tier {}, {} processors, best of {iters} runs per cell",
        runner.tier().name(),
        runner.config().num_procs,
    );
    let total = Instant::now();
    let cells = bench_cells(&runner, iters);
    print!("{}", render_table(&cells));
    let json = render_json(&runner, iters, &cells);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "bench: wrote {out_path} in {:.2}s total",
        total.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(model: &'static str, engine: &'static str, latency: u32, wall: f64) -> Cell {
        Cell {
            model,
            engine,
            consistency: "rc",
            latency,
            wall_seconds: wall,
            instructions: 1000,
        }
    }

    #[test]
    fn speedup_is_reference_over_skip() {
        let cells = vec![
            cell("DS", "skip", 100, 1.0),
            cell("DS", "reference", 100, 4.0),
            cell("DS", "skip", 50, 2.0),
            cell("DS", "reference", 50, 3.0),
            cell("BASE", "analytic", 100, 9.0),
        ];
        assert_eq!(ds_speedup(&cells, 100), Some(4.0));
        assert_eq!(ds_speedup(&cells, 50), Some(1.5));
        assert_eq!(ds_speedup(&cells, 75), None);
    }

    #[test]
    fn instructions_per_second_handles_zero_time() {
        assert_eq!(cell("DS", "skip", 100, 0.0).instructions_per_second(), 0.0);
        let c = cell("DS", "skip", 100, 0.5);
        assert_eq!(c.instructions_per_second(), 2000.0);
    }
}
