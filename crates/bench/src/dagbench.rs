//! `lookahead bench dag` — wall-clock comparison of the two sweep
//! schedulers on a cold cache.
//!
//! Runs the merged figure3/figure4/summary sweep twice from scratch
//! (no trace cache on either side):
//!
//! * **flat** — the pre-DAG shape: generate every application's trace
//!   (one barrier), then render each report with its own
//!   per-application re-timing pool (a barrier per report per app);
//! * **dag** — [`reports::dag_sweep`]: one costed task graph where
//!   generation nodes feed re-timing cells directly, ready work
//!   executes in upward-rank (critical-path) order, and the BASE
//!   reference cell is computed once per application and shared by
//!   all three reports.
//!
//! The three report texts are asserted byte-identical between the two
//! schedules before any number is reported — a speedup over different
//! output would be meaningless. Results are written as
//! `BENCH_dag.json`; `--min-speedup` turns the headline ratio into a
//! hard gate (exit 1), which CI uses with a conservative floor on the
//! small tier where the sweep is too short for scheduling to matter.

use crate::{config_from_env, reports, Runner, SizeTier};
use lookahead_harness::parallel;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// One timed side of the comparison.
struct Side {
    seconds: f64,
    /// `(report name, text)` in [`reports::DAG_REPORTS`] order.
    texts: Vec<(String, String)>,
}

/// Times the pre-DAG schedule: a generation barrier followed by the
/// three flat report functions.
fn run_flat(runner: &Runner, workers: usize) -> Side {
    let started = Instant::now();
    let runs = runner.run_all();
    let texts = vec![
        (
            "figure3".to_string(),
            reports::figure3_report(&runs, workers),
        ),
        (
            "figure4".to_string(),
            reports::figure4_report(&runs, workers),
        ),
        (
            "summary".to_string(),
            reports::summary_report(&runs, workers),
        ),
    ];
    Side {
        seconds: started.elapsed().as_secs_f64(),
        texts,
    }
}

/// Times the merged DAG schedule and keeps its executor stats.
fn run_dag(runner: &Runner, workers: usize) -> (Side, lookahead_harness::DagStats, usize) {
    let started = Instant::now();
    let sweep = reports::dag_sweep(runner, reports::DAG_REPORTS, workers);
    (
        Side {
            seconds: started.elapsed().as_secs_f64(),
            texts: sweep.texts,
        },
        sweep.stats,
        sweep.cells,
    )
}

/// Renders the machine-readable result object.
fn render_json(
    runner: &Runner,
    workers: usize,
    cells: usize,
    flat: &Side,
    dag: &Side,
    stats: &lookahead_harness::DagStats,
) -> String {
    let apps: Vec<String> = runner
        .apps()
        .iter()
        .map(|a| format!("\"{}\"", a.name()))
        .collect();
    let per_sec = |cells: usize, seconds: f64| {
        if seconds > 0.0 {
            cells as f64 / seconds
        } else {
            0.0
        }
    };
    // The flat schedule re-times the BASE reference once per report
    // per application; the DAG shares it, so flat runs two extra
    // cells per application.
    let flat_cells = cells + 2 * runner.apps().len();
    let speedup = if dag.seconds > 0.0 {
        flat.seconds / dag.seconds
    } else {
        0.0
    };
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"dag\",");
    let _ = writeln!(out, "  \"tier\": \"{}\",", runner.tier().name());
    let _ = writeln!(out, "  \"workers\": {workers},");
    let _ = writeln!(out, "  \"apps\": [{}],", apps.join(", "));
    let _ = writeln!(
        out,
        "  \"reports\": [\"figure3\", \"figure4\", \"summary\"],"
    );
    let _ = writeln!(out, "  \"byte_identical\": true,");
    let _ = writeln!(out, "  \"flat_seconds\": {:.4},", flat.seconds);
    let _ = writeln!(out, "  \"dag_seconds\": {:.4},", dag.seconds);
    let _ = writeln!(out, "  \"flat_cells\": {flat_cells},");
    let _ = writeln!(out, "  \"dag_cells\": {cells},");
    let _ = writeln!(
        out,
        "  \"flat_cells_per_sec\": {:.2},",
        per_sec(flat_cells, flat.seconds)
    );
    let _ = writeln!(
        out,
        "  \"dag_cells_per_sec\": {:.2},",
        per_sec(cells, dag.seconds)
    );
    let _ = writeln!(out, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(out, "  \"dag_tasks\": {},", stats.tasks);
    let _ = writeln!(out, "  \"dag_edges\": {},", stats.edges);
    let _ = writeln!(out, "  \"dag_collapsed\": {},", stats.collapsed);
    let _ = writeln!(out, "  \"dag_critical_path\": {},", stats.critical_path);
    let _ = writeln!(out, "  \"dag_total_cost\": {},", stats.total_cost);
    let _ = writeln!(
        out,
        "  \"dag_planned_makespan\": {},",
        stats.planned_makespan
    );
    let _ = writeln!(out, "  \"dag_peak_ready\": {}", stats.peak_ready);
    out.push_str("}\n");
    out
}

const USAGE: &str = "usage: lookahead bench dag [OPTIONS]

Times the merged figure3/figure4/summary sweep under the flat
(barriered) schedule and the critical-path DAG schedule, cold cache on
both sides, asserting the report texts are byte-identical first.

options:
  --tier NAME       workload size tier: small|default|paper
                    (default: from LOOKAHEAD_SMALL/LOOKAHEAD_PAPER)
  --jobs N          worker threads (default: all cores)
  --out PATH        result file (default: BENCH_dag.json)
  --min-speedup X   exit 1 unless flat/dag wall-time ratio >= X
  -h, --help        show this help

environment: LOOKAHEAD_PROCS=n, LOOKAHEAD_APPS=...";

/// Entry point for `lookahead bench dag`.
pub fn dag_main(args: &[String]) -> ExitCode {
    let mut out_path = "BENCH_dag.json".to_string();
    let mut tier = SizeTier::from_env();
    let mut jobs: Option<usize> = None;
    let mut min_speedup: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let (key, mut value) = match a.split_once('=') {
            Some((k, v)) => (k, Some(v.to_string())),
            None => (a.as_str(), None),
        };
        let mut take = |it: &mut std::slice::Iter<String>| match value.take() {
            Some(v) => Some(v),
            None => it.next().cloned(),
        };
        match key {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--out" => match take(&mut it) {
                Some(v) => out_path = v,
                None => return usage_error("--out needs a value"),
            },
            "--tier" => match take(&mut it).as_deref().and_then(SizeTier::from_name) {
                Some(t) => tier = t,
                None => return usage_error("--tier needs one of small|default|paper"),
            },
            "--jobs" => match take(&mut it).and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                _ => return usage_error("--jobs needs a positive integer"),
            },
            "--min-speedup" => match take(&mut it).and_then(|v| v.parse().ok()) {
                Some(x) if x > 0.0 => min_speedup = Some(x),
                _ => return usage_error("--min-speedup needs a positive number"),
            },
            other => return usage_error(&format!("unknown option {other:?}")),
        }
    }

    let workers = jobs.unwrap_or_else(parallel::default_workers);
    // Cold cache on both sides: the point of the comparison is the
    // schedule, not disk reuse, and each side gets its own Runner so
    // hit/miss accounting stays per-side.
    let flat_runner = Runner::new(config_from_env(), tier, None, workers);
    eprintln!(
        "bench dag: tier {}, {} processors, {} workers, cold cache",
        tier.name(),
        flat_runner.config().num_procs,
        workers,
    );
    let flat = run_flat(&flat_runner, workers);
    eprintln!("bench dag: flat schedule {:.2}s", flat.seconds);
    let dag_runner = Runner::new(config_from_env(), tier, None, workers);
    let (dag, stats, cells) = run_dag(&dag_runner, workers);
    eprintln!(
        "bench dag: dag schedule {:.2}s (critical path {} / total cost {}, peak ready {})",
        dag.seconds, stats.critical_path, stats.total_cost, stats.peak_ready,
    );

    for ((name, flat_text), (_, dag_text)) in flat.texts.iter().zip(&dag.texts) {
        if flat_text != dag_text {
            eprintln!("error: {name} differs between flat and dag schedules — refusing to report a speedup over divergent output");
            return ExitCode::FAILURE;
        }
    }

    let json = render_json(&flat_runner, workers, cells, &flat, &dag, &stats);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    let speedup = flat.seconds / dag.seconds.max(f64::MIN_POSITIVE);
    println!(
        "dag sweep: {cells} cells, speedup {speedup:.3}x over flat ({:.2}s -> {:.2}s), reports byte-identical",
        flat.seconds, dag.seconds,
    );
    eprintln!("bench dag: wrote {out_path}");
    if let Some(min) = min_speedup {
        if speedup < min {
            eprintln!("error: speedup {speedup:.3} below required minimum {min}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
