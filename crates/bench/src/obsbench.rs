//! `lookahead bench obs` — wall-clock overhead of request tracing.
//!
//! The tracing layer promises to be a cheap passthrough when no scope
//! is installed and cheap enough to leave on when one is. This
//! benchmark measures both sides on the same work the serve tier
//! traces: a figure-3 window sweep re-timed on the worker pool, once
//! with no trace scope (exactly what `handle_target` / the report
//! driver sees) and once under a live [`TraceContext`] (exactly what
//! an HTTP request sees — every `retime.cell` span recorded).
//!
//! The acceptance gate: traced wall time within 5% of untraced.
//! Results land in `BENCH_obs.json`; timing is best-of-N with
//! `std::time::Instant` only.

use crate::{config_from_env, Runner, SizeTier};
use lookahead_harness::cache::TraceCache;
use lookahead_harness::experiments::PAPER_WINDOWS;
use lookahead_harness::figure3_with;
use lookahead_harness::pipeline::AppRun;
use lookahead_obs::span::{self, TraceContext, TraceScope};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// The overhead budget, in percent.
const BUDGET_PCT: f64 = 5.0;

/// Best-of-`iters` wall time of one full sweep over `runs`.
fn time_sweep(runs: &[AppRun], workers: usize, iters: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let started = Instant::now();
        for run in runs {
            std::hint::black_box(figure3_with(run, &PAPER_WINDOWS, workers));
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

fn render_json(
    runner: &Runner,
    iters: u32,
    untraced: f64,
    traced: f64,
    spans_recorded: usize,
) -> String {
    let overhead_pct = if untraced > 0.0 {
        100.0 * (traced - untraced) / untraced
    } else {
        0.0
    };
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"obs-overhead\",");
    let _ = writeln!(out, "  \"tier\": \"{}\",", runner.tier().name());
    let apps: Vec<String> = runner
        .apps()
        .iter()
        .map(|a| format!("\"{}\"", a.name()))
        .collect();
    let _ = writeln!(out, "  \"apps\": [{}],", apps.join(", "));
    let _ = writeln!(out, "  \"iterations\": {iters},");
    let _ = writeln!(out, "  \"untraced_seconds\": {untraced:.6},");
    let _ = writeln!(out, "  \"traced_seconds\": {traced:.6},");
    let _ = writeln!(out, "  \"spans_per_sweep\": {spans_recorded},");
    let _ = writeln!(out, "  \"overhead_pct\": {overhead_pct:.3},");
    let _ = writeln!(out, "  \"budget_pct\": {BUDGET_PCT},");
    let _ = writeln!(out, "  \"pass\": {}", overhead_pct <= BUDGET_PCT);
    out.push_str("}\n");
    out
}

const USAGE: &str = "usage: lookahead bench obs [OPTIONS]

Measures the wall-clock overhead of request tracing on a figure-3
window sweep: untraced (no scope installed) vs traced (a live
TraceContext recording every span), best-of-N each. Fails when the
overhead exceeds 5%.

options:
  --out PATH       result file (default: BENCH_obs.json)
  --iters N        timed repetitions per side, best-of-N (default: 3)
  --cache-dir DIR  cache traces under DIR (default: target/trace-cache)
  --no-cache       disable the trace cache
  -h, --help       show this help

environment: LOOKAHEAD_SMALL=1, LOOKAHEAD_PROCS=n, LOOKAHEAD_APPS=...";

/// Entry point for `lookahead bench obs`.
pub fn obs_main(args: &[String]) -> ExitCode {
    let mut out_path = "BENCH_obs.json".to_string();
    let mut iters: u32 = 3;
    let mut cache_dir: Option<String> = Some("target/trace-cache".to_string());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--no-cache" => cache_dir = None,
            "--out" => match it.next() {
                Some(v) => out_path = v.clone(),
                None => return usage_error("--out needs a value"),
            },
            "--cache-dir" => match it.next() {
                Some(v) => cache_dir = Some(v.clone()),
                None => return usage_error("--cache-dir needs a value"),
            },
            "--iters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => iters = v,
                _ => return usage_error("--iters needs a positive integer"),
            },
            other => {
                if let Some(v) = other.strip_prefix("--out=") {
                    out_path = v.to_string();
                } else if let Some(v) = other.strip_prefix("--cache-dir=") {
                    cache_dir = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--iters=") {
                    match v.parse() {
                        Ok(n) if n > 0 => iters = n,
                        _ => return usage_error("--iters needs a positive integer"),
                    }
                } else {
                    return usage_error(&format!("unknown option {other:?}"));
                }
            }
        }
    }

    let runner = Runner::new(
        config_from_env(),
        SizeTier::from_env(),
        cache_dir.map(TraceCache::new),
        lookahead_harness::parallel::default_workers(),
    );
    eprintln!(
        "bench obs: tier {}, {} processors, best of {iters} sweeps per side",
        runner.tier().name(),
        runner.config().num_procs,
    );
    let runs: Vec<AppRun> = runner
        .apps()
        .into_iter()
        .map(|app| runner.run_workload(runner.tier().workload(app).as_ref(), runner.config()))
        .collect();
    // Materialize every trace up front so neither side pays archive
    // I/O inside the timed region.
    for run in &runs {
        let _ = run.trace();
    }

    // Interleave the sides (untraced first — it is also the warmup).
    let untraced = time_sweep(&runs, runner.workers(), iters);
    let ctx = TraceContext::new(span::next_request_id());
    let root = ctx.alloc_id();
    let prev = span::set_scope(Some(TraceScope::new(ctx.clone(), root)));
    let traced = time_sweep(&runs, runner.workers(), iters);
    span::set_scope(prev);
    let spans_per_sweep = ctx.spans().len() / iters as usize;

    let overhead_pct = if untraced > 0.0 {
        100.0 * (traced - untraced) / untraced
    } else {
        0.0
    };
    println!("untraced  {untraced:.4}s");
    println!("traced    {traced:.4}s ({spans_per_sweep} spans per sweep)");
    println!("overhead  {overhead_pct:+.2}% (budget {BUDGET_PCT}%)");

    let json = render_json(&runner, iters, untraced, traced, spans_per_sweep);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("bench obs: wrote {out_path}");
    if overhead_pct > BUDGET_PCT {
        eprintln!(
            "bench obs: tracing overhead {overhead_pct:.2}% exceeds the {BUDGET_PCT}% budget"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
