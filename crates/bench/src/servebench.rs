//! `lookahead bench serve` — transport benchmark for the experiment
//! service — and the nonblocking many-connection load engine behind it
//! (also used by `loadgen --connections`).
//!
//! The engine drives N concurrent HTTP/1.1 connections from **one
//! thread** using the same raw-syscall epoll wrapper the server's
//! reactor transport is built on ([`lookahead_serve::reactor`]): every
//! client socket is nonblocking, a per-slot state machine walks
//! send-request → read-response → (keep-alive reuse | reconnect), and
//! completion is detected from the response framing (`Content-Length`,
//! chunked terminator, or connection close). Thread-per-client load
//! generation tops out around the machine's thread budget; this engine
//! holds thousands of sockets open at once, which is exactly the
//! regime the reactor transport exists for.
//!
//! `lookahead bench serve` spawns one in-process service (shared body
//! memo, so transport — not simulation — dominates), warms every
//! target once, then measures four cells: each transport at a small
//! connection count (32) and at the big one (default 1000). Results
//! land in `BENCH_serve.json`: latency percentiles, the server-side
//! queue-wait vs handler service-time split (from `Server-Timing`),
//! keep-alive reuse and coalescing rates. The legacy transport is
//! expected to shed most of the 1000-connection run as 503s — its
//! queue bound *is* its capacity — and the JSON records that rather
//! than hiding it.

use crate::config_from_env;
use lookahead_harness::parallel;
use lookahead_harness::SizeTier;
use lookahead_serve::reactor::{raise_nofile_limit, Epoll, Event};
use lookahead_serve::{
    ExperimentService, Server, ServerConfig, ServiceConfig, ShutdownHandle, Transport,
};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured request: wall-clock total plus the server-reported
/// queue-wait and handler stage durations (from `Server-Timing`).
#[derive(Clone, Copy)]
pub struct LoadSample {
    pub total_us: u64,
    pub queue_us: Option<u64>,
    pub handler_us: Option<u64>,
}

/// What to drive: `connections` concurrent slots, each issuing
/// `requests_per_conn` sequential requests against `targets` (the
/// loadgen hot/cold mix: odd global indices hit `targets[0]`).
pub struct LoadOptions {
    pub addr: SocketAddr,
    pub connections: usize,
    pub requests_per_conn: usize,
    /// Reuse connections across requests (HTTP/1.1 keep-alive). When
    /// false every request asks for `Connection: close` and each slot
    /// reconnects per request — the legacy client shape.
    pub keepalive: bool,
    pub targets: Vec<String>,
    /// Per-request deadline; an expired slot is abandoned and its
    /// remaining requests counted as errors.
    pub request_timeout: Duration,
}

impl LoadOptions {
    pub fn new(addr: SocketAddr, connections: usize, requests_per_conn: usize) -> LoadOptions {
        LoadOptions {
            addr,
            connections,
            requests_per_conn,
            keepalive: true,
            targets: vec!["/healthz".to_string()],
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// The engine's result: per-request samples plus error accounting.
pub struct LoadReport {
    pub samples: Vec<LoadSample>,
    pub errors: u64,
    pub elapsed: Duration,
    /// Responses received on a connection that had already carried at
    /// least one earlier response (client-observed keep-alive reuse).
    pub reused: u64,
}

impl LoadReport {
    /// Sorted wall-clock latencies, for percentile queries.
    pub fn sorted_latencies(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.samples.iter().map(|s| s.total_us).collect();
        v.sort_unstable();
        v
    }

    pub fn sorted_queue_waits(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.samples.iter().filter_map(|s| s.queue_us).collect();
        v.sort_unstable();
        v
    }

    pub fn sorted_services(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.samples.iter().filter_map(|s| s.handler_us).collect();
        v.sort_unstable();
        v
    }
}

/// Exact percentile of a sorted sample (nearest-rank on n-1).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One stage's duration out of a `Server-Timing` header value
/// (`queue;dur=0.042, parse;dur=0.003, handler;dur=12.8`), in
/// microseconds.
pub fn server_timing_us(value: &str, stage: &str) -> Option<u64> {
    value.split(',').find_map(|part| {
        let ms: f64 = part
            .trim()
            .strip_prefix(stage)?
            .strip_prefix(";dur=")?
            .parse()
            .ok()?;
        Some((ms * 1000.0) as u64)
    })
}

/// A counter out of the `/metrics.json` JSON (flat `"path":value`), 0
/// when absent.
pub fn metric(body: &str, path: &str) -> u64 {
    let needle = format!("\"{path}\":");
    match body.find(&needle) {
        None => 0,
        Some(at) => body[at + needle.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap_or(0),
    }
}

/// How many connections beyond the fleet the process needs fds for
/// (epoll, listener, stdio, the service's own files).
const FD_SLACK: u64 = 64;

/// One client slot's in-flight connection.
struct ClientConn {
    stream: TcpStream,
    /// Request bytes still to send.
    out: Vec<u8>,
    out_at: usize,
    /// Response bytes received so far.
    inbuf: Vec<u8>,
    /// Byte offset just past `\r\n\r\n` once the head is complete.
    head_end: Option<usize>,
    content_length: Option<usize>,
    chunked: bool,
    /// The server will close after this response (no length framing,
    /// or an explicit `Connection: close`).
    close_framed: bool,
    /// Responses already carried by this TCP connection.
    served_on_conn: u64,
    t0: Instant,
    deadline: Instant,
    /// Current epoll interest (readable, writable).
    interest: (bool, bool),
}

/// What a slot should do next, decided under the connection borrow.
enum SlotStep {
    Continue,
    Park { readable: bool, writable: bool },
    Complete,
    Failed(String),
}

struct Engine<'a> {
    epoll: Epoll,
    opts: &'a LoadOptions,
    /// token = slot index; a slot has at most one live connection.
    conns: HashMap<u64, ClientConn>,
    /// Responses completed per slot (across reconnects).
    done: Vec<usize>,
    finished_slots: usize,
    samples: Vec<LoadSample>,
    errors: u64,
    reused: u64,
    error_lines: u64,
}

/// At most this many per-request error lines are printed; the rest are
/// summarized (a 1000-connection 503 storm is one fact, not one
/// thousand lines).
const MAX_ERROR_LINES: u64 = 5;

impl Engine<'_> {
    fn target_for(&self, slot: usize, r: usize) -> &str {
        let targets = &self.opts.targets;
        let global = slot * self.opts.requests_per_conn + r;
        if global % 2 == 1 {
            &targets[0]
        } else {
            &targets[global / 2 % targets.len()]
        }
    }

    fn request_bytes(&self, slot: usize, r: usize) -> Vec<u8> {
        let target = self.target_for(slot, r);
        if self.opts.keepalive {
            format!("GET {target} HTTP/1.1\r\nHost: loadgen\r\n\r\n").into_bytes()
        } else {
            format!("GET {target} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n")
                .into_bytes()
        }
    }

    /// Opens a fresh connection for `slot`'s next request. The TCP
    /// connect itself is blocking (loopback connect latency is not the
    /// measured quantity); the socket goes nonblocking before any
    /// request byte moves, so the measured request/response exchange
    /// is fully event-driven.
    fn start_fresh(&mut self, slot: usize) {
        let r = self.done[slot];
        let out = self.request_bytes(slot, r);
        let stream = match TcpStream::connect(self.opts.addr) {
            Ok(s) => s,
            Err(e) => {
                self.fail_slot_request(slot, &format!("connect failed: {e}"));
                return;
            }
        };
        if stream.set_nonblocking(true).is_err() {
            self.fail_slot_request(slot, "set_nonblocking failed");
            return;
        }
        let now = Instant::now();
        let token = slot as u64;
        use std::os::fd::AsRawFd;
        if let Err(e) = self.epoll.add(stream.as_raw_fd(), token, false, true) {
            self.fail_slot_request(slot, &format!("epoll add failed: {e}"));
            return;
        }
        self.conns.insert(
            token,
            ClientConn {
                stream,
                out,
                out_at: 0,
                inbuf: Vec::new(),
                head_end: None,
                content_length: None,
                chunked: false,
                close_framed: false,
                served_on_conn: 0,
                t0: now,
                deadline: now + self.opts.request_timeout,
                interest: (false, true),
            },
        );
        self.pump(token);
    }

    /// Reuses `slot`'s live keep-alive connection for its next
    /// request.
    fn start_reused(&mut self, token: u64) {
        let slot = token as usize;
        let r = self.done[slot];
        let out = self.request_bytes(slot, r);
        let now = Instant::now();
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.out = out;
            conn.out_at = 0;
            conn.inbuf.clear();
            conn.head_end = None;
            conn.content_length = None;
            conn.chunked = false;
            conn.close_framed = false;
            conn.t0 = now;
            conn.deadline = now + self.opts.request_timeout;
        }
        self.pump(token);
    }

    /// Drives a slot's state machine as far as the socket allows:
    /// flush the request, then consume the response.
    fn pump(&mut self, token: u64) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let step = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.out_at < conn.out.len() {
                    match conn.stream.write(&conn.out[conn.out_at..]) {
                        Ok(0) => SlotStep::Failed("write returned 0".into()),
                        Ok(n) => {
                            conn.out_at += n;
                            SlotStep::Continue
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => SlotStep::Park {
                            readable: false,
                            writable: true,
                        },
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => SlotStep::Continue,
                        Err(e) => SlotStep::Failed(format!("write failed: {e}")),
                    }
                } else {
                    match conn.stream.read(&mut buf) {
                        Ok(0) => {
                            // EOF: legitimate completion only for a
                            // close-framed response whose head we have.
                            if conn.head_end.is_some()
                                && conn.content_length.is_none()
                                && !conn.chunked
                            {
                                SlotStep::Complete
                            } else {
                                SlotStep::Failed("connection closed mid-response".into())
                            }
                        }
                        Ok(n) => {
                            conn.inbuf.extend_from_slice(&buf[..n]);
                            if conn.head_end.is_none() {
                                if let Some(at) = find_subsequence(&conn.inbuf, b"\r\n\r\n") {
                                    let end = at + 4;
                                    conn.head_end = Some(end);
                                    let head =
                                        String::from_utf8_lossy(&conn.inbuf[..end]).into_owned();
                                    conn.content_length = header_value(&head, "Content-Length")
                                        .and_then(|v| v.trim().parse().ok());
                                    conn.chunked = header_value(&head, "Transfer-Encoding")
                                        .is_some_and(|v| v.trim().eq_ignore_ascii_case("chunked"));
                                    conn.close_framed = header_value(&head, "Connection")
                                        .is_some_and(|v| v.trim().eq_ignore_ascii_case("close"));
                                }
                            }
                            match (conn.head_end, conn.content_length, conn.chunked) {
                                (Some(end), Some(cl), _) if conn.inbuf.len() >= end + cl => {
                                    SlotStep::Complete
                                }
                                (Some(end), None, true)
                                    if conn.inbuf[end..].ends_with(b"0\r\n\r\n") =>
                                {
                                    SlotStep::Complete
                                }
                                _ => SlotStep::Continue,
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => SlotStep::Park {
                            readable: true,
                            writable: false,
                        },
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => SlotStep::Continue,
                        Err(e) => SlotStep::Failed(format!("read failed: {e}")),
                    }
                }
            };
            match step {
                SlotStep::Continue => {}
                SlotStep::Park { readable, writable } => {
                    self.set_interest(token, readable, writable);
                    return;
                }
                SlotStep::Complete => {
                    self.complete_response(token);
                    return;
                }
                SlotStep::Failed(why) => {
                    self.close_conn(token);
                    self.fail_slot_request(token as usize, &why);
                    return;
                }
            }
        }
    }

    fn set_interest(&mut self, token: u64, readable: bool, writable: bool) {
        use std::os::fd::AsRawFd;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.interest == (readable, writable) {
            return;
        }
        if self
            .epoll
            .modify(conn.stream.as_raw_fd(), token, readable, writable)
            .is_ok()
        {
            conn.interest = (readable, writable);
        }
    }

    fn close_conn(&mut self, token: u64) {
        use std::os::fd::AsRawFd;
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
        }
    }

    /// A full response is buffered: record the sample (or the error)
    /// and move the slot along.
    fn complete_response(&mut self, token: u64) {
        let slot = token as usize;
        let (sample, status, detail, reuse_ok) = {
            let conn = self.conns.get_mut(&token).expect("completing a live conn");
            let end = conn.head_end.unwrap_or(conn.inbuf.len());
            let head = String::from_utf8_lossy(&conn.inbuf[..end]).into_owned();
            let status: u16 = head
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let timing = header_value(&head, "Server-Timing");
            let sample = LoadSample {
                total_us: conn.t0.elapsed().as_micros() as u64,
                queue_us: timing.as_deref().and_then(|t| server_timing_us(t, "queue")),
                handler_us: timing
                    .as_deref()
                    .and_then(|t| server_timing_us(t, "handler")),
            };
            if conn.served_on_conn > 0 {
                self.reused += 1;
            }
            conn.served_on_conn += 1;
            let detail = format!(
                "{status} (request_id={})",
                header_value(&head, "X-Request-Id").unwrap_or_else(|| "?".into()),
            );
            let reuse_ok = self.opts.keepalive && !conn.close_framed;
            (sample, status, detail, reuse_ok)
        };
        if status == 200 {
            self.samples.push(sample);
        } else {
            self.count_error(&format!(
                "{}: {detail}",
                self.target_for(slot, self.done[slot])
            ));
        }
        self.done[slot] += 1;
        if self.done[slot] >= self.opts.requests_per_conn {
            self.close_conn(token);
            self.finished_slots += 1;
        } else if reuse_ok {
            self.start_reused(token);
        } else {
            self.close_conn(token);
            self.start_fresh(slot);
        }
    }

    /// A request failed at the transport level; the slot is abandoned
    /// (its remaining requests all count as errors) — retrying against
    /// a server that is shedding load would just remeasure the
    /// shedding.
    fn fail_slot_request(&mut self, slot: usize, why: &str) {
        let remaining = (self.opts.requests_per_conn - self.done[slot]) as u64;
        self.errors += remaining.saturating_sub(1);
        self.count_error(&format!(
            "{}: {why}",
            self.target_for(slot, self.done[slot])
        ));
        self.done[slot] = self.opts.requests_per_conn;
        self.finished_slots += 1;
    }

    fn count_error(&mut self, line: &str) {
        self.errors += 1;
        self.error_lines += 1;
        if self.error_lines <= MAX_ERROR_LINES {
            eprintln!("loadgen: {line}");
        }
    }

    fn expire_deadlines(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.deadline <= now)
            .map(|(t, _)| *t)
            .collect();
        for token in expired {
            self.close_conn(token);
            self.fail_slot_request(token as usize, "request timed out");
        }
    }

    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut timeout = Duration::from_millis(100);
        for conn in self.conns.values() {
            timeout = timeout.min(conn.deadline.saturating_duration_since(now));
        }
        timeout
    }
}

/// Byte-subsequence search (the head terminator is 4 bytes; no need
/// for anything cleverer).
fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// The first `Name: value` line of a response head, case-insensitive
/// on the name.
fn header_value(head: &str, name: &str) -> Option<String> {
    head.lines().skip(1).find_map(|line| {
        let (n, v) = line.split_once(':')?;
        if n.eq_ignore_ascii_case(name) {
            Some(v.trim().to_string())
        } else {
            None
        }
    })
}

/// Drives the configured load from one thread and reports per-request
/// samples. Raises the process fd limit toward the fleet size first.
pub fn run_load(opts: &LoadOptions) -> LoadReport {
    let _ = raise_nofile_limit(opts.connections as u64 + FD_SLACK);
    let started = Instant::now();
    let mut engine = Engine {
        epoll: Epoll::new().expect("epoll_create1 failed"),
        opts,
        conns: HashMap::new(),
        done: vec![0; opts.connections],
        finished_slots: 0,
        samples: Vec::with_capacity(opts.connections * opts.requests_per_conn),
        errors: 0,
        reused: 0,
        error_lines: 0,
    };
    for slot in 0..opts.connections {
        engine.start_fresh(slot);
    }
    let mut events: Vec<Event> = Vec::new();
    while engine.finished_slots < opts.connections {
        let timeout = engine.next_timeout();
        let n = engine.epoll.wait(&mut events, Some(timeout)).unwrap_or(0);
        let ready: Vec<u64> = events.iter().take(n).map(|ev| ev.token).collect();
        for token in ready {
            engine.pump(token);
        }
        engine.expire_deadlines(Instant::now());
    }
    if engine.error_lines > MAX_ERROR_LINES {
        eprintln!(
            "loadgen: ... and {} more errors",
            engine.error_lines - MAX_ERROR_LINES
        );
    }
    LoadReport {
        samples: engine.samples,
        errors: engine.errors,
        elapsed: started.elapsed(),
        reused: engine.reused,
    }
}

/// The benchmark's target pool (the loadgen hot/cold mix): two
/// applications across window sizes, `[0]` hot.
fn pool() -> Vec<String> {
    let mut targets = Vec::new();
    for app in ["lu", "mp3d"] {
        for window in [16usize, 64, 256] {
            targets.push(format!("/v1/experiments?app={app}&window={window}"));
        }
    }
    targets
}

/// One measured cell of the transport comparison.
struct Cell {
    name: &'static str,
    transport: Transport,
    connections: usize,
    requests_per_conn: usize,
    keepalive: bool,
}

/// A cell's rendered result.
struct CellResult {
    name: &'static str,
    transport: &'static str,
    connections: usize,
    ok: usize,
    errors: u64,
    elapsed: f64,
    reused: u64,
    p50: u64,
    p95: u64,
    p99: u64,
    queue_p99: u64,
    service_p99: u64,
    completed: bool,
}

fn transport_name(t: Transport) -> &'static str {
    match t {
        Transport::Reactor => "reactor",
        Transport::Legacy => "legacy",
    }
}

/// Boots an in-process server over the shared (pre-warmed) service.
fn spawn_server(
    service: &Arc<ExperimentService>,
    transport: Transport,
) -> Option<(
    SocketAddr,
    ShutdownHandle,
    std::thread::JoinHandle<lookahead_serve::ServerStats>,
)> {
    let server = match Server::bind(ServerConfig {
        addr: "127.0.0.1:0".parse().expect("loopback"),
        threads: 4,
        transport,
        ..ServerConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            return None;
        }
    };
    let addr = server.local_addr();
    let handle = server.handle();
    let service = Arc::clone(service);
    let join = std::thread::spawn(move || server.run(service));
    Some((addr, handle, join))
}

fn run_cell(
    service: &Arc<ExperimentService>,
    cell: &Cell,
    timeout: Duration,
) -> Option<CellResult> {
    let (addr, handle, join) = spawn_server(service, cell.transport)?;
    // A throwaway pass first: the measured run should see a server
    // whose worker pool, allocator, and accept path are warm, not the
    // process's first-ever dispatch.
    let _ = run_load(&LoadOptions {
        addr,
        connections: cell.connections.min(32),
        requests_per_conn: 1,
        keepalive: cell.keepalive,
        targets: pool(),
        request_timeout: timeout,
    });
    let opts = LoadOptions {
        addr,
        connections: cell.connections,
        requests_per_conn: cell.requests_per_conn,
        keepalive: cell.keepalive,
        targets: pool(),
        request_timeout: timeout,
    };
    let report = run_load(&opts);
    handle.shutdown();
    let _ = join.join();
    let latencies = report.sorted_latencies();
    let queue_waits = report.sorted_queue_waits();
    let services = report.sorted_services();
    let result = CellResult {
        name: cell.name,
        transport: transport_name(cell.transport),
        connections: cell.connections,
        ok: report.samples.len(),
        errors: report.errors,
        elapsed: report.elapsed.as_secs_f64(),
        reused: report.reused,
        p50: percentile(&latencies, 50.0),
        p95: percentile(&latencies, 95.0),
        p99: percentile(&latencies, 99.0),
        queue_p99: percentile(&queue_waits, 99.0),
        service_p99: percentile(&services, 99.0),
        completed: report.errors == 0,
    };
    eprintln!(
        "bench serve: {} [{} x{}]: {} ok, {} errors, p50={}us p99={}us, {:.2}s{}",
        result.name,
        result.transport,
        result.connections,
        result.ok,
        result.errors,
        result.p50,
        result.p99,
        result.elapsed,
        if result.completed {
            ""
        } else {
            " (did not complete cleanly)"
        },
    );
    Some(result)
}

fn render_json(
    tier: SizeTier,
    big: usize,
    cells: &[CellResult],
    keepalive_reuses: u64,
    coalescing_rate: f64,
    body_cache_rate: f64,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"serve\",");
    let _ = writeln!(out, "  \"tier\": \"{}\",", tier.name());
    let _ = writeln!(out, "  \"big_connections\": {big},");
    let _ = writeln!(out, "  \"keepalive_reuses\": {keepalive_reuses},");
    let _ = writeln!(out, "  \"coalescing_rate_pct\": {coalescing_rate:.1},");
    let _ = writeln!(out, "  \"body_cache_rate_pct\": {body_cache_rate:.1},");
    let reactor32 = cells.iter().find(|c| c.name == "reactor_32");
    let legacy32 = cells.iter().find(|c| c.name == "legacy_32");
    if let (Some(r), Some(l)) = (reactor32, legacy32) {
        let _ = writeln!(
            out,
            "  \"reactor_p99_le_legacy_p99_at_32\": {},",
            r.p99 <= l.p99
        );
    }
    let _ = writeln!(out, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", c.name);
        let _ = writeln!(out, "      \"transport\": \"{}\",", c.transport);
        let _ = writeln!(out, "      \"connections\": {},", c.connections);
        let _ = writeln!(out, "      \"ok\": {},", c.ok);
        let _ = writeln!(out, "      \"errors\": {},", c.errors);
        let _ = writeln!(out, "      \"completed\": {},", c.completed);
        let _ = writeln!(out, "      \"seconds\": {:.4},", c.elapsed);
        let _ = writeln!(out, "      \"keepalive_reused\": {},", c.reused);
        let _ = writeln!(out, "      \"p50_us\": {},", c.p50);
        let _ = writeln!(out, "      \"p95_us\": {},", c.p95);
        let _ = writeln!(out, "      \"p99_us\": {},", c.p99);
        let _ = writeln!(out, "      \"queue_wait_p99_us\": {},", c.queue_p99);
        let _ = writeln!(out, "      \"service_p99_us\": {}", c.service_p99);
        let _ = write!(out, "    }}");
        let _ = writeln!(out, "{}", if i + 1 < cells.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

const USAGE: &str = "usage: lookahead bench serve [OPTIONS]

Benchmarks the serve transports against each other: one in-process
service (pre-warmed body memo, so transport cost dominates), four
cells — reactor and legacy at 32 connections, then at the big count.
The legacy transport is expected to shed most of the big run as 503s;
the JSON records it.

options:
  --connections N  the big-run connection count (default 1000)
  --requests N     requests per connection (default 4)
  --out PATH       result file (default: BENCH_serve.json)
  --timeout-s S    per-request deadline in seconds (default 30)
  -h, --help       show this help

environment: LOOKAHEAD_SMALL=1, LOOKAHEAD_PROCS=n, LOOKAHEAD_JOBS=n";

/// Entry point for `lookahead bench serve`.
pub fn serve_bench_main(args: &[String]) -> ExitCode {
    let mut big = 1000usize;
    let mut requests = 4usize;
    let mut out_path = "BENCH_serve.json".to_string();
    let mut timeout_s = 30u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let (key, mut value) = match a.split_once('=') {
            Some((k, v)) => (k, Some(v.to_string())),
            None => (a.as_str(), None),
        };
        let mut take = |it: &mut std::slice::Iter<String>| match value.take() {
            Some(v) => Some(v),
            None => it.next().cloned(),
        };
        match key {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--out" => match take(&mut it) {
                Some(v) => out_path = v,
                None => return usage_error("--out needs a value"),
            },
            "--connections" => match take(&mut it).and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => big = n,
                _ => return usage_error("--connections needs a positive integer"),
            },
            "--requests" => match take(&mut it).and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => requests = n,
                _ => return usage_error("--requests needs a positive integer"),
            },
            "--timeout-s" => match take(&mut it).and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => timeout_s = n,
                _ => return usage_error("--timeout-s needs a positive integer"),
            },
            other => return usage_error(&format!("unknown option {other:?}")),
        }
    }
    if !lookahead_serve::reactor::supported() {
        eprintln!("error: the reactor transport is unsupported on this platform");
        return ExitCode::FAILURE;
    }

    let tier = SizeTier::from_env();
    let jobs = parallel::default_workers();
    let service = Arc::new(ExperimentService::new(
        ServiceConfig {
            default_tier: tier,
            sim: config_from_env(),
            retime_workers: jobs,
            ..ServiceConfig::default()
        },
        None,
    ));

    // Warm every target once (in-process) so the measured cells compare
    // transports, not cold simulations.
    eprintln!(
        "bench serve: tier {}, warming {} targets...",
        tier.name(),
        pool().len()
    );
    for target in pool() {
        let response = lookahead_serve::handle_target(&service, &target);
        if response.status != 200 {
            eprintln!("error: warmup {target} answered {}", response.status);
            return ExitCode::FAILURE;
        }
    }

    let timeout = Duration::from_secs(timeout_s);
    let cells = [
        Cell {
            name: "reactor_32",
            transport: Transport::Reactor,
            connections: 32,
            requests_per_conn: requests,
            keepalive: true,
        },
        Cell {
            name: "legacy_32",
            transport: Transport::Legacy,
            connections: 32,
            requests_per_conn: requests,
            keepalive: false,
        },
        Cell {
            name: "reactor_big",
            transport: Transport::Reactor,
            connections: big,
            requests_per_conn: requests,
            keepalive: true,
        },
        Cell {
            name: "legacy_big",
            transport: Transport::Legacy,
            connections: big,
            requests_per_conn: requests,
            keepalive: false,
        },
    ];
    let mut results = Vec::new();
    for cell in &cells {
        match run_cell(&service, cell, timeout) {
            Some(r) => results.push(r),
            None => return ExitCode::FAILURE,
        }
    }

    // Coalescing and reuse rates from the shared service's metrics.
    let metrics = lookahead_serve::handle_target(&service, "/metrics.json").body;
    let led = metric(&metrics, "serve.flights.led");
    let coalesced = metric(&metrics, "serve.flights.coalesced");
    let memoized = metric(&metrics, "serve.flights.memoized");
    let flights = led + coalesced + memoized;
    let pct = |part: u64, whole: u64| {
        if whole == 0 {
            0.0
        } else {
            100.0 * part as f64 / whole as f64
        }
    };
    let keepalive_reuses = metric(&metrics, "serve.reactor.keepalive_reuses");

    let json = render_json(
        tier,
        big,
        &results,
        keepalive_reuses,
        pct(coalesced, flights),
        pct(coalesced + memoized, flights),
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    let reactor32 = results.iter().find(|c| c.name == "reactor_32");
    let legacy32 = results.iter().find(|c| c.name == "legacy_32");
    if let (Some(r), Some(l)) = (reactor32, legacy32) {
        println!(
            "serve transports at 32 connections: reactor p99 {}us vs legacy p99 {}us; \
             big run ({big} connections): reactor {} ok / {} errors, legacy {} ok / {} errors",
            r.p99,
            l.p99,
            results
                .iter()
                .find(|c| c.name == "reactor_big")
                .map_or(0, |c| c.ok),
            results
                .iter()
                .find(|c| c.name == "reactor_big")
                .map_or(0, |c| c.errors),
            results
                .iter()
                .find(|c| c.name == "legacy_big")
                .map_or(0, |c| c.ok),
            results
                .iter()
                .find(|c| c.name == "legacy_big")
                .map_or(0, |c| c.errors),
        );
    }
    eprintln!("bench serve: wrote {out_path}");
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted: Vec<u64> = (0..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[], 99.0), 0);
    }

    #[test]
    fn server_timing_parses_stage_durations() {
        let v = "queue;dur=0.042, parse;dur=0.003, handler;dur=12.8";
        assert_eq!(server_timing_us(v, "queue"), Some(42));
        assert_eq!(server_timing_us(v, "handler"), Some(12800));
        assert_eq!(server_timing_us(v, "write"), None);
    }

    #[test]
    fn header_value_is_case_insensitive_and_first_wins() {
        let head = "HTTP/1.1 200 OK\r\ncontent-length: 12\r\nConnection: close\r\n\r\n";
        assert_eq!(header_value(head, "Content-Length").as_deref(), Some("12"));
        assert_eq!(header_value(head, "connection").as_deref(), Some("close"));
        assert_eq!(header_value(head, "Server-Timing"), None);
    }

    #[test]
    fn engine_drives_keepalive_load_against_the_reactor() {
        let service = Arc::new(ExperimentService::new(ServiceConfig::default(), None));
        let (addr, handle, join) =
            spawn_server(&service, Transport::Reactor).expect("spawn server");
        let opts = LoadOptions {
            targets: vec!["/healthz".to_string()],
            ..LoadOptions::new(addr, 8, 3)
        };
        let report = run_load(&opts);
        handle.shutdown();
        let stats = join.join().unwrap();
        assert_eq!(report.errors, 0);
        assert_eq!(report.samples.len(), 8 * 3);
        // Every slot reused its connection for requests 2..N.
        assert_eq!(report.reused, 8 * 2);
        assert_eq!(stats.accepted, 8, "keep-alive means one accept per slot");
        assert_eq!(stats.served, 24);
    }

    #[test]
    fn engine_reconnects_per_request_without_keepalive() {
        let service = Arc::new(ExperimentService::new(ServiceConfig::default(), None));
        let (addr, handle, join) = spawn_server(&service, Transport::Legacy).expect("spawn server");
        let opts = LoadOptions {
            keepalive: false,
            targets: vec!["/healthz".to_string()],
            ..LoadOptions::new(addr, 4, 2)
        };
        let report = run_load(&opts);
        handle.shutdown();
        let stats = join.join().unwrap();
        assert_eq!(report.errors, 0);
        assert_eq!(report.samples.len(), 8);
        assert_eq!(report.reused, 0);
        assert_eq!(stats.accepted, 8, "one connection per request");
    }
}
