//! Integration tests of the §5–6 extension studies on real workload
//! traces: SC boosting, stride prefetching, multiple contexts and
//! compiler scheduling, all end to end.

use lookahead_core::base::Base;
use lookahead_core::contexts::Contexts;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::ProcessorModel;
use lookahead_core::prefetch::{PrefetchConfig, StridePrefetcher};
use lookahead_core::ConsistencyModel;
use lookahead_harness::pipeline::AppRun;
use lookahead_multiproc::{SimConfig, Simulator};
use lookahead_schedule::optimize_program;
use lookahead_trace::Trace;
use lookahead_workloads::App;

fn config() -> SimConfig {
    SimConfig {
        num_procs: 8,
        ..SimConfig::default()
    }
}

fn generate(app: App) -> AppRun {
    AppRun::generate(app.small_workload().as_ref(), &config())
        .unwrap_or_else(|e| panic!("{app}: {e}"))
}

/// §6 [8]: boosting recovers part of the SC–RC gap, and never beats
/// the fully relaxed model by more than noise.
#[test]
fn sc_boosting_recovers_gap() {
    let run = generate(App::Ocean);
    let cycles = |pf: bool, spec: bool, model: ConsistencyModel| {
        Ds::new(DsConfig {
            nonbinding_prefetch: pf,
            speculative_loads: spec,
            ..DsConfig::with_model(model).window(64)
        })
        .run(&run.program, run.trace())
        .cycles()
    };
    let sc = cycles(false, false, ConsistencyModel::Sc);
    let boosted = cycles(true, true, ConsistencyModel::Sc);
    let rc = cycles(false, false, ConsistencyModel::Rc);
    assert!(boosted < sc, "boosting must help SC: {boosted} vs {sc}");
    // Recovers at least a third of the gap.
    assert!(
        (sc - boosted) * 3 >= sc - rc,
        "too little recovery: SC {sc}, boosted {boosted}, RC {rc}"
    );
}

/// §6 conjecture: the prefetcher covers far more of OCEAN's misses
/// than PTHOR's.
#[test]
fn prefetcher_separates_regular_from_irregular() {
    // OCEAN's streams need enough length per row for the prefetcher's
    // lookahead to engage; the unit-test size is too tiny.
    let ocean = AppRun::generate(
        &lookahead_workloads::ocean::Ocean {
            n: 34,
            grids: 3,
            steps: 2,
        },
        &config(),
    )
    .unwrap();
    let pthor = generate(App::Pthor);
    let coverage = |run: &AppRun| {
        let (_, stats) = StridePrefetcher::new(PrefetchConfig::default()).cover(run.trace());
        stats.coverage()
    };
    let (co, cp) = (coverage(&ocean), coverage(&pthor));
    assert!(
        co > cp + 0.2,
        "OCEAN ({co:.2}) should be far more coverable than PTHOR ({cp:.2})"
    );
}

/// §5: running two of the same run's traces on one two-context
/// pipeline beats running them back to back.
#[test]
fn contexts_overlap_real_workload_misses() {
    let run = generate(App::Mp3d);
    let traces = run.all_traces();
    let a = &*traces[0];
    let b = &*traces[1];
    let mc = Contexts::default();
    let serial = mc.run_traces(&[a]).cycles() + mc.run_traces(&[b]).cycles();
    let together = mc.run_traces(&[a, b]);
    assert!(
        together.cycles() < serial,
        "two contexts ({}) should beat back-to-back ({serial})",
        together.cycles()
    );
    assert!(together.stats.context_switches > 0);
    assert_eq!(together.stats.instructions, (a.len() + b.len()) as u64);
}

/// §7 conjecture end to end: the optimized OCEAN program still
/// verifies and its trace runs faster on SS and small-window DS.
#[test]
fn compiler_scheduling_helps_regular_code() {
    let app = App::Ocean;
    let built = app.small_workload().build(config().num_procs);
    let (optimized, _, ustats) = optimize_program(&built.program, 4);
    assert!(ustats.loops_unrolled > 0, "OCEAN inner loops should unroll");
    let out = Simulator::new(optimized, built.image, config())
        .unwrap()
        .run()
        .unwrap();
    (built.verify)(&out.final_memory).expect("optimized OCEAN still correct");
    let sched_trace: &Trace = out.trace(out.busiest_proc());

    let orig = generate(app);
    let base = Base.run(&orig.program, orig.trace());
    let ss = InOrder::ss(ConsistencyModel::Rc);
    let before = ss.run(&orig.program, orig.trace()).cycles() as f64 / base.cycles() as f64;
    let after = ss.run(&orig.program, sched_trace).cycles() as f64 / base.cycles() as f64;
    assert!(
        after < before,
        "scheduling should speed SS up: {after:.3} vs {before:.3}"
    );
}

/// The prefetch trace transformer only ever shortens latencies — no
/// trace entry gains one — and leaves non-load entries untouched.
#[test]
fn prefetch_transformer_is_monotone() {
    let run = generate(App::Lu);
    let (covered, _) = StridePrefetcher::new(PrefetchConfig::default()).cover(run.trace());
    assert_eq!(covered.len(), run.trace_len());
    for (a, b) in run.trace().iter().zip(covered.iter()) {
        assert_eq!(a.pc, b.pc);
        match (&a.op, &b.op) {
            (lookahead_trace::TraceOp::Load(x), lookahead_trace::TraceOp::Load(y)) => {
                assert_eq!(x.addr, y.addr);
                assert!(y.latency <= x.latency, "latency grew at pc {}", a.pc);
            }
            (x, y) => assert_eq!(x, y, "non-load entry changed at pc {}", a.pc),
        }
    }
}
