//! The whole stack is deterministic: building and simulating the same
//! workload twice produces identical traces, statistics and
//! re-timings, and traces survive a serialization round trip.

use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::model::ProcessorModel;
use lookahead_harness::pipeline::AppRun;
use lookahead_multiproc::SimConfig;
use lookahead_trace::storage::{read_trace, write_trace};
use lookahead_workloads::App;

fn config() -> SimConfig {
    SimConfig {
        num_procs: 4,
        ..SimConfig::default()
    }
}

#[test]
fn identical_runs_produce_identical_traces() {
    for app in [App::Mp3d, App::Pthor, App::Locus] {
        let w1 = app.small_workload();
        let w2 = app.small_workload();
        let r1 = AppRun::generate(w1.as_ref(), &config()).unwrap();
        let r2 = AppRun::generate(w2.as_ref(), &config()).unwrap();
        assert_eq!(r1.proc, r2.proc, "{app}");
        assert_eq!(r1.trace(), r2.trace(), "{app}: traces differ between runs");
        assert_eq!(r1.mp_cycles, r2.mp_cycles, "{app}");
    }
}

#[test]
fn retiming_is_deterministic() {
    let run = AppRun::generate(App::Lu.small_workload().as_ref(), &config()).unwrap();
    let ds = Ds::new(DsConfig::rc().window(64));
    let a = ds.run(&run.program, run.trace());
    let b = ds.run(&run.program, run.trace());
    assert_eq!(a, b);
}

#[test]
fn traces_round_trip_through_storage() {
    let run = AppRun::generate(App::Ocean.small_workload().as_ref(), &config()).unwrap();
    let mut bytes = Vec::new();
    write_trace(&mut bytes, run.trace()).unwrap();
    let back = read_trace(bytes.as_slice()).unwrap();
    assert_eq!(back, *run.trace());
    // And the round-tripped trace re-times identically.
    let ds = Ds::new(DsConfig::rc().window(32));
    assert_eq!(
        ds.run(&run.program, run.trace()),
        ds.run(&run.program, &back)
    );
}
