//! Tests that the paper's qualitative findings hold on the small
//! workload sizes — the "shape" of every headline result. These are
//! the same checks a reviewer would make against Figures 3–4 and the
//! §7 summary, expressed as assertions.

use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::ProcessorModel;
use lookahead_core::ConsistencyModel;
use lookahead_harness::experiments::{figure4, miss_delay, read_latency_hidden};
use lookahead_harness::pipeline::AppRun;
use lookahead_multiproc::SimConfig;
use lookahead_workloads::App;

fn config() -> SimConfig {
    SimConfig {
        num_procs: 8,
        ..SimConfig::default()
    }
}

fn generate(app: App) -> AppRun {
    AppRun::generate(app.small_workload().as_ref(), &config())
        .unwrap_or_else(|e| panic!("{app}: {e}"))
}

/// §4.1: "SC does not allow the read and write latency to be hidden
/// regardless of the processor architecture."
#[test]
fn sc_hides_nothing() {
    let run = generate(App::Ocean);
    let base = Base.run(&run.program, run.trace());
    for result in [
        InOrder::ssbr(ConsistencyModel::Sc).run(&run.program, run.trace()),
        InOrder::ss(ConsistencyModel::Sc).run(&run.program, run.trace()),
        Ds::new(DsConfig::with_model(ConsistencyModel::Sc).window(256))
            .run(&run.program, run.trace()),
    ] {
        assert!(
            result.cycles() as f64 > 0.90 * base.cycles() as f64,
            "SC config got {} vs BASE {}",
            result.cycles(),
            base.cycles()
        );
    }
}

/// §4.1: "PC is in general successful in hiding the latency of writes
/// with statically scheduled processors and does not gain much from
/// the use of dynamic scheduling."
#[test]
fn pc_hides_writes_in_order() {
    // MP3D is the write-heaviest application; use a size with enough
    // write misses for the ratio to be meaningful.
    let w = lookahead_workloads::mp3d::Mp3d {
        particles: 512,
        ..lookahead_workloads::mp3d::Mp3d::small()
    };
    let run = AppRun::generate(&w, &config()).unwrap();
    let base = Base.run(&run.program, run.trace());
    let pc = InOrder::ssbr(ConsistencyModel::Pc).run(&run.program, run.trace());
    assert!(
        pc.breakdown.write * 5 < base.breakdown.write,
        "PC write stall {} vs BASE {}",
        pc.breakdown.write,
        base.breakdown.write
    );
    // Reads stay: PC cannot hide read latency in order.
    assert!(pc.breakdown.read * 2 > base.breakdown.read);
}

/// §4.1.1: SS "improvement over SSBR is minimal" without compiler
/// rescheduling (the first use follows the load closely).
#[test]
fn ss_gains_little_over_ssbr() {
    for app in [App::Lu, App::Pthor] {
        let run = generate(app);
        let ssbr = InOrder::ssbr(ConsistencyModel::Rc).run(&run.program, run.trace());
        let ss = InOrder::ss(ConsistencyModel::Rc).run(&run.program, run.trace());
        assert!(ss.cycles() <= ssbr.cycles(), "{app}: SS slower than SSBR");
        let gain = 1.0 - ss.cycles() as f64 / ssbr.cycles() as f64;
        assert!(
            gain < 0.35,
            "{app}: SS gained {:.0}% over SSBR — too much for unscheduled code",
            gain * 100.0
        );
    }
}

/// §4.1.2: the regular applications hide virtually all read latency by
/// window 64; bigger windows change little.
#[test]
fn regular_apps_saturate_by_window_64() {
    for app in [App::Lu, App::Ocean] {
        let run = generate(app);
        let h64 = read_latency_hidden(&run, 64);
        assert!(
            h64 > 0.85,
            "{app}: only {:.0}% hidden at window 64",
            h64 * 100.0
        );
        let c64 = Ds::new(DsConfig::rc().window(64))
            .run(&run.program, run.trace())
            .cycles();
        let c256 = Ds::new(DsConfig::rc().window(256))
            .run(&run.program, run.trace())
            .cycles();
        let gain_past_64 = (c64 as f64 - c256 as f64) / c64 as f64;
        assert!(
            gain_past_64 < 0.05,
            "{app}: window 256 still gains {:.1}% over 64",
            (c64 as f64 - c256 as f64) * 100.0 / c64 as f64
        );
    }
}

/// §4.1.2/4.1.3: PTHOR is limited by dependences and branches at every
/// window size — a large fraction of its read latency stays unhidden.
#[test]
fn pthor_remains_limited() {
    let run = generate(App::Pthor);
    let h256 = read_latency_hidden(&run, 256);
    assert!(
        h256 < 0.9,
        "PTHOR hid {:.0}% at window 256 — the paper's limits should bite",
        h256 * 100.0
    );
    // And its miss-delay distribution shows dependence chains.
    let d = miss_delay(&run, 64);
    assert!(
        d.over_40 > 0.2,
        "PTHOR: only {:.0}% of misses delayed > 40 cycles",
        d.over_40 * 100.0
    );
}

/// §4.1.3: LU's read misses are mostly independent — rarely delayed in
/// the window once branches are perfect.
#[test]
fn lu_misses_are_independent() {
    // Needs a matrix big enough that misses are the paper's 20-30
    // instructions apart rather than bunched at tiny sizes.
    let run = AppRun::generate(&lookahead_workloads::lu::Lu { n: 48 }, &config()).unwrap();
    let d = miss_delay(&run, 64);
    assert!(
        d.over_40 < 0.25,
        "LU: {:.0}% of misses delayed > 40 cycles",
        d.over_40 * 100.0
    );
}

/// §4.1.3: for LU, ignoring data dependences adds nothing (no
/// dependence limit), while for PTHOR it helps.
#[test]
fn dependence_ablation_matches_application_character() {
    let lu = generate(App::Lu);
    let cols = figure4(&lu, &[64]);
    let bp = cols.iter().find(|c| c.model == "bp").unwrap().normalized;
    let nd = cols.iter().find(|c| c.model == "bp+nd").unwrap().normalized;
    assert!(
        bp - nd < 3.0,
        "LU: ignoring dependences gained {:.1} points",
        bp - nd
    );

    let pthor = generate(App::Pthor);
    let cols = figure4(&pthor, &[64]);
    let bp = cols.iter().find(|c| c.model == "bp").unwrap().normalized;
    let nd = cols.iter().find(|c| c.model == "bp+nd").unwrap().normalized;
    assert!(
        nd <= bp,
        "PTHOR: ignoring dependences should help ({nd} vs {bp})"
    );
}

/// §4.2: with 100-cycle latency the trends hold but saturation moves
/// to larger windows; with 4-wide issue, gains continue past 64.
#[test]
fn higher_latency_needs_bigger_windows() {
    // A medium OCEAN: enough independent misses per processor that
    // the window size is the binding constraint.
    let w = lookahead_workloads::ocean::Ocean {
        n: 34,
        grids: 4,
        steps: 2,
    };
    let (run100, _) =
        lookahead_harness::experiments::latency_sweep(&w, &config(), 100, &[]).unwrap();
    let c = |win: usize| {
        Ds::new(DsConfig::rc().window(win))
            .run(&run100.program, run100.trace())
            .cycles() as f64
    };
    let (c64, c128) = (c(64), c(128));
    // At 100-cycle latency, 64 -> 128 must still gain noticeably.
    assert!(
        c128 < c64 * 0.97,
        "100-cycle latency: window 128 gains only {:.1}%",
        (c64 - c128) * 100.0 / c64
    );
}

/// §7: the average hidden read latency grows strongly from window 16
/// to 64 (the paper reports 33% → 63% → 81%).
#[test]
fn summary_trend_matches_paper() {
    let runs: Vec<AppRun> = App::ALL.into_iter().map(generate).collect();
    let avg =
        |w: usize| runs.iter().map(|r| read_latency_hidden(r, w)).sum::<f64>() / runs.len() as f64;
    let (h16, h32, h64) = (avg(16), avg(32), avg(64));
    assert!(h16 < h32, "not increasing: {h16} {h32} {h64}");
    assert!(h32 < h64, "not increasing: {h16} {h32} {h64}");
    assert!(h16 > 0.15, "window 16 hides {:.0}%", h16 * 100.0);
    assert!(h64 > 0.6, "window 64 hides only {:.0}%", h64 * 100.0);
}
