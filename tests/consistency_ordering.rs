//! Property tests of the consistency-model hierarchy over randomly
//! generated traces: for any trace, a strictly more relaxed model
//! never yields a slower execution, and every model's breakdown
//! accounts its cycles consistently.

use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::ProcessorModel;
use lookahead_core::ConsistencyModel;
use lookahead_isa::{Assembler, IntReg, Program, SyncKind};
use lookahead_trace::{MemAccess, SyncAccess, Trace, TraceEntry, TraceOp};
use proptest::prelude::*;

/// A random but well-formed (program, trace) pair: every trace entry
/// has a matching instruction so register dependences resolve.
/// Locks alternate acquire/release to stay balanced.
fn arb_workload() -> impl Strategy<Value = (Program, Trace)> {
    // Each step: (op selector, address word 0..64, latency miss?, reg selector)
    proptest::collection::vec((0u8..8, 0u64..64, any::<bool>(), 0u8..4), 1..120).prop_map(
        |steps| {
            let mut a = Assembler::new();
            let mut entries = Vec::new();
            let mut pc = 0u32;
            let mut lock_held = false;
            let regs = [IntReg::T1, IntReg::T2, IntReg::T3, IntReg::T4];
            for (op, word, miss, reg) in steps {
                let addr = word * 8;
                let r = regs[reg as usize];
                let lat = |m: bool| if m { 50 } else { 1 };
                match op {
                    0..=2 => {
                        a.load(r, IntReg::G0, addr as i64);
                        entries.push(TraceEntry {
                            pc,
                            op: TraceOp::Load(MemAccess {
                                addr,
                                miss,
                                latency: lat(miss),
                            }),
                        });
                    }
                    3..=4 => {
                        a.store(r, IntReg::G0, addr as i64);
                        entries.push(TraceEntry {
                            pc,
                            op: TraceOp::Store(MemAccess {
                                addr,
                                miss,
                                latency: lat(miss),
                            }),
                        });
                    }
                    5 => {
                        a.addi(r, r, 1);
                        entries.push(TraceEntry::compute(pc));
                    }
                    _ => {
                        let kind = if lock_held {
                            SyncKind::Unlock
                        } else {
                            SyncKind::Lock
                        };
                        lock_held = !lock_held;
                        if kind == SyncKind::Lock {
                            a.lock(IntReg::G1, 0);
                        } else {
                            a.unlock(IntReg::G1, 0);
                        }
                        entries.push(TraceEntry {
                            pc,
                            op: TraceOp::Sync(SyncAccess {
                                kind,
                                addr: 1024,
                                wait: if miss { 20 } else { 0 },
                                access: lat(miss),
                            }),
                        });
                    }
                }
                pc += 1;
            }
            if lock_held {
                a.unlock(IntReg::G1, 0);
                entries.push(TraceEntry {
                    pc,
                    op: TraceOp::Sync(SyncAccess {
                        kind: SyncKind::Unlock,
                        addr: 1024,
                        wait: 0,
                        access: 1,
                    }),
                });
            }
            a.halt();
            (a.assemble().unwrap(), Trace::from_entries(entries))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn in_order_model_hierarchy((program, trace) in arb_workload()) {
        let run = |m: ConsistencyModel| InOrder::ssbr(m).run(&program, &trace).cycles();
        let (sc, pc, wo, rc) = (
            run(ConsistencyModel::Sc),
            run(ConsistencyModel::Pc),
            run(ConsistencyModel::Wo),
            run(ConsistencyModel::Rc),
        );
        prop_assert!(pc <= sc, "PC {pc} > SC {sc}");
        prop_assert!(wo <= sc, "WO {wo} > SC {sc}");
        prop_assert!(rc <= wo, "RC {rc} > WO {wo}");
        prop_assert!(rc <= pc, "RC {rc} > PC {pc}");
    }

    #[test]
    fn nothing_beats_ignoring_all_constraints((program, trace) in arb_workload()) {
        // The fully unconstrained DS run is a lower bound for every
        // real configuration.
        let floor = Ds::new(DsConfig {
            perfect_branch_prediction: true,
            ignore_data_dependences: true,
            ..DsConfig::rc().window(256)
        })
        .run(&program, &trace)
        .cycles();
        for model in ConsistencyModel::ALL {
            for w in [16, 64] {
                let c = Ds::new(DsConfig::with_model(model).window(w))
                    .run(&program, &trace)
                    .cycles();
                // Slack: store-buffer forwarding can favor *narrower*
                // windows (a small window keeps a same-word store in
                // flight longer, so a later load forwards in 1 cycle
                // where the wide window's already-performed store
                // forces the full recorded miss latency) — a known
                // trace-driven artifact; plus pipeline-boundary ties.
                let slack = 4 + floor / 16;
                prop_assert!(c + slack >= floor, "{model} w{w}: {c} < floor {floor}");
            }
        }
    }

    #[test]
    fn base_is_an_upper_bound_for_in_order_models((program, trace) in arb_workload()) {
        let base = Base.run(&program, &trace).cycles();
        for model in ConsistencyModel::ALL {
            let c = InOrder::ssbr(model).run(&program, &trace).cycles();
            prop_assert!(c <= base, "SSBR/{model} {c} > BASE {base}");
        }
    }

    #[test]
    fn breakdowns_account_all_models((program, trace) in arb_workload()) {
        let n = trace.len() as u64;
        for model in ConsistencyModel::ALL {
            for m in [InOrder::ssbr(model), InOrder::ss(model)] {
                let r = m.run(&program, &trace);
                prop_assert_eq!(r.breakdown.busy, n);
                prop_assert_eq!(r.stats.instructions, n);
            }
            let r = Ds::new(DsConfig::with_model(model).window(32)).run(&program, &trace);
            prop_assert_eq!(r.stats.instructions, n);
            prop_assert_eq!(r.breakdown.busy, n + r.stats.fetch_stall_cycles);
        }
    }

    #[test]
    fn ds_windows_weakly_monotone((program, trace) in arb_workload()) {
        let mut last = u64::MAX;
        for w in [16, 32, 64, 128, 256] {
            let c = Ds::new(DsConfig::rc().window(w)).run(&program, &trace).cycles();
            // Tiny slack: stall-attribution ties can produce one-off
            // differences in either direction.
            prop_assert!(c <= last.saturating_add(last / 64), "w{w}: {c} > {last}");
            last = c;
        }
    }
}
