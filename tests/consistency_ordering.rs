//! Property tests of the consistency-model hierarchy over randomly
//! generated traces: for any trace, a strictly more relaxed model
//! never yields a slower execution, and every model's breakdown
//! accounts its cycles consistently.

use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::ProcessorModel;
use lookahead_core::ConsistencyModel;
use lookahead_isa::rng::XorShift64;
use lookahead_isa::{Assembler, IntReg, Program, SyncKind};
use lookahead_trace::{MemAccess, SyncAccess, Trace, TraceEntry, TraceOp};

/// A random but well-formed (program, trace) pair: every trace entry
/// has a matching instruction so register dependences resolve.
/// Locks alternate acquire/release to stay balanced.
fn gen_workload(rng: &mut XorShift64) -> (Program, Trace) {
    let steps = rng.range_usize(119) + 1;
    {
        {
            let mut a = Assembler::new();
            let mut entries = Vec::new();
            let mut lock_held = false;
            let regs = [IntReg::T1, IntReg::T2, IntReg::T3, IntReg::T4];
            for pc in 0..steps as u32 {
                // Each step: op selector, address word, miss?, register.
                let op = rng.next_below(8);
                let word = rng.next_below(64);
                let miss = rng.next_bool();
                let addr = word * 8;
                let r = *rng.choose(&regs);
                let lat = |m: bool| if m { 50 } else { 1 };
                match op {
                    0..=2 => {
                        a.load(r, IntReg::G0, addr as i64);
                        entries.push(TraceEntry {
                            pc,
                            op: TraceOp::Load(MemAccess {
                                addr,
                                miss,
                                latency: lat(miss),
                            }),
                        });
                    }
                    3..=4 => {
                        a.store(r, IntReg::G0, addr as i64);
                        entries.push(TraceEntry {
                            pc,
                            op: TraceOp::Store(MemAccess {
                                addr,
                                miss,
                                latency: lat(miss),
                            }),
                        });
                    }
                    5 => {
                        a.addi(r, r, 1);
                        entries.push(TraceEntry::compute(pc));
                    }
                    _ => {
                        let kind = if lock_held {
                            SyncKind::Unlock
                        } else {
                            SyncKind::Lock
                        };
                        lock_held = !lock_held;
                        if kind == SyncKind::Lock {
                            a.lock(IntReg::G1, 0);
                        } else {
                            a.unlock(IntReg::G1, 0);
                        }
                        entries.push(TraceEntry {
                            pc,
                            op: TraceOp::Sync(SyncAccess {
                                kind,
                                addr: 1024,
                                wait: if miss { 20 } else { 0 },
                                access: lat(miss),
                            }),
                        });
                    }
                }
            }
            if lock_held {
                a.unlock(IntReg::G1, 0);
                entries.push(TraceEntry {
                    pc: steps as u32,
                    op: TraceOp::Sync(SyncAccess {
                        kind: SyncKind::Unlock,
                        addr: 1024,
                        wait: 0,
                        access: 1,
                    }),
                });
            }
            a.halt();
            (a.assemble().unwrap(), Trace::from_entries(entries))
        }
    }
}

#[test]
fn in_order_model_hierarchy() {
    let mut rng = XorShift64::seed_from_u64(0xD1);
    for case in 0..64 {
        let (program, trace) = gen_workload(&mut rng);
        let run = |m: ConsistencyModel| InOrder::ssbr(m).run(&program, &trace).cycles();
        let (sc, pc, wo, rc) = (
            run(ConsistencyModel::Sc),
            run(ConsistencyModel::Pc),
            run(ConsistencyModel::Wo),
            run(ConsistencyModel::Rc),
        );
        assert!(pc <= sc, "case {case}: PC {pc} > SC {sc}");
        assert!(wo <= sc, "case {case}: WO {wo} > SC {sc}");
        assert!(rc <= wo, "case {case}: RC {rc} > WO {wo}");
        assert!(rc <= pc, "case {case}: RC {rc} > PC {pc}");
    }
}

#[test]
fn nothing_beats_ignoring_all_constraints() {
    let mut rng = XorShift64::seed_from_u64(0xD2);
    for case in 0..64 {
        let (program, trace) = gen_workload(&mut rng);
        // The fully unconstrained DS run is a lower bound for every
        // real configuration.
        let floor = Ds::new(DsConfig {
            perfect_branch_prediction: true,
            ignore_data_dependences: true,
            ..DsConfig::rc().window(256)
        })
        .run(&program, &trace)
        .cycles();
        for model in ConsistencyModel::ALL {
            for w in [16, 64] {
                let c = Ds::new(DsConfig::with_model(model).window(w))
                    .run(&program, &trace)
                    .cycles();
                // Slack: store-buffer forwarding can favor *narrower*
                // windows (a small window keeps a same-word store in
                // flight longer, so a later load forwards in 1 cycle
                // where the wide window's already-performed store
                // forces the full recorded miss latency) — a known
                // trace-driven artifact; plus pipeline-boundary ties.
                let slack = 4 + floor / 16;
                assert!(
                    c + slack >= floor,
                    "case {case}: {model} w{w}: {c} < floor {floor}"
                );
            }
        }
    }
}

#[test]
fn base_is_an_upper_bound_for_in_order_models() {
    let mut rng = XorShift64::seed_from_u64(0xD3);
    for case in 0..64 {
        let (program, trace) = gen_workload(&mut rng);
        let base = Base.run(&program, &trace).cycles();
        for model in ConsistencyModel::ALL {
            let c = InOrder::ssbr(model).run(&program, &trace).cycles();
            assert!(c <= base, "case {case}: SSBR/{model} {c} > BASE {base}");
        }
    }
}

#[test]
fn breakdowns_account_all_models() {
    let mut rng = XorShift64::seed_from_u64(0xD4);
    for case in 0..64 {
        let (program, trace) = gen_workload(&mut rng);
        let n = trace.len() as u64;
        for model in ConsistencyModel::ALL {
            for m in [InOrder::ssbr(model), InOrder::ss(model)] {
                let r = m.run(&program, &trace);
                assert_eq!(r.breakdown.busy, n, "case {case}");
                assert_eq!(r.stats.instructions, n, "case {case}");
            }
            let r = Ds::new(DsConfig::with_model(model).window(32)).run(&program, &trace);
            assert_eq!(r.stats.instructions, n, "case {case}");
            assert_eq!(
                r.breakdown.busy,
                n + r.stats.fetch_stall_cycles,
                "case {case}"
            );
        }
    }
}

#[test]
fn ds_windows_weakly_monotone() {
    let mut rng = XorShift64::seed_from_u64(0xD5);
    for case in 0..64 {
        let (program, trace) = gen_workload(&mut rng);
        let mut last = u64::MAX;
        for w in [16, 32, 64, 128, 256] {
            let c = Ds::new(DsConfig::rc().window(w))
                .run(&program, &trace)
                .cycles();
            // Tiny slack: stall-attribution ties can produce one-off
            // differences in either direction.
            assert!(
                c <= last.saturating_add(last / 64),
                "case {case}: w{w}: {c} > {last}"
            );
            last = c;
        }
    }
}
