//! Integration tests spanning the whole stack: workload compilation,
//! multiprocessor simulation, trace generation and processor-model
//! re-timing, on all five applications at small sizes.

use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::ProcessorModel;
use lookahead_core::ConsistencyModel;
use lookahead_harness::pipeline::AppRun;
use lookahead_multiproc::SimConfig;
use lookahead_trace::TraceStats;
use lookahead_workloads::App;

fn small_config() -> SimConfig {
    SimConfig {
        num_procs: 8,
        ..SimConfig::default()
    }
}

fn generate(app: App) -> AppRun {
    let w = app.small_workload();
    AppRun::generate(w.as_ref(), &small_config()).unwrap_or_else(|e| panic!("{app}: {e}"))
}

#[test]
fn all_five_applications_run_and_verify() {
    for app in App::ALL {
        let run = generate(app);
        assert!(!run.trace().is_empty(), "{app}: empty trace");
        // The generating run's breakdowns account every cycle.
        for (p, b) in run.mp_breakdowns.iter().enumerate() {
            assert!(b.total() > 0, "{app}: processor {p} never ran");
        }
    }
}

#[test]
fn base_model_equals_sum_of_trace_latencies() {
    let run = generate(App::Lu);
    let base = Base.run(&run.program, run.trace());
    let stats = TraceStats::collect(run.trace(), None);
    assert_eq!(base.breakdown.busy, stats.data.busy_cycles);
    // Every read-stall cycle comes from a read-miss latency.
    let expected_read: u64 = run
        .trace()
        .iter()
        .filter_map(|e| match e.op {
            lookahead_trace::TraceOp::Load(m) => Some((m.latency - 1) as u64),
            _ => None,
        })
        .sum();
    assert_eq!(base.breakdown.read, expected_read);
}

#[test]
fn busy_time_is_invariant_across_models() {
    let run = generate(App::Ocean);
    let n = run.trace_len() as u64;
    for model in ConsistencyModel::EVALUATED {
        let ssbr = InOrder::ssbr(model).run(&run.program, run.trace());
        assert_eq!(ssbr.breakdown.busy, n, "SSBR/{model}");
        let ss = InOrder::ss(model).run(&run.program, run.trace());
        assert_eq!(ss.breakdown.busy, n, "SS/{model}");
        let ds = Ds::new(DsConfig::with_model(model).window(64)).run(&run.program, run.trace());
        assert_eq!(
            ds.breakdown.busy,
            n + ds.stats.fetch_stall_cycles,
            "DS/{model}: busy = instructions + fetch gaps"
        );
    }
}

#[test]
fn relaxing_the_model_never_hurts() {
    for app in App::ALL {
        let run = generate(app);
        let cycles = |m: ConsistencyModel| {
            (
                InOrder::ssbr(m).run(&run.program, run.trace()).cycles(),
                Ds::new(DsConfig::with_model(m).window(64))
                    .run(&run.program, run.trace())
                    .cycles(),
            )
        };
        let (sc_in, sc_ds) = cycles(ConsistencyModel::Sc);
        let (pc_in, pc_ds) = cycles(ConsistencyModel::Pc);
        let (wo_in, _wo_ds) = cycles(ConsistencyModel::Wo);
        let (rc_in, rc_ds) = cycles(ConsistencyModel::Rc);
        assert!(pc_in <= sc_in, "{app}: PC {pc_in} > SC {sc_in} (in-order)");
        assert!(rc_in <= pc_in, "{app}: RC {rc_in} > PC {pc_in} (in-order)");
        assert!(rc_in <= wo_in, "{app}: RC {rc_in} > WO {wo_in} (in-order)");
        assert!(pc_ds <= sc_ds, "{app}: PC {pc_ds} > SC {sc_ds} (DS)");
        assert!(
            rc_ds <= pc_ds + pc_ds / 50,
            "{app}: RC {rc_ds} >> PC {pc_ds} (DS)"
        );
    }
}

#[test]
fn ds_window_growth_is_monotone_under_rc() {
    for app in App::ALL {
        let run = generate(app);
        let mut last = u64::MAX;
        for w in [16, 32, 64, 128, 256] {
            let c = Ds::new(DsConfig::rc().window(w))
                .run(&run.program, run.trace())
                .cycles();
            // Allow a sliver of slack: attribution ties can wiggle.
            assert!(
                c <= last.saturating_add(last / 100),
                "{app}: window {w} slower ({c} vs {last})"
            );
            last = c;
        }
    }
}

#[test]
fn write_latency_fully_hidden_in_order_under_rc() {
    // The paper's prior-work result, reconfirmed in §4.1.1: RC hides
    // the latency of writes on a statically scheduled processor.
    for app in App::ALL {
        let run = generate(app);
        let base = Base.run(&run.program, run.trace());
        let rc = InOrder::ssbr(ConsistencyModel::Rc).run(&run.program, run.trace());
        if base.breakdown.write > 2000 {
            assert!(
                rc.breakdown.write * 5 < base.breakdown.write,
                "{app}: RC write stall {} vs BASE {}",
                rc.breakdown.write,
                base.breakdown.write
            );
        }
    }
}

#[test]
fn ds_hides_read_latency_under_rc_but_not_sc() {
    for app in App::ALL {
        let run = generate(app);
        let base = Base.run(&run.program, run.trace());
        if base.breakdown.read < 500 {
            continue;
        }
        let rc = Ds::new(DsConfig::rc().window(64)).run(&run.program, run.trace());
        let sc = Ds::new(DsConfig::with_model(ConsistencyModel::Sc).window(64))
            .run(&run.program, run.trace());
        let hidden_rc = rc
            .breakdown
            .read_latency_hidden_vs(&base.breakdown)
            .unwrap();
        assert!(
            hidden_rc > 0.3,
            "{app}: DS-64/RC hides only {:.0}% of read latency",
            hidden_rc * 100.0
        );
        // SC's total barely improves over BASE no matter the window
        // (small traces leave SC a little room at the edges).
        assert!(
            sc.cycles() as f64 > base.cycles() as f64 * 0.8,
            "{app}: SC unexpectedly fast ({} vs BASE {})",
            sc.cycles(),
            base.cycles()
        );
    }
}

#[test]
fn representative_trace_statistics_are_plausible() {
    for app in App::ALL {
        let run = generate(app);
        let stats = TraceStats::collect(run.trace(), None);
        assert!(
            stats.data.reads > 0 && stats.data.writes > 0,
            "{app}: no data references"
        );
        let refs_per_k = stats
            .data
            .per_thousand(stats.data.reads + stats.data.writes);
        assert!(
            refs_per_k > 50.0 && refs_per_k < 600.0,
            "{app}: implausible reference rate {refs_per_k}"
        );
    }
}

/// Paper-sized workloads build, simulate and verify end to end.
/// Ignored by default (minutes, not seconds):
/// `cargo test --release -- --ignored paper_sizes`.
#[test]
#[ignore = "paper-sized runs take minutes; run explicitly with --ignored"]
fn paper_sizes_verify() {
    for app in App::ALL {
        let w = app.paper_workload();
        let run = AppRun::generate(w.as_ref(), &SimConfig::default())
            .unwrap_or_else(|e| panic!("{app}: {e}"));
        assert!(run.trace_len() > 100_000, "{app}: paper size too small");
    }
}
