//! Query a running experiment service from plain `std` — no HTTP
//! client library needed, the protocol is one GET per connection.
//!
//! Start the server in another terminal (small tier so cold queries
//! are fast):
//!
//! ```text
//! LOOKAHEAD_SMALL=1 cargo run --release --bin lookahead -- serve --addr 127.0.0.1:7417
//! ```
//!
//! then run this client:
//!
//! ```text
//! cargo run --release --example query_service
//! LOOKAHEAD_SERVE_ADDR=127.0.0.1:7417 cargo run --release --example query_service
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;

fn get(addr: &str, target: &str) -> std::io::Result<(u16, String)> {
    let mut conn = TcpStream::connect(addr)?;
    write!(
        conn,
        "GET {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut text = String::new();
    conn.read_to_string(&mut text)?;
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn main() {
    let addr =
        std::env::var("LOOKAHEAD_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7417".to_string());

    let queries = [
        "/healthz",
        "/v1/apps",
        "/v1/experiments?app=mp3d&model=ds&window=64&consistency=rc",
        "/v1/experiments?app=mp3d&model=base",
        "/metrics",
    ];
    for target in queries {
        match get(&addr, target) {
            Ok((status, body)) => {
                println!("GET {target}\n  -> {status}, {} bytes", body.len());
                // Bodies are compact JSON; show the small ones whole.
                if body.len() <= 400 {
                    println!("  {body}");
                }
            }
            Err(e) => {
                eprintln!(
                    "GET {target} failed: {e}\n\
                     is the server running? try:\n  \
                     LOOKAHEAD_SMALL=1 cargo run --release --bin lookahead -- serve"
                );
                std::process::exit(1);
            }
        }
    }
}
