//! Writing your own workload against the Lookahead public API.
//!
//! The paper's five applications are built in, but any SPMD kernel
//! expressible in SRISC can be studied. This example builds a
//! producer/consumer histogram: each processor scans an interleaved
//! slice of a shared input array and increments histogram buckets,
//! with a lock per bucket region and a final barrier, then compares
//! how the processor models fare on the resulting trace.
//!
//! Run with `cargo run --release --example custom_workload`.

use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::ProcessorModel;
use lookahead_core::ConsistencyModel;
use lookahead_isa::program::DataImage;
use lookahead_isa::{AluOp, Assembler, IntReg};
use lookahead_multiproc::{SimConfig, Simulator};

const ITEMS: usize = 2_000;
const BUCKETS: i64 = 32;
const REGIONS: i64 = 4; // one lock per 8 buckets

fn main() -> Result<(), Box<dyn std::error::Error>> {
    use IntReg as R;

    // ---- shared memory: input array, histogram, locks, barrier -----
    let mut image = DataImage::new();
    image.align_to(16);
    let input: Vec<i64> = (0..ITEMS as i64).map(|i| (i * 31 + 7) % 97).collect();
    let input_base = image.alloc_i64_slice(&input);
    image.align_to(16);
    let hist_base = image.alloc_words(BUCKETS as usize);
    image.align_to(16);
    let locks_base = image.alloc_words(REGIONS as usize * 2);
    let barrier = image.alloc_words(2);

    // ---- the SPMD kernel -------------------------------------------
    let mut b = Assembler::new();
    b.li(R::G0, input_base as i64);
    b.li(R::G1, hist_base as i64);
    b.li(R::G2, locks_base as i64);
    b.li(R::G3, barrier as i64);
    b.li(R::G4, ITEMS as i64);
    b.for_step(R::S0, R::A0, R::G4, 16, |b| {
        b.index_word(R::T0, R::G0, R::S0);
        b.load(R::T1, R::T0, 0); // value
        b.alu_imm(AluOp::Rem, R::T2, R::T1, BUCKETS); // bucket
                                                      // lock the bucket's region
        b.alu_imm(AluOp::Div, R::T3, R::T2, BUCKETS / REGIONS);
        b.muli(R::T3, R::T3, 16);
        b.add(R::T3, R::G2, R::T3);
        b.lock(R::T3, 0);
        b.index_word(R::T4, R::G1, R::T2);
        b.load(R::T5, R::T4, 0);
        b.addi(R::T5, R::T5, 1);
        b.store(R::T5, R::T4, 0);
        b.unlock(R::T3, 0);
    });
    b.barrier(R::G3, 0);
    b.halt();
    let program = b.assemble()?;

    // ---- simulate on 16 processors ----------------------------------
    let outcome = Simulator::new(program.clone(), image, SimConfig::default())?.run()?;

    // Verify against a plain Rust histogram.
    let mut expect = vec![0i64; BUCKETS as usize];
    for v in &input {
        expect[(v % BUCKETS) as usize] += 1;
    }
    for (i, want) in expect.iter().enumerate() {
        let got = outcome.final_memory.read_i64(hist_base + i as u64 * 8);
        assert_eq!(got, *want, "bucket {i}");
    }
    println!("histogram verified: {} items over {BUCKETS} buckets", ITEMS);

    // ---- compare processor models on the busiest trace --------------
    let trace = outcome.trace(outcome.busiest_proc());
    println!("trace: {} instructions\n", trace.len());
    println!("{:<12} {:>10} {:>8}", "model", "cycles", "vs BASE");
    let base = Base.run(&program, trace);
    for (name, result) in [
        ("BASE".to_string(), base.clone()),
        (
            "SSBR/RC".to_string(),
            InOrder::ssbr(ConsistencyModel::Rc).run(&program, trace),
        ),
        (
            "DS-16/RC".to_string(),
            Ds::new(DsConfig::rc().window(16)).run(&program, trace),
        ),
        (
            "DS-64/RC".to_string(),
            Ds::new(DsConfig::rc().window(64)).run(&program, trace),
        ),
        (
            "DS-64/SC".to_string(),
            Ds::new(DsConfig::with_model(ConsistencyModel::Sc).window(64)).run(&program, trace),
        ),
    ] {
        println!(
            "{:<12} {:>10} {:>7.1}%",
            name,
            result.cycles(),
            result.breakdown.normalized_to(&base.breakdown)
        );
    }
    Ok(())
}
