//! Sweeps the lookahead-window size for one application and prints a
//! miniature of the paper's Figure 3, including the static processors.
//!
//! Pass an application name (MP3D, LU, PTHOR, LOCUS, OCEAN) as the
//! first argument; defaults to OCEAN.
//!
//! Run with `cargo run --release --example window_sweep -- LU`.

use lookahead_harness::experiments::{figure3, PAPER_WINDOWS};
use lookahead_harness::format::render_figure;
use lookahead_harness::pipeline::AppRun;
use lookahead_multiproc::SimConfig;
use lookahead_workloads::App;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "OCEAN".into());
    let app = App::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(&wanted))
        .ok_or_else(|| format!("unknown application {wanted}; try LU or MP3D"))?;

    // Smaller than the benchmark sizes so the example runs in seconds.
    let workload = app.small_workload();
    let config = SimConfig::default();
    let run = AppRun::generate(workload.as_ref(), &config)?;
    let cols = figure3(&run, &PAPER_WINDOWS);
    println!(
        "{}",
        render_figure(
            &format!("{} — window sweep (small problem size)", run.app),
            &cols
        )
    );
    Ok(())
}
