//! Prints the ordering rules of the four memory consistency models —
//! the content of the paper's Figure 1 — and demonstrates their
//! timing consequences on a micro-trace.
//!
//! Run with `cargo run --release --example consistency_rules`.

use lookahead_core::consistency::ConsistencyModel;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::ProcessorModel;
use lookahead_isa::{Assembler, IntReg, SyncKind};
use lookahead_trace::{MemAccess, SyncAccess, Trace, TraceEntry, TraceOp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 1 — ordering restrictions per consistency model\n");
    for model in ConsistencyModel::ALL {
        println!("{}", model.rule_table());
    }

    // A micro-benchmark in the spirit of Figure 1: write, read,
    // acquire, two data accesses, release. Watch the execution time
    // shrink as the model relaxes.
    let mut a = Assembler::new();
    a.store(IntReg::T0, IntReg::T0, 0);
    a.load(IntReg::T1, IntReg::T0, 64);
    a.lock(IntReg::T0, 128);
    a.load(IntReg::T2, IntReg::T0, 192);
    a.store(IntReg::T2, IntReg::T0, 256);
    a.unlock(IntReg::T0, 128);
    a.halt();
    let program = a.assemble()?;
    let miss = |pc: u32, addr: u64, write: bool| TraceEntry {
        pc,
        op: if write {
            TraceOp::Store(MemAccess::miss(addr, 50))
        } else {
            TraceOp::Load(MemAccess::miss(addr, 50))
        },
    };
    let sync = |pc: u32, kind: SyncKind| TraceEntry {
        pc,
        op: TraceOp::Sync(SyncAccess {
            kind,
            addr: 128,
            wait: 0,
            access: 50,
        }),
    };
    let trace = Trace::from_entries(vec![
        miss(0, 0, true),
        miss(1, 64, false),
        sync(2, SyncKind::Lock),
        miss(3, 192, false),
        miss(4, 256, true),
        sync(5, SyncKind::Unlock),
    ]);

    println!("micro-trace: W(miss) R(miss) ACQ R(miss) W(miss) REL\n");
    println!(
        "{:<6} {:>12} {:>12}",
        "model", "SSBR cycles", "DS-64 cycles"
    );
    for model in ConsistencyModel::ALL {
        let ssbr = InOrder::ssbr(model).run(&program, &trace);
        let ds = Ds::new(DsConfig::with_model(model).window(64)).run(&program, &trace);
        println!(
            "{:<6} {:>12} {:>12}",
            model.abbrev(),
            ssbr.cycles(),
            ds.cycles()
        );
    }
    println!("\nSC serializes everything; PC lets reads bypass the write buffer;");
    println!("WO frees data accesses between synchronizations; RC additionally");
    println!("lets ordinary accesses cross a release and an acquire one way.");
    Ok(())
}
