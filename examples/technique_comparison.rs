//! Every latency-tolerance technique in the suite, head to head on one
//! application: the paper's dynamic scheduling, plus the alternatives
//! its discussion sections describe (multiple hardware contexts,
//! hardware stride prefetching, SC boosted with prefetch/speculation,
//! and compiler load scheduling).
//!
//! Run with `cargo run --release --example technique_comparison [APP]`
//! (defaults to OCEAN; small problem sizes, runs in seconds).

use lookahead_core::base::Base;
use lookahead_core::contexts::Contexts;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::ProcessorModel;
use lookahead_core::prefetch::{PrefetchConfig, WithPrefetch};
use lookahead_core::ConsistencyModel;
use lookahead_harness::pipeline::AppRun;
use lookahead_multiproc::SimConfig;
use lookahead_multiproc::Simulator;
use lookahead_schedule::optimize_program;
use lookahead_trace::Trace;
use lookahead_workloads::App;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "OCEAN".into());
    let app = App::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(&wanted))
        .ok_or_else(|| format!("unknown application {wanted}"))?;
    let config = SimConfig::default();
    let workload = app.small_workload();
    let run = AppRun::generate(workload.as_ref(), &config)?;
    let base = Base.run(&run.program, run.trace());
    println!(
        "{}: {} instructions; BASE = {} cycles (= 100.0)\n",
        run.app,
        run.trace_len(),
        base.cycles()
    );

    let pct = |c: u64| -> String { format!("{:6.1}", c as f64 * 100.0 / base.cycles() as f64) };
    let report = |name: &str, cycles: u64, note: &str| {
        println!("{name:<26} {} {note}", pct(cycles));
    };

    // The paper's technique: out-of-order lookahead under RC.
    for w in [16, 64] {
        let r = Ds::new(DsConfig::rc().window(w)).run(&run.program, run.trace());
        report(&format!("dynamic scheduling W={w}"), r.cycles(), "");
    }

    // Strict model + the boosting techniques of reference [8].
    let sc = Ds::new(DsConfig::with_model(ConsistencyModel::Sc).window(64))
        .run(&run.program, run.trace());
    report("SC (no boost), W=64", sc.cycles(), "");
    let boosted = Ds::new(DsConfig {
        nonbinding_prefetch: true,
        speculative_loads: true,
        ..DsConfig::with_model(ConsistencyModel::Sc).window(64)
    })
    .run(&run.program, run.trace());
    report("SC + prefetch/speculation", boosted.cycles(), "");

    // Multiple hardware contexts on an in-order pipe.
    let all_traces = run.all_traces();
    for k in [2usize, 4] {
        let picked: Vec<&Trace> = (0..k)
            .map(|i| &*all_traces[(run.proc + i) % all_traces.len()])
            .collect();
        let r = Contexts::default().run_traces(&picked);
        report(
            &format!("multiple contexts x{k}"),
            (r.cycles() as f64 / k as f64) as u64,
            "(per-context)",
        );
    }

    // Hardware stride prefetching on the blocking in-order processor.
    let pf = WithPrefetch {
        inner: InOrder::ssbr(ConsistencyModel::Rc),
        config: PrefetchConfig::default(),
    }
    .run(&run.program, run.trace());
    report("SSBR + stride prefetcher", pf.cycles(), "");

    // Compiler load scheduling feeding the small-window machine.
    let (optimized, _, _) = optimize_program(&run.program, 4);
    let built = app.small_workload().build(config.num_procs);
    let out = Simulator::new(optimized.clone(), built.image, config)?.run()?;
    (built.verify)(&out.final_memory).expect("optimized program still correct");
    let t = out.trace(out.busiest_proc());
    let r = Ds::new(DsConfig::rc().window(16)).run(&optimized, t);
    report(
        "compiler sched + DS W=16",
        r.cycles(),
        "(unroll x4 + reschedule)",
    );

    println!("\nLower is better; every row tolerates the same 50-cycle misses.");
    Ok(())
}
