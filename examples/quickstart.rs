//! Quickstart: the whole Lookahead pipeline in one page.
//!
//! Builds the LU workload, runs the 16-processor trace-generating
//! simulation, re-times the representative trace under the BASE
//! processor and the dynamically scheduled processor with a 64-entry
//! window under release consistency, and reports how much read
//! latency dynamic scheduling hid.
//!
//! Run with `cargo run --release --example quickstart`.

use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::model::ProcessorModel;
use lookahead_harness::pipeline::AppRun;
use lookahead_multiproc::SimConfig;
use lookahead_workloads::lu::Lu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A workload: LU decomposition of a 64x64 matrix, SPMD across
    //    16 processors (the paper's machine).
    let workload = Lu { n: 64 };
    let config = SimConfig::default();

    // 2. Execution-driven multiprocessor simulation -> verified,
    //    annotated instruction trace for a representative processor.
    let run = AppRun::generate(&workload, &config)?;
    println!(
        "generated {} trace: {} instructions from processor {}",
        run.app,
        run.trace_len(),
        run.proc
    );

    // 3. Re-time the trace under two processor models.
    let base = Base.run(&run.program, run.trace());
    let ds = Ds::new(DsConfig::rc().window(64)).run(&run.program, run.trace());

    println!("BASE     : {}", base.breakdown);
    println!("DS-64/RC : {}", ds.breakdown);
    println!(
        "execution time: {:.1}% of BASE",
        ds.breakdown.normalized_to(&base.breakdown)
    );
    if let Some(hidden) = ds.breakdown.read_latency_hidden_vs(&base.breakdown) {
        println!("read latency hidden: {:.1}%", hidden * 100.0);
    }
    Ok(())
}
